#!/usr/bin/env python
"""The thrifty lock extension (paper Section 7, future work).

Contends a queued lock with long critical sections and compares a plain
spin-waiting lock with the thrifty lock, which predicts its queue wait
from the observed hold times and sleeps through it — the barrier recipe
transplanted onto a lock.

Run with::

    python examples/thrifty_lock_demo.py
"""

from repro.config import MachineConfig
from repro.energy.accounting import Category
from repro.machine import System
from repro.sync import SpinLock, ThriftyLock

N_THREADS = 16
HOLD_NS = 500_000
ROUNDS = 4


def run(lock_class):
    system = System(MachineConfig(n_nodes=N_THREADS))
    lock = lock_class(system)

    def program(node):
        for _ in range(ROUNDS):
            yield from lock.acquire(node)
            yield from node.cpu.compute(HOLD_NS)
            yield from lock.release(node)

    system.run_threads(program)
    return system, lock


def main():
    print(
        "lock contention: {} threads x {} rounds, {} us critical "
        "sections\n".format(N_THREADS, ROUNDS, HOLD_NS // 1000)
    )
    results = {
        "spinlock": run(SpinLock),
        "thrifty lock": run(ThriftyLock),
    }
    for tag, (system, lock) in results.items():
        total = system.total_account()
        sleep_share = total.time_ns(Category.SLEEP) / total.time_ns()
        print(
            "{:13s} energy {:8.4f} J  exec {:7.3f} ms  "
            "sleep share {:4.1f}%".format(
                tag,
                total.energy_joules(),
                system.execution_time_ns / 1e6,
                100 * sleep_share,
            )
        )
    thrifty_system, thrifty_lock = results["thrifty lock"]
    spin_system, _ = results["spinlock"]
    saved = 1 - (
        thrifty_system.total_account().energy_joules()
        / spin_system.total_account().energy_joules()
    )
    print(
        "\nthrifty lock stats: {} sleeps ({}), {} hand-off wakes, "
        "{} timer wakes".format(
            thrifty_lock.stats.sleeps,
            thrifty_lock.stats.sleeps_by_state,
            thrifty_lock.stats.handoff_wakes,
            thrifty_lock.stats.timer_wakes,
        )
    )
    print("energy saved while queued: {:.1f}%".format(100 * saved))


if __name__ == "__main__":
    main()
