#!/usr/bin/env python
"""Quickstart: thrifty vs. conventional barrier on a small machine.

Builds an 8-node CC-NUMA system, runs a simple imbalanced barrier loop
under the conventional (Baseline) and the thrifty barrier, and prints
the energy/time comparison — the paper's core result in miniature.

Run with::

    python examples/quickstart.py
"""

from repro.config import MachineConfig
from repro.experiments.configs import barrier_factory_for
from repro.machine import System
from repro.workloads import (
    PhaseSpec,
    RotatingStraggler,
    WorkloadModel,
    WorkloadRunner,
)

N_THREADS = 8


def build_workload():
    """A two-barrier loop where one (rotating) thread is always late."""
    return WorkloadModel(
        name="quickstart",
        loop_phases=(
            PhaseSpec(
                "loop.work", 800_000,  # 800 us mean compute
                RotatingStraggler(extra=0.6, sigma=0.02),
                dirty_lines=32,
            ),
            PhaseSpec(
                "loop.reduce", 300_000,
                RotatingStraggler(extra=0.5, sigma=0.02),
                dirty_lines=16,
            ),
        ),
        iterations=10,
        default_threads=N_THREADS,
    )


def run(config_name):
    system = System(MachineConfig(n_nodes=N_THREADS))
    runner = WorkloadRunner(
        build_workload(),
        system=system,
        seed=42,
        barrier_factory=barrier_factory_for(config_name),
    )
    return runner.run()


def main():
    baseline = run("baseline")
    thrifty = run("thrifty")

    print("Thrifty barrier quickstart ({} threads)".format(N_THREADS))
    print("-" * 58)
    for tag, result in (("baseline", baseline), ("thrifty", thrifty)):
        print(
            "{:9s}  energy {:8.4f} J   exec {:7.3f} ms   "
            "imbalance {:4.1f}%".format(
                tag,
                result.energy_joules,
                result.execution_time_ns / 1e6,
                100 * result.barrier_imbalance(),
            )
        )
    savings = 1 - thrifty.energy_joules / baseline.energy_joules
    slowdown = (
        thrifty.execution_time_ns / baseline.execution_time_ns - 1
    )
    print("-" * 58)
    print(
        "energy saved: {:.1f}%   performance cost: {:.2f}%".format(
            100 * savings, 100 * slowdown
        )
    )
    print("\nenergy breakdown (thrifty), joules:")
    for segment, joules in thrifty.energy_breakdown().items():
        print("  {:10s} {:.4f}".format(segment, joules))
    assert savings > 0, "thrifty should save energy on imbalanced loops"


if __name__ == "__main__":
    main()
