#!/usr/bin/env python
"""Real algorithms on the simulated machine.

The SPLASH-2 models in the benchmark harness are calibrated arrival
processes; this example instead runs *actual algorithms* — a radix
sort, an FFT, a grid relaxation, an n-body integration — records every
thread's work per phase, and replays the resulting trace on the
simulator under the conventional and thrifty barriers. Imbalance (and
hence savings) emerges from the data: a skewed key distribution,
clustered particles, data-dependent convergence.

Run with::

    python examples/kernel_workloads.py
"""

from repro.config import MachineConfig
from repro.experiments.configs import barrier_factory_for
from repro.machine import System
from repro.workloads import WorkloadRunner
from repro.workloads.kernels import (
    fft_workload,
    nbody_workload,
    ocean_workload,
    radix_workload,
)

N_THREADS = 16


def build_workloads():
    radix, sorted_keys = radix_workload(
        n_keys=1 << 14, radix=1 << 8, n_threads=N_THREADS, skew=0.4
    )
    assert (sorted_keys[:-1] <= sorted_keys[1:]).all()
    fft, _spectrum = fft_workload(n_points=1 << 12, n_threads=N_THREADS)
    ocean, residuals = ocean_workload(
        grid_size=66, n_threads=N_THREADS, tolerance=2e-3
    )
    nbody, _energies = nbody_workload(
        n_bodies=512, n_steps=8, n_threads=N_THREADS
    )
    print(
        "ocean solver converged in {} sweeps (data-dependent barrier "
        "count)".format(len(residuals))
    )
    return [radix, fft, ocean, nbody]


def run(workload, config_name):
    system = System(MachineConfig(n_nodes=N_THREADS))
    runner = WorkloadRunner(
        workload, system=system, seed=0,
        barrier_factory=barrier_factory_for(config_name),
    )
    return runner.run()


def main():
    workloads = build_workloads()
    print()
    print(
        "{:14s} {:>10s} {:>12s} {:>12s} {:>9s}".format(
            "kernel", "barriers", "baseline J", "thrifty J", "saved"
        )
    )
    print("-" * 62)
    for workload in workloads:
        baseline = run(workload, "baseline")
        thrifty = run(workload, "thrifty")
        saved = 1 - thrifty.energy_joules / baseline.energy_joules
        print(
            "{:14s} {:>10d} {:>12.4f} {:>12.4f} {:>8.1f}%".format(
                workload.name,
                workload.dynamic_instances,
                baseline.energy_joules,
                thrifty.energy_joules,
                100 * saved,
            )
        )
    print(
        "\nNote: the FFT kernel's barriers are all one-shot, so the\n"
        "PC-indexed predictor stays cold and thrifty == baseline — the\n"
        "same effect the paper reports for FFT and Cholesky."
    )


if __name__ == "__main__":
    main()
