#!/usr/bin/env python
"""The thrifty barrier on a message-passing machine (paper Section 7).

No shared memory here: ranks exchange tagged messages over the same
hypercube. The root piggybacks the measured barrier interval time on
its release broadcast, every rank trains a *local* predictor from it,
and early ranks sleep through their predicted stall — woken by the NIC
arrival interrupt or their countdown timer.

Run with::

    python examples/message_passing.py
"""

from repro.config import MachineConfig
from repro.energy.accounting import Category
from repro.machine import System
from repro.mp import MpBarrier, ThriftyMpBarrier, make_endpoints

N_RANKS = 16
ROUNDS = 10


def run(barrier_class):
    system = System(MachineConfig(n_nodes=N_RANKS))
    endpoints = make_endpoints(system)
    barrier = barrier_class(system, endpoints)

    for rank in range(N_RANKS):
        def program(rank=rank):
            node = system.nodes[rank]
            for _ in range(ROUNDS):
                # Rank 15 is the straggler each round.
                duration = 1_200_000 if rank == N_RANKS - 1 else 150_000
                yield from node.cpu.compute(duration)
                yield from barrier.wait(rank)

        system.sim.spawn(program())
    system.run()
    return system, barrier


def main():
    print(
        "message-passing barrier, {} ranks x {} rounds, one straggler\n"
        .format(N_RANKS, ROUNDS)
    )
    for tag, barrier_class in (
        ("spin-recv", MpBarrier),
        ("thrifty", ThriftyMpBarrier),
    ):
        system, barrier = run(barrier_class)
        total = system.total_account()
        line = (
            "{:10s} energy {:8.4f} J  exec {:7.3f} ms  "
            "spin {:5.1f}%  sleep {:5.1f}%".format(
                tag,
                total.energy_joules(),
                system.execution_time_ns / 1e6,
                100 * total.time_ns(Category.SPIN) / total.time_ns(),
                100 * total.time_ns(Category.SLEEP) / total.time_ns(),
            )
        )
        print(line)
        if isinstance(barrier, ThriftyMpBarrier):
            print(
                "           sleeps {} ({}), timer wakes {}, "
                "interrupt wakes {}".format(
                    barrier.stats.sleeps,
                    barrier.stats.sleeps_by_state,
                    barrier.stats.timer_wakes,
                    barrier.stats.interrupt_wakes,
                )
            )


if __name__ == "__main__":
    main()
