#!/usr/bin/env python
"""Evaluation sweep over SPLASH-2 application models.

Reproduces a slice of the paper's Figures 5 and 6: for each selected
application, runs all five configurations (Baseline, Thrifty-Halt,
Oracle-Halt, Thrifty, Ideal) and prints the normalized energy and
execution-time bars.

Run with::

    python examples/splash2_sweep.py [app ...]

Default applications: volrend fmm ocean fft (one showcase, one typical
target, the pathological case, and a non-repeating-barrier app). The
full ten-application sweep is ``python -m repro figure5``.
"""

import sys

from repro.experiments import figures, report
from repro.experiments.runner import run_app


def main(apps=None):
    apps = apps or ["volrend", "fmm", "ocean", "fft"]
    matrix = {}
    for app in apps:
        print("simulating {} (3 live runs + 2 derived)...".format(app))
        matrix[app] = run_app(app, threads=64, seed=1)
    print()
    print(report.render_figure5(figures.figure5_rows(matrix)))
    print()
    print(report.render_figure6(figures.figure6_rows(matrix)))
    print()
    print(report.render_headline(matrix))


if __name__ == "__main__":
    main(sys.argv[1:] or None)
