#!/usr/bin/env python
"""Using the public API with your own workload and sleep states.

Shows the extension points a downstream user would touch:

* define an application model (phases, imbalance shapes, swings);
* define a custom sleep-state table (a hypothetical future processor
  with a faster deep state);
* pick a predictor;
* run any configuration and inspect the thrifty barrier's behaviour
  counters.

Run with::

    python examples/custom_workload.py
"""

from repro.config import (
    SLEEP1_HALT,
    MachineConfig,
    SleepStateConfig,
    ThriftyConfig,
)
from repro.machine import System
from repro.predict import ExponentialPredictor
from repro.sync import ThriftyBarrier
from repro.workloads import (
    PhaseSpec,
    UniformWindow,
    WorkloadModel,
    WorkloadRunner,
)
from repro.workloads.imbalance import Swing

N_THREADS = 16

#: A hypothetical deep state with half the latency of Table 3's Sleep3.
FAST_DEEP = SleepStateConfig(
    name="FastDeep",
    power_savings=0.96,
    transition_latency_ns=18_000,
    snoops=False,
    voltage_reduction=True,
)


def build_model():
    """A pipeline-style app: a wide phase, a skewed one, a short one."""
    return WorkloadModel(
        name="pipeline",
        loop_phases=(
            PhaseSpec("stage.scatter", 500_000, UniformWindow(0.4),
                      dirty_lines=64),
            PhaseSpec("stage.crunch", 1_200_000, UniformWindow(0.25),
                      swing=Swing(low=0.7, high=1.4, p_high=0.5),
                      dirty_lines=96),
            PhaseSpec("stage.gather", 150_000, UniformWindow(0.1),
                      dirty_lines=16),
        ),
        iterations=12,
        default_threads=N_THREADS,
    )


def thrifty_factory(config, predictor_unused):
    def factory(system, domain, n_threads, pc, trace):
        return ThriftyBarrier(
            system, domain, n_threads, pc, trace=trace, config=config
        )
    return factory


def run(sleep_states, label):
    config = ThriftyConfig(sleep_states=sleep_states)
    system = System(MachineConfig(n_nodes=N_THREADS))
    runner = WorkloadRunner(
        build_model(),
        system=system,
        seed=7,
        barrier_factory=thrifty_factory(config, None),
        predictor=ExponentialPredictor(alpha=0.5),
    )
    result = runner.run()
    stats = {}
    for barrier in result.barriers.values():
        for state, count in barrier.stats.sleeps_by_state.items():
            stats[state] = stats.get(state, 0) + count
    print(
        "{:28s} energy {:8.4f} J  exec {:7.3f} ms  sleeps {}".format(
            label, result.energy_joules,
            result.execution_time_ns / 1e6, stats,
        )
    )
    return result


def main():
    print("custom sleep-state tables on a custom workload\n")
    table3 = run(
        (SLEEP1_HALT,), "Halt only (conservative)"
    )
    custom = run(
        (SLEEP1_HALT, FAST_DEEP), "Halt + hypothetical FastDeep"
    )
    improvement = 1 - custom.energy_joules / table3.energy_joules
    print(
        "\nthe faster deep state recovers {:.1f}% more energy on the "
        "same workload".format(100 * improvement)
    )


if __name__ == "__main__":
    main()
