#!/usr/bin/env python
"""Barrier-interval analysis of FMM (the paper's Figure 3).

Runs the FMM model under the Baseline and prints, for four consecutive
main-loop iterations, each barrier's interval time (BIT), the observing
thread's compute time, and its stall (BST) — normalized to the mean BIT.
Then quantifies the paper's key observation: per-barrier BIT varies far
less than BST, which is why the thrifty barrier predicts BIT and derives
BST, instead of predicting BST directly.

Run with::

    python examples/fmm_interval_trace.py
"""

import statistics

from repro.experiments import figures, report


def main():
    rows = figures.figure3_rows(threads=64, seed=1)
    print(report.render_figure3(rows))
    print()

    by_barrier = {}
    for row in rows:
        by_barrier.setdefault(row.barrier_index, []).append(row)

    print("variability (coefficient of variation across iterations):")
    for barrier, barrier_rows in sorted(by_barrier.items()):
        bits = [row.bit_norm for row in barrier_rows]
        bsts = [row.bst_norm for row in barrier_rows]
        bit_cv = statistics.pstdev(bits) / statistics.mean(bits)
        bst_mean = statistics.mean(bsts)
        bst_cv = (
            statistics.pstdev(bsts) / bst_mean if bst_mean else float("nan")
        )
        print(
            "  barrier {}: BIT cv = {:5.1%}   BST cv = {:5.1%}".format(
                barrier, bit_cv, bst_cv
            )
        )
    print(
        "\nBIT is the stable signal; BST inherits the predictability by\n"
        "subtracting the thread's own (known) compute time, Section 3.2."
    )


if __name__ == "__main__":
    main()
