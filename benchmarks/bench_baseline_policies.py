"""The low-power wait-policy landscape of Section 5.1.

The paper names the conventional alternatives — "executing Halt after
spinning unsuccessfully for a while, or using a Pause instruction in a
spinloop" — and argues they are bounded by Oracle-Halt, itself inferior
to Thrifty. This benchmark measures all of them on Radix:

* Baseline: pure spinning at 85% of compute power;
* Pause-spin: spinning at reduced (60%) power;
* Spin-then-Halt: 50 us spin threshold, then Halt until invalidated;
* Oracle-Halt / Thrifty / Ideal from the standard configurations.
"""

from repro.config import SLEEP1_HALT, EnergyConfig, MachineConfig
from repro.experiments import report
from repro.experiments.runner import run_app
from repro.machine import System
from repro.predict import LastValuePredictor
from repro.sync import SpinThenSleepBarrier
from repro.workloads import WorkloadRunner, get_model

from conftest import PAPER_SEED, PAPER_THREADS, once

APP = "radix"


def pause_spin_run():
    """Baseline barrier, but the spinloop draws only 60% of compute."""
    system = System(
        MachineConfig(), EnergyConfig(spin_power_factor=0.60)
    )
    runner = WorkloadRunner(
        get_model(APP), system=system,
        n_threads=PAPER_THREADS, seed=PAPER_SEED,
    )
    return runner.run()


def spin_then_halt_run(threshold_ns=50_000):
    system = System(MachineConfig())

    def factory(sys_, domain, n_threads, pc, trace):
        return SpinThenSleepBarrier(
            sys_, domain, n_threads, pc,
            sleep_state=SLEEP1_HALT, spin_threshold_ns=threshold_ns,
            trace=trace,
        )

    runner = WorkloadRunner(
        get_model(APP), system=system,
        n_threads=PAPER_THREADS, seed=PAPER_SEED,
        barrier_factory=factory,
        predictor=LastValuePredictor(),
    )
    return runner.run()


def test_baseline_policies(benchmark):
    def sweep():
        standard = run_app(APP, threads=PAPER_THREADS, seed=PAPER_SEED)
        return {
            "standard": standard,
            "pause": pause_spin_run(),
            "spin-then-halt": spin_then_halt_run(),
        }

    results = once(benchmark, sweep)
    standard = results["standard"]
    base_joules = standard["baseline"].energy_joules
    base_time = standard["baseline"].execution_time_ns
    policies = {
        "baseline spin": (
            base_joules, base_time,
        ),
        "pause spin (60% power)": (
            results["pause"].energy_joules,
            results["pause"].execution_time_ns,
        ),
        "spin-then-halt (50 us)": (
            results["spin-then-halt"].energy_joules,
            results["spin-then-halt"].execution_time_ns,
        ),
        "oracle-halt": (
            standard["oracle-halt"].energy_joules, base_time,
        ),
        "thrifty": (
            standard["thrifty"].energy_joules,
            standard["thrifty"].execution_time_ns,
        ),
        "ideal": (
            standard["ideal"].energy_joules, base_time,
        ),
    }
    rows = [
        (
            tag,
            "{:.1f}".format(100 * joules / base_joules),
            "{:.1f}".format(100 * time_ns / base_time),
        )
        for tag, (joules, time_ns) in policies.items()
    ]
    print()
    print(
        report.render_table(
            ("Policy", "Energy (% of B)", "Time (% of B)"),
            rows,
            title="Wait policies on {} (64 threads)".format(APP),
        )
    )
    energy = {tag: joules for tag, (joules, _t) in policies.items()}
    # The paper's ordering claims (Section 5.1):
    assert energy["spin-then-halt (50 us)"] > energy["oracle-halt"], (
        "spin-then-halt is bounded below by Oracle-Halt"
    )
    assert energy["thrifty"] < energy["spin-then-halt (50 us)"], (
        "prediction beats the fixed spin threshold"
    )
    # Multi-state Thrifty tracks the best Halt-only policy within the
    # warm-up/residual-spin margin, and its no-misprediction bound
    # (Ideal) is strictly below Oracle-Halt.
    assert energy["thrifty"] < 1.01 * energy["oracle-halt"]
    assert energy["ideal"] < energy["oracle-halt"]
    assert energy["pause spin (60% power)"] < base_joules
    assert energy["ideal"] <= energy["thrifty"]
    benchmark.extra_info["thrifty_vs_spinhalt"] = round(
        energy["thrifty"] / energy["spin-then-halt (50 us)"], 3
    )
