"""Extension: the thrifty lock (paper Section 7 future work).

A lock-contention microworkload — long critical sections, every thread
queued — compared under the plain queued spinlock and the thrifty lock.
"""

from repro.energy.accounting import Category
from repro.experiments import report
from repro.machine import System
from repro.config import MachineConfig
from repro.sync import SpinLock, ThriftyLock

from conftest import once

N_NODES = 16
HOLD_NS = 500_000
ROUNDS = 4


def _run(lock_class):
    system = System(MachineConfig(n_nodes=N_NODES))
    lock = lock_class(system)

    def program(node):
        for _ in range(ROUNDS):
            yield from lock.acquire(node)
            yield from node.cpu.compute(HOLD_NS)
            yield from lock.release(node)

    system.run_threads(program)
    return system, lock


def test_ext_thrifty_lock(benchmark):
    def sweep():
        return {"spinlock": _run(SpinLock), "thrifty": _run(ThriftyLock)}

    results = once(benchmark, sweep)
    rows = []
    for tag, (system, lock) in results.items():
        total = system.total_account()
        rows.append(
            (
                tag,
                "{:.3f}".format(total.energy_joules()),
                "{:.2f} ms".format(system.execution_time_ns / 1e6),
                "{:.1f}%".format(
                    100 * total.time_ns(Category.SLEEP) / total.time_ns()
                ),
            )
        )
    print()
    print(
        report.render_table(
            ("Lock", "Energy (J)", "Exec time", "Sleep share"),
            rows,
            title=(
                "Extension: thrifty lock vs. spinlock "
                "({} threads, {} us holds)".format(N_NODES, HOLD_NS // 1000)
            ),
        )
    )
    spin_system, _ = results["spinlock"]
    thrifty_system, thrifty_lock = results["thrifty"]
    spin_joules = spin_system.total_account().energy_joules()
    thrifty_joules = thrifty_system.total_account().energy_joules()
    # Waiting in a sleep state saves serious energy under heavy
    # contention...
    assert thrifty_joules < 0.85 * spin_joules
    assert thrifty_lock.stats.sleeps > 0
    # ... with a bounded throughput cost.
    assert (
        thrifty_system.execution_time_ns
        < 1.08 * spin_system.execution_time_ns
    )
    benchmark.extra_info["energy_ratio"] = round(
        thrifty_joules / spin_joules, 3
    )
