"""Table 3: the low-power sleep states.

Runs the TDPmax microbenchmark (Section 4.3) and derives the absolute
residency power of each state from the paper's TDPmax-relative ratios.
"""

import pytest

from repro.experiments import report, tables

from conftest import once


def test_table3_sleep_states(benchmark):
    rows, tdp = once(benchmark, tables.table3_rows)
    print()
    print(report.render_table3(rows, tdp))
    assert [row[1] for row in rows] == pytest.approx([70.2, 79.2, 97.8])
    assert [row[2] for row in rows] == pytest.approx([10.0, 15.0, 35.0])
    assert [row[3] for row in rows] == ["Yes", "No", "No"]
    assert [row[4] for row in rows] == ["No", "No", "Yes"]
    # Deeper states draw less while resident.
    watts = [row[5] for row in rows]
    assert watts[0] > watts[1] > watts[2] > 0
    benchmark.extra_info["tdp_max_watts"] = round(tdp, 1)
