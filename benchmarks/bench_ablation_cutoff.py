"""Ablation: the overprediction cut-off (Section 3.3.3 / 5.2).

The paper: without the cut-off, Ocean degrades by as much as 12% over
Baseline; the 10% threshold contains the loss within 3.5%. We run Ocean
under Thrifty with the cut-off at its default, disabled, and tightened,
and print the resulting energy/time pairs.
"""

from repro.experiments import report
from repro.experiments.metrics import normalized_total, slowdown
from repro.experiments.runner import run_app, run_experiment

from conftest import PAPER_SEED, PAPER_THREADS, once


def test_ablation_overprediction_cutoff(benchmark):
    def sweep():
        baseline = run_app(
            "ocean", threads=PAPER_THREADS, seed=PAPER_SEED,
            configs=("baseline",),
        )["baseline"]
        variants = {
            "cutoff 10% (paper)": run_experiment(
                "ocean", "thrifty",
                threads=PAPER_THREADS, seed=PAPER_SEED,
            ),
            "cutoff disabled": run_experiment(
                "ocean", "thrifty",
                threads=PAPER_THREADS, seed=PAPER_SEED,
                overprediction_threshold=1e12,
            ),
            "cutoff 5% (tight)": run_experiment(
                "ocean", "thrifty",
                threads=PAPER_THREADS, seed=PAPER_SEED,
                overprediction_threshold=0.05,
            ),
        }
        return baseline, variants

    baseline, variants = once(benchmark, sweep)
    rows = []
    for tag, result in variants.items():
        rows.append(
            (
                tag,
                "{:.1f}".format(normalized_total(result, baseline)),
                "{:.2f}%".format(100 * slowdown(result, baseline)),
                result.thrifty_stats.get("cutoff_disables", 0),
            )
        )
    print()
    print(
        report.render_table(
            ("Variant", "Energy (% of B)", "Slowdown", "Disables"),
            rows,
            title="Ablation: Ocean under Thrifty vs. cut-off policy",
        )
    )
    default = variants["cutoff 10% (paper)"]
    disabled = variants["cutoff disabled"]
    # The cut-off engages...
    assert default.thrifty_stats["cutoff_disables"] > 0
    assert disabled.thrifty_stats["cutoff_disables"] == 0
    # ... and contains a real degradation (paper: 12% -> 3.5%).
    assert slowdown(disabled, baseline) > 0.015
    assert slowdown(default, baseline) < 0.015
    assert slowdown(default, baseline) < slowdown(disabled, baseline)
    benchmark.extra_info["no_cutoff_slowdown_pct"] = round(
        100 * slowdown(disabled, baseline), 2
    )
    benchmark.extra_info["cutoff_slowdown_pct"] = round(
        100 * slowdown(default, baseline), 2
    )
