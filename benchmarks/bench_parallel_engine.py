"""Parallel experiment engine: cold speedup and warm cache hits.

Two claims the engine makes, measured rather than asserted in docs:

* a 4-worker cold run of a four-application matrix beats the serial
  run (the cells are independent simulations, so the fan-out should
  approach linear on idle cores);
* a warm re-run with caching enabled performs **zero** re-simulations
  — every cell is served from disk, verified by the engine's counters.
"""

import os

import pytest

from repro.experiments.parallel import ExperimentEngine
from repro.experiments.runner import run_matrix

from conftest import PAPER_SEED, once

APPS = ("fmm", "ocean", "barnes", "radix")
CONFIGS = ("baseline", "thrifty-halt", "thrifty")
THREADS = 16


def _cold(workers):
    return run_matrix(
        apps=APPS, configs=CONFIGS, threads=THREADS, seed=PAPER_SEED,
        workers=workers, cache=None,
    )


@pytest.fixture(scope="module")
def serial_seconds():
    import time

    start = time.perf_counter()
    _cold(2)  # warm any lazy imports so neither timed run pays them
    warmup = time.perf_counter() - start
    start = time.perf_counter()
    _cold(1)
    return time.perf_counter() - start, warmup


def test_cold_matrix_serial(benchmark):
    once(benchmark, lambda: _cold(1))


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs at least two cores",
)
def test_cold_matrix_four_workers(benchmark, serial_seconds):
    serial, _warmup = serial_seconds
    once(benchmark, lambda: _cold(4))
    parallel = benchmark.stats.stats.mean
    benchmark.extra_info["serial_s"] = round(serial, 3)
    benchmark.extra_info["speedup"] = round(serial / parallel, 2)
    # "Measurably faster": well clear of timer noise, conservative
    # enough for loaded CI machines.
    assert parallel < serial * 0.9


def test_warm_rerun_is_all_cache_hits(benchmark, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("engine-cache")
    warm_engine = ExperimentEngine(workers=4, cache=cache_dir, strict=True)
    warm_engine.run_matrix(
        APPS, configs=CONFIGS, threads=THREADS, seed=PAPER_SEED
    )
    assert warm_engine.stats.executed == len(APPS) * len(CONFIGS)

    engine = ExperimentEngine(workers=4, cache=cache_dir, strict=True)
    once(
        benchmark,
        lambda: engine.run_matrix(
            APPS, configs=CONFIGS, threads=THREADS, seed=PAPER_SEED
        ),
    )
    # Zero re-simulations: every cell came off disk.
    assert engine.stats.executed == 0
    assert engine.stats.cache_hits == len(APPS) * len(CONFIGS)
    benchmark.extra_info["cache_hits"] = engine.stats.cache_hits
