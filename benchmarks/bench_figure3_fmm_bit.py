"""Figure 3: BIT/BST variability of FMM's three main-loop barriers.

Regenerates the twelve bars (3 barriers x 4 consecutive iterations,
one observing thread, normalized to the mean BIT) and checks the
paper's qualitative claims: per-barrier BIT is far more stable than BST
or cross-barrier BIT.
"""

import statistics

import pytest

from repro.experiments import figures, report

from conftest import PAPER_SEED, PAPER_THREADS, once


def test_figure3_fmm_bit(benchmark):
    rows = once(
        benchmark,
        lambda: figures.figure3_rows(
            threads=PAPER_THREADS, seed=PAPER_SEED
        ),
    )
    print()
    print(report.render_figure3(rows))
    assert len(rows) == 12
    by_barrier = {}
    for row in rows:
        by_barrier.setdefault(row.barrier_index, []).append(row)
    # Normalization: the mean BIT over the whole run is 1.0, so the
    # twelve sampled bars should straddle it.
    bits = [row.bit_norm for row in rows]
    assert min(bits) < 1.0 < max(bits)
    # Same-barrier BIT is stable across iterations (the basis of
    # PC-indexed prediction)...
    for barrier, barrier_rows in by_barrier.items():
        values = [row.bit_norm for row in barrier_rows]
        spread = (max(values) - min(values)) / statistics.mean(values)
        assert spread < 0.15, "barrier {} BIT unstable".format(barrier)
        benchmark.extra_info[
            "bit_b{}".format(barrier)
        ] = round(statistics.mean(values), 2)
    # ... while BIT differs strongly across barriers,
    means = {
        barrier: statistics.mean(row.bit_norm for row in barrier_rows)
        for barrier, barrier_rows in by_barrier.items()
    }
    assert max(means.values()) > 1.5 * min(means.values())
    # ... and BST remains thread/instance dependent (nonzero, variable).
    bsts = [row.bst_norm for row in rows]
    assert max(bsts) > 0
    for row in rows:
        assert row.compute_norm + row.bst_norm == pytest.approx(
            row.bit_norm
        )
