"""Shared fixtures for the benchmark harness.

The full five-configuration, ten-application matrix at the paper's
64-processor scale is expensive (tens of seconds), so it is computed
once per session and shared by the Figure 5, Figure 6, and headline
benchmarks.
"""

import pytest

from repro.experiments.runner import run_matrix

PAPER_THREADS = 64
PAPER_SEED = 1


@pytest.fixture(scope="session")
def matrix64():
    return run_matrix(threads=PAPER_THREADS, seed=PAPER_SEED)


def once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
