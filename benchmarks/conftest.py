"""Shared fixtures for the benchmark harness.

The full five-configuration, ten-application matrix at the paper's
64-processor scale is expensive (tens of seconds), so it is computed
once per session and shared by the Figure 5, Figure 6, and headline
benchmarks.

The matrix is produced through the experiment engine. Both knobs
default to the classic serial, uncached run so published numbers stay
comparable, and can be overridden from the environment:

* ``REPRO_BENCH_WORKERS`` — worker processes (``0`` = one per CPU);
* ``REPRO_BENCH_CACHE`` — a result-cache directory; warm re-runs then
  skip every already-simulated cell (results are bit-identical).
"""

import os

import pytest

from repro.experiments.runner import run_matrix

PAPER_THREADS = 64
PAPER_SEED = 1


def _bench_workers():
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    return workers if workers >= 1 else None


def _bench_cache():
    return os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def matrix64():
    return run_matrix(
        threads=PAPER_THREADS, seed=PAPER_SEED,
        workers=_bench_workers(), cache=_bench_cache(),
    )


def once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
