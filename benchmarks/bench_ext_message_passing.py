"""Extension: the thrifty barrier on message passing (Section 7).

The same straggler workload under a spin-receiving flat barrier and the
thrifty MP barrier (piggybacked-BIT prediction, NIC-interrupt wake-up).
"""

from repro.config import MachineConfig
from repro.energy.accounting import Category
from repro.experiments import report
from repro.machine import System
from repro.mp import MpBarrier, ThriftyMpBarrier, make_endpoints

from conftest import once

N_RANKS = 16
ROUNDS = 10
STRAGGLER_NS = 1_200_000
FAST_NS = 150_000


def _run(barrier_class):
    system = System(MachineConfig(n_nodes=N_RANKS))
    endpoints = make_endpoints(system)
    barrier = barrier_class(system, endpoints)

    for rank in range(N_RANKS):
        def program(rank=rank):
            node = system.nodes[rank]
            for _ in range(ROUNDS):
                duration = (
                    STRAGGLER_NS if rank == N_RANKS - 1 else FAST_NS
                )
                yield from node.cpu.compute(duration)
                yield from barrier.wait(rank)

        system.sim.spawn(program())
    system.run()
    return system, barrier


def test_ext_message_passing(benchmark):
    def sweep():
        return {
            "spin-recv": _run(MpBarrier),
            "thrifty-mp": _run(ThriftyMpBarrier),
        }

    results = once(benchmark, sweep)
    rows = []
    for tag, (system, _barrier) in results.items():
        total = system.total_account()
        rows.append(
            (
                tag,
                "{:.4f}".format(total.energy_joules()),
                "{:.3f} ms".format(system.execution_time_ns / 1e6),
                "{:.1f}%".format(
                    100 * total.time_ns(Category.SLEEP) / total.time_ns()
                ),
            )
        )
    print()
    print(
        report.render_table(
            ("Barrier", "Energy (J)", "Exec time", "Sleep share"),
            rows,
            title=(
                "Extension: thrifty barrier on message passing "
                "({} ranks, 1 straggler)".format(N_RANKS)
            ),
        )
    )
    spin_system, _ = results["spin-recv"]
    thrifty_system, thrifty_barrier = results["thrifty-mp"]
    assert thrifty_barrier.stats.sleeps > 0
    assert (
        thrifty_system.total_account().energy_joules()
        < 0.92 * spin_system.total_account().energy_joules()
    )
    assert (
        thrifty_system.execution_time_ns
        < 1.05 * spin_system.execution_time_ns
    )
    benchmark.extra_info["energy_ratio"] = round(
        thrifty_system.total_account().energy_joules()
        / spin_system.total_account().energy_joules(),
        3,
    )
