"""Ablation: BIT predictor choice (design decision of Section 3.2).

The paper picked PC-indexed last-value prediction for its simplicity
and accuracy. This ablation swaps in a moving average and an
exponentially weighted average on a stable-interval application (FMM)
and on the adversarial swinging one (Ocean).
"""

from repro.experiments import report
from repro.experiments.configs import barrier_factory_for
from repro.experiments.runner import run_app
from repro.machine import System
from repro.predict import (
    ExponentialPredictor,
    LastValuePredictor,
    MovingAveragePredictor,
)
from repro.workloads import WorkloadRunner, get_model

from conftest import PAPER_SEED, PAPER_THREADS, once

PREDICTORS = {
    "last-value (paper)": LastValuePredictor,
    "moving-average(4)": lambda: MovingAveragePredictor(window=4),
    "ewma(0.5)": lambda: ExponentialPredictor(alpha=0.5),
}


def _run_with_predictor(app, predictor):
    runner = WorkloadRunner(
        get_model(app),
        system=System(),
        n_threads=PAPER_THREADS,
        seed=PAPER_SEED,
        barrier_factory=barrier_factory_for("thrifty"),
        predictor=predictor,
    )
    return runner.run()


def test_ablation_predictors(benchmark):
    def sweep():
        out = {}
        for app in ("fmm", "ocean"):
            baseline = run_app(
                app, threads=PAPER_THREADS, seed=PAPER_SEED,
                configs=("baseline",),
            )["baseline"]
            out[app] = (baseline, {
                tag: _run_with_predictor(app, factory())
                for tag, factory in PREDICTORS.items()
            })
        return out

    results = once(benchmark, sweep)
    rows = []
    measured = {}
    for app, (baseline, variants) in results.items():
        for tag, run in variants.items():
            energy = 100.0 * run.energy_joules / baseline.energy_joules
            time_pct = (
                100.0 * run.execution_time_ns / baseline.execution_time_ns
            )
            measured[(app, tag)] = (energy, time_pct)
            rows.append(
                (app, tag, "{:.1f}".format(energy),
                 "{:.1f}".format(time_pct))
            )
    print()
    print(
        report.render_table(
            ("App", "Predictor", "Energy (% of B)", "Time (% of B)"),
            rows,
            title="Ablation: BIT predictor choice under Thrifty",
        )
    )
    # On the stable application every predictor saves energy, and
    # last-value is competitive with the smoothed variants (the paper's
    # simplicity argument).
    fmm_energies = {
        tag: measured[("fmm", tag)][0] for tag in PREDICTORS
    }
    assert all(value < 97.0 for value in fmm_energies.values())
    assert fmm_energies["last-value (paper)"] <= (
        min(fmm_energies.values()) + 1.0
    )
    # No predictor blows up the execution time on the adversarial app.
    for tag in PREDICTORS:
        assert measured[("ocean", tag)][1] < 103.0
    for (app, tag), (energy, time_pct) in measured.items():
        benchmark.extra_info["{}/{}".format(app, tag)] = round(energy, 1)
