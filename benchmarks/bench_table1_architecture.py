"""Table 1: the architecture modeled.

Echoes the configuration and validates it with probe transactions: the
measured L1/L2 round trips, memory access, and network latencies must
equal the published parameters.
"""

from repro.experiments import report, tables

from conftest import once


def test_table1_architecture(benchmark):
    rows, validation = once(benchmark, tables.table1_rows)
    print()
    print(report.render_table1(rows, validation))
    assert validation.l1_round_trip_ns == 2
    assert validation.l2_round_trip_ns == 14
    assert validation.memory_access_ns == 76
    assert validation.network_one_hop_ns == 48
    assert validation.network_diameter_ns == 128
    benchmark.extra_info["l1_rt_ns"] = validation.l1_round_trip_ns
    benchmark.extra_info["l2_rt_ns"] = validation.l2_round_trip_ns
