"""Core DES throughput: events/sec and cells/sec, with a CI gate.

This benchmark is the repo's perf trajectory for the simulator hot path
(`repro.sim` + coherence dispatch + workload generation). It measures:

* **events/sec** — dequeued simulator callbacks (executed + cancelled
  skips) per wall-clock second of the *run phase* (System/workload
  construction is excluded — it is setup, not dispatch), over
  representative live cells: the baseline spin barrier and the full
  thrifty configuration at 16 threads, plus 64- and 256-thread thrifty
  cells, which together exercise the scheduler, the coherence protocol,
  the sleep machinery, the hybrid wake-up cancellation path, and the
  queue depths the scaling studies care about;
* **cells/sec** — full experiment cells per second for one five-way
  application sweep (`run_app`), the unit the campaign engine scales
  by (this one *includes* construction, as a campaign does).

Modes
-----
``python benchmarks/bench_core_events.py``
    Measure and write ``BENCH_core.json`` into the working directory.
``... --check``
    Measure, write ``BENCH_core.json``, then compare events/sec against
    the committed baseline (``benchmarks/BENCH_core_baseline.json``) and
    exit non-zero on a regression beyond ``REGRESSION_TOLERANCE`` (20%).
    This is the CI perf gate. If ``benchmarks/BENCH_core_seed.json``
    (the recorded pre-rewrite core) exists, the speedup over the seed
    core is also reported.
``... --rebaseline``
    Overwrite the committed baseline with a fresh measurement. Only
    legitimate after an intentional perf-relevant change, on a quiet
    machine; commit the diff. See README "Re-baselining core perf".

Timing is min-of-k with interleaved rounds (same discipline as
``bench_telemetry_overhead.py``) so background load sheds into the
discarded rounds instead of biasing one path.
"""

import argparse
import json
import os
import sys
import time

from repro.config import MachineConfig
from repro.experiments.configs import barrier_factory_for
from repro.experiments.runner import run_app
from repro.machine import System
from repro.workloads import WorkloadRunner, get_model

HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(HERE, "BENCH_core_baseline.json")
SEED_PATH = os.path.join(HERE, "BENCH_core_seed.json")
#: Canonical result location — anchored next to this script (like the
#: baseline/seed files), NOT the CWD: a CWD-relative default used to
#: scatter diverging BENCH_core.json copies around the tree depending
#: on where the bench was invoked from. benchmarks/BENCH_core.json is
#: the single tracked copy; pass --output to write elsewhere.
OUTPUT = os.path.join(HERE, "BENCH_core.json")

#: CI gate: fail when events/sec drops more than this below baseline.
REGRESSION_TOLERANCE = 0.20

#: The timed event-throughput cells: (app, config, threads, seed). The
#: 64/256-thread cells weight the aggregate toward the deep-queue
#: regime of the planned scaling studies (ROADMAP item on the 1024-core
#: barrier paper), where scheduler cost dominates.
EVENT_CELLS = (
    ("fmm", "baseline", 16, 1),
    ("fmm", "thrifty", 16, 1),
    ("ocean", "thrifty", 16, 1),
    ("fmm", "thrifty", 64, 1),
    ("fmm", "thrifty", 256, 1),
)

#: The cells/sec sweep: one app, all five configurations.
SWEEP_APP = "fmm"
SWEEP_THREADS = 16
SWEEP_SEED = 1
SWEEP_CELLS = 5

REPEATS = 5


def build_event_cell(app, config, threads, seed):
    """Construct (untimed) one live cell; returns ``(system, runner)``."""
    system = System(MachineConfig(n_nodes=threads))
    runner = WorkloadRunner(
        get_model(app),
        system=system,
        n_threads=threads,
        seed=seed,
        barrier_factory=barrier_factory_for(config),
    )
    return system, runner


def run_event_cell(app, config, threads, seed):
    """Run one live cell; returns dequeued-callback count of the sim."""
    system, runner = build_event_cell(app, config, threads, seed)
    runner.run()
    return system.sim.executed + system.sim.skipped_cancelled


def run_sweep():
    run_app(
        SWEEP_APP, threads=SWEEP_THREADS, seed=SWEEP_SEED,
        machine_config=MachineConfig(n_nodes=SWEEP_THREADS),
    )
    return SWEEP_CELLS


def measure(repeats=REPEATS):
    """Min-of-k measurement; returns the BENCH_core payload."""
    # Warm imports, calibration caches, and allocator pools untimed.
    for cell in EVENT_CELLS:
        run_event_cell(*cell)
    run_sweep()

    # Per-cell min-of-k over the run phase only: construction happens
    # outside the timer, and each cell keeps its own best so one noisy
    # round cannot poison the whole aggregate.
    best_cell_s = [float("inf")] * len(EVENT_CELLS)
    cell_events = [0] * len(EVENT_CELLS)
    best_sweep_s = float("inf")
    for _ in range(repeats):
        for index, cell in enumerate(EVENT_CELLS):
            system, runner = build_event_cell(*cell)
            start = time.perf_counter()
            runner.run()
            elapsed = time.perf_counter() - start
            best_cell_s[index] = min(best_cell_s[index], elapsed)
            cell_events[index] = (
                system.sim.executed + system.sim.skipped_cancelled
            )

        start = time.perf_counter()
        cells = run_sweep()
        best_sweep_s = min(best_sweep_s, time.perf_counter() - start)
    events = sum(cell_events)
    best_event_s = sum(best_cell_s)

    return {
        "schema": 1,
        "events": events,
        "events_per_sec": events / best_event_s,
        "cells_per_sec": cells / best_sweep_s,
        "event_cells": [list(cell) for cell in EVENT_CELLS],
        "sweep": {
            "app": SWEEP_APP,
            "threads": SWEEP_THREADS,
            "seed": SWEEP_SEED,
            "cells": SWEEP_CELLS,
        },
        "repeats": repeats,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
    }


def write_json(path, payload):
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path):
    with open(path) as fh:
        return json.load(fh)


def check(current, baseline, tolerance=REGRESSION_TOLERANCE):
    """The CI assertion; returns the current/baseline throughput ratio."""
    ratio = current["events_per_sec"] / baseline["events_per_sec"]
    if ratio < 1.0 - tolerance:
        raise AssertionError(
            "events/sec regressed {:.1%} below the committed baseline "
            "(current {:,.0f}/s vs baseline {:,.0f}/s; gate allows "
            "-{:.0%}). If the slowdown is intentional and justified, "
            "re-baseline with `python benchmarks/bench_core_events.py "
            "--rebaseline` and commit the diff.".format(
                1.0 - ratio,
                current["events_per_sec"],
                baseline["events_per_sec"],
                tolerance,
            )
        )
    return ratio


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--rebaseline", action="store_true")
    parser.add_argument("--output", default=OUTPUT)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args(argv)

    current = measure(repeats=args.repeats)
    write_json(args.output, current)
    print(
        "events/sec {:>12,.0f}   cells/sec {:>8.2f}   -> {}".format(
            current["events_per_sec"], current["cells_per_sec"], args.output
        )
    )

    if os.path.exists(SEED_PATH):
        seed = load_json(SEED_PATH)
        print(
            "speedup over seed core: {:.2f}x events/sec, "
            "{:.2f}x cells/sec".format(
                current["events_per_sec"] / seed["events_per_sec"],
                current["cells_per_sec"] / seed["cells_per_sec"],
            )
        )

    if args.rebaseline:
        write_json(BASELINE_PATH, current)
        print("re-baselined", BASELINE_PATH)
        return 0

    if args.check:
        if not os.path.exists(BASELINE_PATH):
            print("no committed baseline at", BASELINE_PATH, file=sys.stderr)
            return 2
        ratio = check(current, load_json(BASELINE_PATH))
        print(
            "perf gate OK: {:+.1%} vs committed baseline "
            "(gate allows -{:.0%})".format(
                ratio - 1.0, REGRESSION_TOLERANCE
            )
        )
    return 0


# ---------------------------------------------------------------------------
# pytest surface: the gate also runs under plain pytest for local dev.


def test_core_perf_within_gate():
    if not os.path.exists(BASELINE_PATH):
        import pytest

        pytest.skip("no committed BENCH_core_baseline.json")
    check(measure(repeats=3), load_json(BASELINE_PATH))


if __name__ == "__main__":
    sys.exit(main())
