"""Journaling overhead: what crash safety costs per cell.

Every journaled cell pays two fsynced appends (``dispatched``,
``completed``) plus a periodic checkpoint. Against a real simulation
(tens of milliseconds and up) that must be noise; this benchmark pins
the cost down with a trivial task so the journal itself dominates, and
asserts a loose per-cell budget that only a pathological regression
(e.g. rewriting the whole file per append) would break.
"""

import os
import statistics
import time

import pytest

from repro.experiments.journal import RunJournal
from repro.experiments.parallel import ExperimentEngine
from repro.faults.storage import (
    _write_all,
    active_storage_injector,
    append_line_durable,
)

from conftest import once

CELLS = 64
#: Generous per-cell budget: two fsyncs plus bookkeeping. Loose enough
#: for slow CI disks, tight enough to catch accidental O(n) appends.
PER_CELL_BUDGET_S = 0.05

#: Interleaved shim/raw append pairs in the seam-overhead comparison.
SEAM_APPENDS = 1500
#: The fault seams may cost at most 2% when no injector is installed.
SEAM_OVERHEAD_LIMIT = 1.02
#: Absolute per-append floor: the seam is a constant couple of Python
#: frames (~1µs); on a disk so fast that fsync stops dominating, that
#: constant is still fine even though a pure ratio would flag it.
SEAM_EPSILON_S = 2e-6


def _cells():
    return [{"name": "c{}".format(index)} for index in range(CELLS)]


def _task(cell):
    return cell["name"]


def _run(journal=None):
    engine = ExperimentEngine(journal=journal)
    return engine.run_cells(_cells(), task_fn=_task)


@pytest.fixture()
def journal(tmp_path):
    return RunJournal.create(
        {"kind": "bench-journal", "cells": CELLS},
        run_id="bench", root=tmp_path,
    )


def test_unjournaled_baseline(benchmark):
    assert once(benchmark, _run) == [c["name"] for c in _cells()]


def test_journaled_run_overhead(benchmark, journal):
    out = once(benchmark, lambda: _run(journal))
    assert out == [c["name"] for c in _cells()]
    elapsed = benchmark.stats.stats.mean
    per_cell = elapsed / CELLS
    benchmark.extra_info["per_cell_ms"] = round(per_cell * 1000, 3)
    assert per_cell < PER_CELL_BUDGET_S
    # The journal really recorded every cell (durability was bought).
    state = journal.replay()
    assert len(state.completed) == CELLS
    assert state.finished


def _raw_append(path, data):
    """What ``append_line_durable`` does when no injector is installed,
    with the ``shim_*`` seams bypassed: the same syscalls, the same
    :func:`_write_all` helper, no injector check in the way."""
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        _write_all(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)


def test_disabled_seam_overhead(benchmark, tmp_path):
    """With no injector installed, the fault seams must be free.

    Compares :func:`append_line_durable` (every write and fsync routed
    through the ``shim_*`` indirection) against a seam-free copy of the
    same durable append, on the operation journals actually perform —
    the fsynced append every dispatched/completed record pays. The two
    sides are interleaved *per append* and compared by median, so disk
    latency drift (which dwarfs the seam) lands on both sides equally
    instead of deciding the verdict.
    """
    assert active_storage_injector() is None
    line = b'{"kind": "completed", "cell": "c0", "attempt": 1}\n'
    shim_path = tmp_path / "shim.jsonl"
    raw_path = tmp_path / "raw.jsonl"

    def compare():
        append_line_durable(shim_path, line)  # warm up: create files
        _raw_append(raw_path, line)
        shim_times, raw_times = [], []
        for _ in range(SEAM_APPENDS):
            start = time.perf_counter()
            _raw_append(raw_path, line)
            raw_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            append_line_durable(shim_path, line)
            shim_times.append(time.perf_counter() - start)
        return statistics.median(shim_times), statistics.median(raw_times)

    shim_med, raw_med = once(benchmark, compare)
    benchmark.extra_info["shim_append_us"] = round(shim_med * 1e6, 2)
    benchmark.extra_info["raw_append_us"] = round(raw_med * 1e6, 2)
    benchmark.extra_info["overhead_pct"] = round(
        (shim_med / raw_med - 1.0) * 100, 2
    )
    assert shim_med <= raw_med * SEAM_OVERHEAD_LIMIT + SEAM_EPSILON_S, (
        "disabled fault seams cost {:.2%} over the raw syscalls "
        "(budget 2%)".format(shim_med / raw_med - 1.0)
    )
