"""Journaling overhead: what crash safety costs per cell.

Every journaled cell pays two fsynced appends (``dispatched``,
``completed``) plus a periodic checkpoint. Against a real simulation
(tens of milliseconds and up) that must be noise; this benchmark pins
the cost down with a trivial task so the journal itself dominates, and
asserts a loose per-cell budget that only a pathological regression
(e.g. rewriting the whole file per append) would break.
"""

import pytest

from repro.experiments.journal import RunJournal
from repro.experiments.parallel import ExperimentEngine

from conftest import once

CELLS = 64
#: Generous per-cell budget: two fsyncs plus bookkeeping. Loose enough
#: for slow CI disks, tight enough to catch accidental O(n) appends.
PER_CELL_BUDGET_S = 0.05


def _cells():
    return [{"name": "c{}".format(index)} for index in range(CELLS)]


def _task(cell):
    return cell["name"]


def _run(journal=None):
    engine = ExperimentEngine(journal=journal)
    return engine.run_cells(_cells(), task_fn=_task)


@pytest.fixture()
def journal(tmp_path):
    return RunJournal.create(
        {"kind": "bench-journal", "cells": CELLS},
        run_id="bench", root=tmp_path,
    )


def test_unjournaled_baseline(benchmark):
    assert once(benchmark, _run) == [c["name"] for c in _cells()]


def test_journaled_run_overhead(benchmark, journal):
    out = once(benchmark, lambda: _run(journal))
    assert out == [c["name"] for c in _cells()]
    elapsed = benchmark.stats.stats.mean
    per_cell = elapsed / CELLS
    benchmark.extra_info["per_cell_ms"] = round(per_cell * 1000, 3)
    assert per_cell < PER_CELL_BUDGET_S
    # The journal really recorded every cell (durability was bought).
    state = journal.replay()
    assert len(state.completed) == CELLS
    assert state.finished
