"""Telemetry overhead: the disabled tracer must be (nearly) free.

The instrumentation contract is that every emit site guards on
``Tracer.enabled`` before constructing an event, so a run with
telemetry disabled does the same work as a run with no tracer wired in
at all — one attribute load and one branch per site, zero allocations.
This benchmark measures all three paths on one thrifty cell:

* **untraced** — the default ``NULL_TRACER`` wiring;
* **disabled** — an explicit ``Tracer(enabled=False)`` threaded through
  the whole stack (every guard evaluated, nothing emitted);
* **enabled** — full event collection and metric derivation.

Dual use: under pytest(-benchmark) it reports the three timings; run as
a script (the CI smoke step) it asserts the disabled path stays within
``TOLERANCE`` (5%) of the untraced baseline, min-of-k to shed scheduler
noise.
"""

import sys
import time

from repro.experiments.runner import run_experiment
from repro.telemetry import Tracer

APP = "fmm"
CONFIG = "thrifty"
THREADS = 16
SEED = 1

#: Disabled-tracer budget relative to the untraced baseline.
TOLERANCE = 0.05

#: min-of-k repetitions for the script/CI mode.
REPEATS = 10


def run_untraced():
    return run_experiment(APP, CONFIG, threads=THREADS, seed=SEED)


def run_disabled():
    return run_experiment(
        APP, CONFIG, threads=THREADS, seed=SEED,
        telemetry=Tracer(enabled=False),
    )


def run_enabled():
    return run_experiment(
        APP, CONFIG, threads=THREADS, seed=SEED, telemetry=True,
    )


def measure(repeats=REPEATS):
    """Min-of-k seconds per path.

    The paths are *interleaved* round-robin rather than timed in
    blocks, so slow drift of machine load (another CI job spinning up
    mid-benchmark) penalizes every path equally instead of whichever
    block it landed on; the min then sheds the noisy rounds.
    """
    paths = {
        "untraced": run_untraced,
        "disabled": run_disabled,
        "enabled": run_enabled,
    }
    run_untraced()  # warm imports/caches outside the timed region
    best = {name: float("inf") for name in paths}
    for _ in range(repeats):
        for name, fn in paths.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def check(timings, tolerance=TOLERANCE):
    """The CI assertion; returns the disabled/untraced overhead ratio."""
    overhead = timings["disabled"] / timings["untraced"] - 1.0
    if overhead > tolerance:
        raise AssertionError(
            "disabled-tracer overhead {:.1%} exceeds the {:.0%} budget "
            "(untraced {:.4f}s, disabled {:.4f}s)".format(
                overhead, tolerance,
                timings["untraced"], timings["disabled"],
            )
        )
    return overhead


def main():
    timings = measure()
    for name in ("untraced", "disabled", "enabled"):
        print("{:9s} {:.4f} s".format(name, timings[name]))
    overhead = check(timings)
    print(
        "disabled-tracer overhead {:+.1%} (budget {:.0%}); "
        "enabled-tracer cost {:+.1%}".format(
            overhead, TOLERANCE,
            timings["enabled"] / timings["untraced"] - 1.0,
        )
    )
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark surface


def test_untraced_baseline(benchmark):
    benchmark.pedantic(run_untraced, rounds=3, iterations=1, warmup_rounds=1)


def test_disabled_tracer(benchmark):
    benchmark.pedantic(run_disabled, rounds=3, iterations=1, warmup_rounds=1)


def test_enabled_tracer(benchmark):
    result = benchmark.pedantic(
        run_enabled, rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["events"] = len(result.telemetry.events)


def test_disabled_tracer_within_budget():
    """The 5% budget, also enforced when the file runs under pytest."""
    check(measure())


if __name__ == "__main__":
    sys.exit(main())
