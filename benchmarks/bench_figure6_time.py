"""Figure 6: normalized execution time, ten applications x five configs.

The goal metric: Thrifty's performance degradation stays small (paper:
~2% on the target applications), the oracle configurations match
Baseline exactly, and Ocean — the pathological swinging-interval case —
stays contained thanks to the overprediction cut-off (paper: within
3.5%).
"""

import pytest

from repro.experiments import figures, report
from repro.experiments.metrics import headline_summary, slowdown
from repro.workloads.splash2 import TARGET_APPS

from conftest import once


def test_figure6_time(benchmark, matrix64):
    rows = once(benchmark, lambda: figures.figure6_rows(matrix64))
    print()
    print(report.render_figure6(rows))
    summary = headline_summary(matrix64)

    def wall(app, config):
        return 1.0 + slowdown(
            matrix64[app][config], matrix64[app]["baseline"]
        )

    # Oracle configurations never perturb timing.
    for app in matrix64:
        assert wall(app, "oracle-halt") == pytest.approx(1.0)
        assert wall(app, "ideal") == pytest.approx(1.0)
    # Headline: ~2% degradation in the paper; bounded at 4% here.
    target_slowdown = summary["thrifty"]["target_slowdown"]
    assert 0.0 <= target_slowdown < 0.04
    benchmark.extra_info["thrifty_target_slowdown_pct"] = round(
        100 * target_slowdown, 2
    )
    # Per-app bounds: no target application degrades beyond 5%.
    for app in TARGET_APPS:
        assert wall(app, "thrifty") < 1.05, app
        assert wall(app, "thrifty-halt") < 1.03, app
    # Ocean, the pathological case, is contained by the cut-off.
    assert wall("ocean", "thrifty") < 1.035
    # Low-imbalance apps lose essentially nothing.
    for app in ("fft", "cholesky", "radiosity"):
        assert wall(app, "thrifty") < 1.01, app
