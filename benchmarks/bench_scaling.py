"""Scaling sweeps (beyond the paper's single 64-processor point).

Two questions a user adopting the thrifty barrier asks:

* does the benefit grow with machine size? (straggler imbalance grows
  with P, so it should);
* how sensitive is it to sleep-transition latency? (future processors
  with faster deep states widen the win).
"""

from repro.experiments import report
from repro.experiments.sweeps import latency_scaling, thread_scaling

from conftest import PAPER_SEED, once

APP = "fmm"


def test_thread_scaling(benchmark):
    points = once(
        benchmark,
        lambda: thread_scaling(APP, thread_counts=(8, 16, 32, 64),
                               seed=PAPER_SEED),
    )
    rows = [
        (
            point.threads,
            "{:.1f}%".format(100 * point.imbalance),
            "{:.1f}%".format(100 * point.thrifty_energy_savings),
            "{:.2f}%".format(100 * point.thrifty_slowdown),
            "{:.1f}%".format(100 * point.ideal_energy_savings),
        )
        for point in points
    ]
    print()
    print(
        report.render_table(
            ("Threads", "Imbalance", "Thrifty savings", "Slowdown",
             "Ideal savings"),
            rows,
            title="Thread scaling on {} (one row per machine size)".format(
                APP
            ),
        )
    )
    # Imbalance (and hence the opportunity) grows with P for the
    # rotating-straggler model; savings follow.
    assert points[-1].imbalance > points[0].imbalance
    assert points[-1].thrifty_energy_savings > (
        points[0].thrifty_energy_savings
    )
    for point in points:
        assert point.thrifty_slowdown < 0.05
    benchmark.extra_info["savings_at_64"] = round(
        100 * points[-1].thrifty_energy_savings, 1
    )


def test_transition_latency_scaling(benchmark):
    rows_raw = once(
        benchmark,
        lambda: latency_scaling(APP, factors=(0.25, 0.5, 1.0, 2.0),
                                seed=PAPER_SEED),
    )
    rows = [
        (
            "{:.2f}x".format(factor),
            "{:.1f}%".format(100 * savings),
            "{:.2f}%".format(100 * slow),
        )
        for factor, savings, slow in rows_raw
    ]
    print()
    print(
        report.render_table(
            ("Latency scale", "Thrifty savings", "Slowdown"),
            rows,
            title=(
                "Sleep-transition latency sensitivity on {} "
                "(1.00x = Table 3)".format(APP)
            ),
        )
    )
    savings = {factor: s for factor, s, _slow in rows_raw}
    # Faster transitions can only help: more stalls clear the
    # conditional-sleep bar and less time burns in ramps.
    assert savings[0.25] >= savings[1.0] - 0.005
    assert savings[1.0] >= savings[2.0] - 0.005
    benchmark.extra_info["savings_fast"] = round(100 * savings[0.25], 1)
    benchmark.extra_info["savings_slow"] = round(100 * savings[2.0], 1)
