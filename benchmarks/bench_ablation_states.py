"""Ablation: the sleep-state menu (Section 5.1's multi-state argument).

Runs Volrend (large, stable intervals) and Radix (moderate intervals)
under Thrifty with each state alone and with the full Table 3 menu.
The paper's point: exploiting multiple/deeper states is what separates
Thrifty from Thrifty-Halt.
"""

from repro.config import SLEEP1_HALT, SLEEP2, SLEEP3
from repro.experiments import report
from repro.experiments.metrics import normalized_total, slowdown
from repro.experiments.runner import run_app, run_experiment

from conftest import PAPER_SEED, PAPER_THREADS, once

MENUS = {
    "halt only": (SLEEP1_HALT,),
    "sleep2 only": (SLEEP2,),
    "sleep3 only": (SLEEP3,),
    "full menu (paper)": (SLEEP1_HALT, SLEEP2, SLEEP3),
}


def test_ablation_sleep_states(benchmark):
    def sweep():
        out = {}
        for app in ("volrend", "radix"):
            baseline = run_app(
                app, threads=PAPER_THREADS, seed=PAPER_SEED,
                configs=("baseline",),
            )["baseline"]
            out[app] = (baseline, {
                tag: run_experiment(
                    app, "thrifty",
                    threads=PAPER_THREADS, seed=PAPER_SEED,
                    sleep_states=menu,
                )
                for tag, menu in MENUS.items()
            })
        return out

    results = once(benchmark, sweep)
    rows = []
    energies = {}
    for app, (baseline, variants) in results.items():
        for tag, result in variants.items():
            energy = normalized_total(result, baseline)
            energies[(app, tag)] = energy
            rows.append(
                (
                    app, tag, "{:.1f}".format(energy),
                    "{:.2f}%".format(100 * slowdown(result, baseline)),
                )
            )
    print()
    print(
        report.render_table(
            ("App", "Menu", "Energy (% of B)", "Slowdown"),
            rows,
            title="Ablation: sleep-state menu under Thrifty",
        )
    )
    for app in ("volrend", "radix"):
        # Deeper beats shallower on these interval lengths...
        assert energies[(app, "sleep3 only")] < energies[(app, "halt only")]
        # ... and the full menu is at least as good as any single state
        # (it can always fall back to the same choice).
        best_single = min(
            energies[(app, tag)]
            for tag in ("halt only", "sleep2 only", "sleep3 only")
        )
        assert energies[(app, "full menu (paper)")] <= best_single + 0.5
        benchmark.extra_info[app] = round(
            energies[(app, "full menu (paper)")], 1
        )
