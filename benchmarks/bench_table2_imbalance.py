"""Table 2: barrier imbalance of the ten applications.

Runs the Baseline configuration for every application on the 64-node
machine and compares the measured imbalance against the paper's
figures. The paper-vs-measured rows are printed.
"""

import pytest

from repro.experiments import report, tables
from repro.workloads.splash2 import TABLE2_IMBALANCE

from conftest import PAPER_SEED, PAPER_THREADS, once


def test_table2_imbalance(benchmark):
    rows = once(
        benchmark,
        lambda: tables.table2_rows(threads=PAPER_THREADS, seed=PAPER_SEED),
    )
    print()
    print(report.render_table2(rows))
    for app, _size, paper_pct, measured_pct in rows:
        assert measured_pct == pytest.approx(paper_pct, rel=0.15), app
        benchmark.extra_info[app] = round(measured_pct, 2)
    # Table 2 order: descending imbalance, preserved by the measurement
    # up to the five-target / five-non-target split.
    targets = [row for row in rows if TABLE2_IMBALANCE[row[0]] >= 0.10]
    others = [row for row in rows if TABLE2_IMBALANCE[row[0]] < 0.10]
    assert min(row[3] for row in targets) > max(row[3] for row in others)
