"""Figure 5: normalized energy, ten applications x five configurations.

Prints the stacked-bar data (Compute/Spin/Transition/Sleep as % of each
application's Baseline energy) and asserts the paper's shape results:

* Thrifty saves substantially on the five target applications, more
  than Thrifty-Halt, which is itself bounded by Oracle-Halt's vicinity;
* Ideal is the lower bound;
* FFT and Cholesky behave like Baseline (non-repeating barriers leave
  the PC-indexed predictor unused);
* Volrend benefits the most and approaches Ideal.
"""

import pytest

from repro.experiments import figures, report
from repro.experiments.metrics import headline_summary, normalized_total
from repro.workloads.splash2 import TARGET_APPS

from conftest import once


def test_figure5_energy(benchmark, matrix64):
    rows = once(benchmark, lambda: figures.figure5_rows(matrix64))
    print()
    print(report.render_figure5(rows))
    summary = headline_summary(matrix64)
    print(report.render_headline(matrix64))

    def total(app, config):
        return normalized_total(
            matrix64[app][config], matrix64[app]["baseline"]
        )

    # Headline (paper: ~17% Thrifty, ~11% cap for Thrifty-Halt; our
    # simulator lands lower in absolute terms but preserves the shape).
    thrifty_savings = summary["thrifty"]["target_energy_savings"]
    halt_savings = summary["thrifty-halt"]["target_energy_savings"]
    assert 0.08 <= thrifty_savings <= 0.25
    assert halt_savings <= 0.13
    assert thrifty_savings > halt_savings
    # Multiple states matter: the leave-one-out (Volrend -> Water-Sp)
    # gap narrows but Thrifty still wins (paper: 6.5% vs 10.5%).
    assert (
        summary["thrifty"]["loo_energy_savings"]
        > 0.5 * summary["thrifty-halt"]["loo_energy_savings"]
    )
    benchmark.extra_info["thrifty_target_savings_pct"] = round(
        100 * thrifty_savings, 1
    )
    benchmark.extra_info["halt_target_savings_pct"] = round(
        100 * halt_savings, 1
    )

    # Per-application shape.
    for app in TARGET_APPS:
        assert total(app, "thrifty") < 97.0, app
        assert total(app, "ideal") <= total(app, "thrifty") + 0.5, app
    # Volrend: the showcase — deepest savings, close to Ideal.
    assert total("volrend", "thrifty") < 70.0
    assert total("volrend", "thrifty") - total("volrend", "ideal") < 8.0
    # FFT and Cholesky: predictor unused -> Thrifty behaves as Baseline.
    for app in ("fft", "cholesky"):
        assert total(app, "thrifty") == pytest.approx(100.0, abs=0.5), app
        assert total(app, "thrifty-halt") == pytest.approx(
            100.0, abs=0.5
        ), app
    # Oracle-Halt never exceeds Baseline.
    for app in matrix64:
        assert total(app, "oracle-halt") <= 100.01, app
