"""Extension: time-sharing vs. the thrifty barrier (Section 3.4.1).

The paper argues that yielding the CPU to co-scheduled threads also
avoids spin waste, but risks performance: when the barrier releases,
threads must re-acquire CPUs. We run the same total work as (a) a
dedicated thrifty run (P threads on P CPUs) and (b) an over-threaded
yielding run (2P threads, half the work each, 2 per CPU), and print
energy and execution time.
"""

from repro.config import MachineConfig
from repro.energy.accounting import Category
from repro.experiments import report
from repro.machine import System, make_tokens
from repro.predict import LastValuePredictor, TimingDomain
from repro.sync import ThriftyBarrier, YieldingBarrier

from conftest import once

N_NODES = 16
UNIT_NS = 400_000
ITERATIONS = 8


def dedicated_thrifty():
    system = System(MachineConfig(n_nodes=N_NODES))
    domain = TimingDomain(system, N_NODES, predictor=LastValuePredictor())
    barrier = ThriftyBarrier(system, domain, N_NODES, pc="ts.b")

    def program(node):
        for _ in range(ITERATIONS):
            # The dedicated thread does its CPU's whole per-phase work:
            # 3 units on the straggler CPU, 2 elsewhere (matching the
            # over-threaded split below).
            units = 3 if node.node_id == 0 else 2
            yield from node.cpu.compute(units * UNIT_NS)
            yield from barrier.wait(node)

    system.run_threads(program)
    return system


def overthreaded_yielding():
    system = System(MachineConfig(n_nodes=N_NODES))
    n_threads = 2 * N_NODES
    domain = TimingDomain(system, n_threads, predictor=LastValuePredictor())
    barrier = YieldingBarrier(system, domain, n_threads, pc="ts.y")
    tokens, nodes = make_tokens(system, threads_per_cpu=2)

    for thread_id in range(n_threads):
        def program(thread_id=thread_id):
            node = nodes[thread_id]
            token = tokens[thread_id]
            for _ in range(ITERATIONS):
                yield from token.acquire(thread_id)
                # Thread 0 is the straggler (2 units); its sibling and
                # everyone else do 1 unit: per-CPU totals match the
                # dedicated run.
                units = 2 if thread_id == 0 else 1
                yield from node.cpu.compute(units * UNIT_NS)
                yield from barrier.wait(node, thread_id, token)
            yield from token.acquire(thread_id)
            token.release(thread_id)

        system.spawn_thread(thread_id % N_NODES, program())
    system.run()
    return system


def test_ext_timeshare(benchmark):
    def sweep():
        return {
            "thrifty (dedicated)": dedicated_thrifty(),
            "yielding (2x over-threaded)": overthreaded_yielding(),
        }

    results = once(benchmark, sweep)
    rows = []
    for tag, system in results.items():
        total = system.total_account()
        rows.append(
            (
                tag,
                "{:.4f}".format(total.energy_joules()),
                "{:.3f} ms".format(system.execution_time_ns / 1e6),
                "{:.1f}%".format(
                    100 * total.time_ns(Category.SPIN) / max(1, total.time_ns())
                ),
            )
        )
    print()
    print(
        report.render_table(
            ("Policy", "Energy (J)", "Exec time", "Spin share"),
            rows,
            title=(
                "Extension: dedicated thrifty vs. over-threaded yielding "
                "(same total work, {} CPUs)".format(N_NODES)
            ),
        )
    )
    thrifty_system = results["thrifty (dedicated)"]
    yielding_system = results["yielding (2x over-threaded)"]
    # Both avoid spin waste; time-sharing pays for it in execution time
    # (serialized co-threads + context switches) — Section 3.4.1's
    # argument for the thrifty barrier.
    assert (
        thrifty_system.execution_time_ns
        < yielding_system.execution_time_ns
    )
    benchmark.extra_info["time_ratio"] = round(
        yielding_system.execution_time_ns
        / thrifty_system.execution_time_ns,
        2,
    )
