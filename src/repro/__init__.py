"""Reproduction of the Thrifty Barrier (Li, Martinez, Huang; HPCA 2004).

The package is organized bottom-up:

* :mod:`repro.sim` -- deterministic discrete-event kernel;
* :mod:`repro.energy` -- Wattch-style power model, sleep states, accounting;
* :mod:`repro.interconnect` / :mod:`repro.coherence` -- hypercube network and
  directory-MESI coherence with the thrifty cache-controller extensions;
* :mod:`repro.machine` -- CPUs with sleep-state machines, nodes, the 64-node
  CC-NUMA system of the paper's Table 1;
* :mod:`repro.predict` -- BIT/BRTS/BST bookkeeping and predictors;
* :mod:`repro.sync` -- conventional, thrifty, oracle, and baseline barriers;
* :mod:`repro.workloads` -- SPLASH-2-calibrated workload models;
* :mod:`repro.telemetry` -- structured tracing, metrics, and timeline export;
* :mod:`repro.experiments` -- the harness reproducing every table and figure.

The top-level names below are loaded lazily so that importing a low-level
subpackage (for instance :mod:`repro.sim` in a unit test) does not pull in
the whole stack.
"""

__version__ = "1.6.0"

_LAZY = {
    "MachineConfig": ("repro.config", "MachineConfig"),
    "SleepStateConfig": ("repro.config", "SleepStateConfig"),
    "ThriftyConfig": ("repro.config", "ThriftyConfig"),
    "CONFIG_NAMES": ("repro.experiments.configs", "CONFIG_NAMES"),
    "run_experiment": ("repro.experiments.runner", "run_experiment"),
    "run_matrix": ("repro.experiments.runner", "run_matrix"),
    "MetricsRegistry": ("repro.telemetry.metrics", "MetricsRegistry"),
    "Tracer": ("repro.telemetry.tracer", "Tracer"),
    "TelemetrySnapshot": ("repro.telemetry.tracer", "TelemetrySnapshot"),
    "FaultPlan": ("repro.faults.plan", "FaultPlan"),
    "FaultInjector": ("repro.faults.injector", "FaultInjector"),
    "install_fault_plan": ("repro.faults.injector", "install_fault_plan"),
    "InvariantChecker": ("repro.faults.invariants", "InvariantChecker"),
    "run_chaos_campaign": ("repro.faults.chaos", "run_chaos_campaign"),
    "sample_plans": ("repro.faults.chaos", "sample_plans"),
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return __all__
