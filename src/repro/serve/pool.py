"""Hotplug worker pool for the campaign service.

The batch engine's pool is sized once and dissolved when its matrix
finishes. A long-running service needs the opposite: workers that
outlive any one campaign, can *join and leave mid-campaign* (operator
grows the pool for a big sweep, shrinks it to give the machine back),
and are supervised continuously rather than per-run.

:class:`WorkerPool` reuses the engine's building blocks wholesale so
the execution semantics stay identical:

* workers run :func:`repro.experiments.parallel.run_cell` (the same
  bit-exact unit the batch engine runs) and speak the same queue
  protocol — ``(key, OK, result)`` / ``(key, ERR, (type, msg))``
  messages with the watchdog's ``(BEAT_INDEX, BEAT, n)`` heartbeats
  riding the same :class:`~multiprocessing.SimpleQueue`;
* liveness comes from :mod:`repro.experiments.watchdog`: each worker
  runs :func:`~repro.experiments.watchdog.start_beat_thread`, the pool
  feeds a :class:`~repro.experiments.watchdog.HeartbeatMonitor`, and a
  worker whose beats go stale is killed and reported so the dispatcher
  can requeue its cell through the normal retry accounting.

Unlike the engine's chunked dispatch, the pool dispatches **one cell
at a time** to an idle worker: a service interleaves cells from many
campaigns, so there is no chunk to plan ahead. The supervisor drives
everything through :meth:`WorkerPool.poll` — a non-blocking sweep that
drains queues, adjudicates liveness, and reports what changed as plain
tuples; the pool itself never touches campaign state.
"""

import os
import signal
import sys
import time

from repro.errors import ConfigError
from repro.experiments.parallel import ERR, OK, _fork_context, run_cell
from repro.experiments.watchdog import (
    BEAT,
    BEAT_INDEX,
    HeartbeatMonitor,
    WatchdogPolicy,
    start_beat_thread,
)

#: Seconds to wait for a terminated worker before escalating to kill.
_STOP_GRACE_S = 1.0


def _pool_worker(inbox, outbox, task, beat_interval_s, child_setup=None):
    """Worker body: serve cells off ``inbox`` until the None sentinel.

    Results are posted synchronously (SimpleQueue has no feeder
    thread), so once a put returns the result survives even an
    immediate SIGKILL. ``BaseException`` is caught per cell: a worker
    survives a failing cell and stays available for the next one.

    ``child_setup`` runs first, inside the forked child: fork copies
    every open descriptor of the supervisor, so a worker spawned while
    the server is listening would otherwise inherit the listening
    socket — and after a SIGKILL of the server, orphaned workers would
    keep the port bound, blocking the restart that is supposed to
    resume their campaigns. The server uses this hook to close its
    listener in the child.
    """
    if child_setup is not None:
        try:
            child_setup()
        except Exception as exc:
            # A failed cleanup must not take the worker down, but it
            # must not be invisible either (a swallowed error here once
            # hid a leaked listening socket).
            print(
                "worker {}: child_setup failed: {!r}".format(
                    os.getpid(), exc
                ),
                file=sys.stderr,
            )
    stop_beats = None
    if beat_interval_s is not None:
        stop_beats = start_beat_thread(outbox, beat_interval_s)
    try:
        while True:
            item = inbox.get()
            if item is None:
                return
            key, cell = item
            try:
                result = task(cell)
            except BaseException as exc:
                outbox.put((key, ERR, (type(exc).__name__, str(exc))))
            else:
                outbox.put((key, OK, result))
    finally:
        if stop_beats is not None:
            stop_beats.set()


class _Worker:
    """Supervisor-side record of one worker process."""

    def __init__(self, process, inbox, outbox):
        self.process = process
        self.inbox = inbox
        self.outbox = outbox
        #: Cache key of the cell this worker is running (None = idle).
        self.key = None
        #: True once the worker was sent the retirement sentinel; its
        #: eventual death is a planned departure, not a crash.
        self.draining = False

    @property
    def pid(self):
        return self.process.pid

    def busy(self):
        return self.key is not None


class WorkerPool:
    """A resizable, watchdog-supervised pool of cell workers.

    Parameters
    ----------
    size:
        Initial worker count (>= 1).
    task:
        The per-cell function (defaults to the engine's
        :func:`~repro.experiments.parallel.run_cell`); injectable so
        tests can run sleepy or crashy tasks.
    watchdog:
        Anything :meth:`WatchdogPolicy.coerce` accepts; ``None``
        disables staleness supervision (crash detection remains).
    """

    def __init__(self, size, task=None, watchdog=True):
        if size < 1:
            raise ConfigError("pool size must be >= 1")
        self.target = size
        self.task = task or run_cell
        self.policy = WatchdogPolicy.coerce(watchdog)
        self.monitor = (
            HeartbeatMonitor(self.policy) if self.policy else None
        )
        self._context = _fork_context()
        if self._context is None:
            raise ConfigError(
                "the campaign service needs the fork start method, "
                "which this platform does not support"
            )
        self._workers = {}  # pid -> _Worker
        self._started = False
        #: Optional callable run first thing inside each forked worker
        #: (e.g. the server closing its inherited listening socket).
        #: Read at spawn time, so it may be assigned after start().
        self.child_setup = None

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Spawn the initial workers; returns their pids."""
        self._started = True
        return [self._spawn() for _ in range(self.target)]

    def _spawn(self):
        inbox = self._context.SimpleQueue()
        outbox = self._context.SimpleQueue()
        beat = self.policy.beat_interval_s if self.policy else None
        process = self._context.Process(
            target=_pool_worker,
            args=(inbox, outbox, self.task, beat, self.child_setup),
            daemon=True,
        )
        process.start()
        worker = _Worker(process, inbox, outbox)
        self._workers[process.pid] = worker
        if self.monitor is not None:
            self.monitor.register(process.pid)
        return process.pid

    def stop(self):
        """Retire every worker: sentinel, grace period, then kill."""
        self.target = 0
        for worker in self._workers.values():
            self._retire(worker)
        deadline = time.monotonic() + _STOP_GRACE_S
        for worker in self._workers.values():
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                self._kill(worker)
        for worker in self._workers.values():
            self._forget(worker)
        self._workers.clear()

    # -- sizing --------------------------------------------------------

    def resize(self, target):
        """Change the worker count; returns the pids told to retire.

        Growth happens in the next :meth:`poll` (which maintains the
        target). Shrinking retires idle workers immediately and marks
        busy ones *draining* — they finish their current cell, post
        its result, then exit on the sentinel, so a shrink never
        abandons work.
        """
        if target < 1:
            raise ConfigError("pool size must be >= 1")
        self.target = target
        retired = []
        excess = self._population() - target
        if excess <= 0:
            return retired
        candidates = sorted(
            self._workers.values(),
            key=lambda w: (w.busy(), w.pid),
        )
        for worker in candidates:
            if excess <= 0:
                break
            if worker.draining:
                continue
            self._retire(worker)
            retired.append(worker.pid)
            excess -= 1
        return retired

    def _population(self):
        """Workers counting toward the target (drainers are leaving)."""
        return sum(1 for w in self._workers.values() if not w.draining)

    def _retire(self, worker):
        worker.draining = True
        try:
            worker.inbox.put(None)
        except (OSError, ValueError):
            pass  # already dead; poll() will reap it

    def _kill(self, worker):
        process = worker.process
        try:
            process.terminate()
            process.join(0.2)
            if process.is_alive():
                process.kill()
                process.join(0.2)
        except (OSError, ValueError):
            pass

    def _forget(self, worker):
        if self.monitor is not None:
            self.monitor.forget(worker.pid)
        for queue in (worker.inbox, worker.outbox):
            try:
                queue.close()
            except (AttributeError, OSError):
                pass

    # -- dispatch ------------------------------------------------------

    def idle_workers(self):
        """Pids ready for a cell, in stable (pid) order."""
        return [
            w.pid for w in sorted(
                self._workers.values(), key=lambda w: w.pid
            )
            if not w.busy() and not w.draining and w.process.is_alive()
        ]

    def dispatch(self, pid, key, cell):
        """Hand ``cell`` (cache-keyed ``key``) to an idle worker.

        Returns False when the worker can no longer accept (died or
        started draining since :meth:`idle_workers`); the caller keeps
        the cell queued.
        """
        worker = self._workers.get(pid)
        if worker is None or worker.busy() or worker.draining:
            return False
        try:
            worker.inbox.put((key, cell))
        except (OSError, ValueError):
            return False
        worker.key = key
        return True

    # -- supervision ---------------------------------------------------

    def poll(self):
        """One non-blocking supervision sweep; returns change events.

        Event tuples, in emission order:

        * ``("result", pid, key, status, payload)`` — a worker posted
          a cell result (``status`` is ``OK``/``ERR``);
        * ``("left", pid, reason)`` — a worker exited; ``reason`` is
          ``"retired"`` (planned) or ``"stalled"`` (watchdog kill);
        * ``("crashed", pid, key)`` — a worker died unplanned; ``key``
          is the cell it was running (None if idle);
        * ``("stalled", pid, key, stale_s)`` — the watchdog declared
          the worker hung (a kill + ``left`` follows in the same
          sweep);
        * ``("joined", pid)`` — a replacement/growth worker spawned.

        Queues are drained *before* liveness checks so the final
        results of a worker that died after posting are never lost.
        """
        events = []
        for worker in list(self._workers.values()):
            events.extend(self._drain(worker))
        for worker in list(self._workers.values()):
            if not worker.process.is_alive():
                events.extend(self._reap(worker))
            elif (
                self.monitor is not None
                and not worker.draining
                and self.monitor.is_stale(worker.pid)
            ):
                stale_s = self.monitor.staleness(worker.pid)
                self.monitor.declare_stall(worker.pid)
                events.append(
                    ("stalled", worker.pid, worker.key, stale_s)
                )
                self._kill(worker)
                events.extend(self._reap(worker, stalled=True))
        if self._started:
            while self._population() < self.target:
                events.append(("joined", self._spawn()))
        return events

    def _drain(self, worker):
        events = []
        try:
            while not worker.outbox.empty():
                key, status, payload = worker.outbox.get()
                if key == BEAT_INDEX and status == BEAT:
                    if self.monitor is not None:
                        self.monitor.beat(worker.pid)
                    continue
                if self.monitor is not None:
                    # A result proves liveness as well as any beat.
                    self.monitor.beat(worker.pid)
                if worker.key == key:
                    worker.key = None
                events.append(
                    ("result", worker.pid, key, status, payload)
                )
        except (EOFError, OSError):
            pass  # queue torn down under us; liveness check follows
        return events

    def _reap(self, worker, stalled=False):
        """Remove a dead worker, reporting how it left."""
        events = []
        if stalled:
            events.append(("left", worker.pid, "stalled"))
        elif worker.draining:
            events.append(("left", worker.pid, "retired"))
        else:
            events.append(("crashed", worker.pid, worker.key))
        self._forget(worker)
        self._workers.pop(worker.pid, None)
        return events

    # -- introspection -------------------------------------------------

    def describe(self):
        """JSON-ready snapshot for the ``GET /pool`` endpoint."""
        workers = []
        for worker in sorted(self._workers.values(), key=lambda w: w.pid):
            workers.append({
                "pid": worker.pid,
                "busy": worker.busy(),
                "cell_key": worker.key,
                "draining": worker.draining,
                "alive": worker.process.is_alive(),
                "staleness_s": (
                    round(self.monitor.staleness(worker.pid), 3)
                    if self.monitor is not None else None
                ),
            })
        return {
            "target": self.target,
            "workers": workers,
            "stalls": (
                self.monitor.stalls if self.monitor is not None else 0
            ),
        }

    def __len__(self):
        return len(self._workers)


def kill_worker(pid):
    """Test/chaos helper: SIGKILL one pool worker outright."""
    os.kill(pid, signal.SIGKILL)
