"""Blocking HTTP client for the campaign service.

The client half of ``repro submit`` / ``status`` / ``results`` /
``cancel`` / ``shutdown``: a thin :mod:`http.client` wrapper (stdlib,
matching the server's no-dependency rule) that decodes JSON bodies and
turns transport failures and error statuses into
:class:`~repro.errors.ServeError` with the HTTP status attached.

Self-healing: the client assumes the network is hostile (the
:mod:`repro.faults.netchaos` proxy makes it so in tests) and repairs
what is safe to repair:

* **idempotent requests retry.** GET and DELETE carry no submission
  state, so a transport failure (connection refused/reset, timeout), a
  503 load-shed answer, or a truncated/garbled response body (there is
  no Content-Length on the wire — a mid-response cut reads as a short
  body that fails to parse) is retried up to ``retries`` times with
  seeded jittered exponential backoff. POST is *never* retried — a
  duplicate submit would start a second campaign;
* **the event stream reconnects on truncation.** A torn or corrupt
  ndjson line, or a connection cut mid-stream, triggers a reconnect;
  the server replays its full backlog, so the client skips the lines
  it already yielded and resumes seamlessly. A stream that closes
  cleanly *before* the campaign is terminal is treated as a drop at a
  line boundary and also reconnects;
* :meth:`ServeClient.wait` polls with jittered exponential backoff
  (``poll_s`` floor, ``poll_cap_s`` cap) instead of a fixed-rate spin,
  so a thousand long-running campaign watchers do not hammer the
  server four times a second each.
"""

import http.client
import json
import random
import socket
import time

from repro.errors import ServeError
from repro.serve.server import DEFAULT_PORT

#: Methods safe to retry: no request state is created server-side.
_IDEMPOTENT = ("GET", "DELETE")

#: Terminal campaign states (mirrors the server's).
_TERMINAL = ("done", "cancelled")


class _StreamBroken(Exception):
    """Internal: the event stream tore mid-flight; reconnect."""


class ServeClient:
    """One server endpoint; connections are per-request (the server
    closes after every response).

    ``retries`` bounds both idempotent-request retries and event-
    stream reconnects; ``backoff_seed`` makes the jittered backoff
    schedule reproducible (fleet-wide decorrelation still holds —
    give each client its own seed).
    """

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, timeout=10.0,
                 retries=2, backoff_base_s=0.1, backoff_cap_s=2.0,
                 backoff_seed=0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random("serve-client:{}".format(backoff_seed))

    # -- transport -----------------------------------------------------

    def _backoff_s(self, attempt):
        """Jittered exponential delay before retry ``attempt`` (>=1)."""
        raw = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** (attempt - 1)),
        )
        return raw * (0.5 + 0.5 * self._rng.random())

    def _once(self, method, path, body, headers, timeout):
        """One request/response exchange; returns (status, data)."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _request(self, method, path, payload=None, timeout=None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        retriable = method in _IDEMPOTENT
        attempt = 0
        while True:
            attempt += 1
            status = None
            try:
                status, data = self._once(
                    method, path, body, headers, timeout,
                )
            except (OSError, socket.timeout,
                    http.client.HTTPException) as exc:
                if retriable and attempt <= self.retries:
                    time.sleep(self._backoff_s(attempt))
                    continue
                raise ServeError(
                    "cannot reach repro serve at {}:{} ({})".format(
                        self.host, self.port, exc
                    )
                )
            if status == 503 and retriable and attempt <= self.retries:
                # Load shedding: the server answered before reading the
                # request, so backing off and retrying is always safe.
                time.sleep(self._backoff_s(attempt))
                continue
            try:
                # Every endpoint answers with a JSON body; an empty one
                # means the connection was cut between status line and
                # body (http.client reads EOF-terminated headers
                # without complaint), so it is torn, not a document.
                if not data:
                    raise ValueError("empty response body")
                document = json.loads(data.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # Responses carry no Content-Length (the body ends at
                # EOF), so a connection cut mid-response looks like a
                # short body that fails to parse — heal it like any
                # other transport failure when the method allows.
                if retriable and attempt <= self.retries:
                    time.sleep(self._backoff_s(attempt))
                    continue
                raise ServeError(
                    "malformed response from {} {} (status {})".format(
                        method, path, status
                    ),
                    status=status,
                )
            break
        if status >= 400:
            message = document.get("error") if isinstance(document, dict) \
                else None
            raise ServeError(
                message or "{} {} failed with status {}".format(
                    method, path, status
                ),
                status=status,
            )
        return document

    # -- endpoints -----------------------------------------------------

    def health(self):
        return self._request("GET", "/")

    def submit(self, spec):
        """Submit a campaign spec; returns its status payload."""
        return self._request("POST", "/campaigns", payload=spec)

    def campaigns(self):
        return self._request("GET", "/campaigns")

    def status(self, run_id):
        return self._request("GET", "/campaigns/{}".format(run_id))

    def results(self, run_id):
        """The final records document (raises 409 while running)."""
        return self._request(
            "GET", "/campaigns/{}/results".format(run_id)
        )

    def cancel(self, run_id):
        return self._request("DELETE", "/campaigns/{}".format(run_id))

    def pool(self):
        return self._request("GET", "/pool")

    def set_pool(self, workers):
        """Hotplug the worker pool to ``workers`` processes."""
        return self._request(
            "POST", "/pool", payload={"workers": workers},
        )

    def shutdown(self):
        return self._request("POST", "/shutdown")

    # -- conveniences --------------------------------------------------

    def wait(self, run_id, timeout=600.0, poll_s=0.2, poll_cap_s=2.0):
        """Poll until the campaign reaches a terminal state.

        Polls with jittered exponential backoff: the first sleep is
        about ``poll_s`` (the floor — a short campaign is still seen
        finishing promptly), doubling up to ``poll_cap_s``, each
        scaled by seeded jitter. Returns the final status payload;
        raises :class:`~repro.errors.ServeError` on timeout.
        """
        deadline = time.monotonic() + timeout
        delay = poll_s
        while True:
            status = self.status(run_id)
            if status["state"] in _TERMINAL:
                return status
            now = time.monotonic()
            if now >= deadline:
                raise ServeError(
                    "campaign {} still {} after {:.0f}s ({} of {} "
                    "cells)".format(
                        run_id, status["state"], timeout,
                        status["completed"], status["total"],
                    )
                )
            sleep_s = min(
                delay * (0.5 + 0.5 * self._rng.random()),
                max(0.0, deadline - now),
            )
            time.sleep(sleep_s)
            delay = min(poll_cap_s, delay * 2)

    def events(self, run_id, timeout=600.0):
        """Generator over the campaign's ndjson progress stream.

        Reconnects on truncation: a torn/corrupt line or a mid-stream
        disconnect re-opens the stream (up to ``retries`` times with
        backoff), skips the lines already yielded (the server replays
        its backlog on every connect), and continues. A clean close
        before the campaign is terminal counts as a drop too — the cut
        just happened to land on a line boundary.
        """
        seen = 0
        reconnects = 0
        while True:
            try:
                for item in self._stream_once(run_id, timeout, skip=seen):
                    seen += 1
                    yield item
                # Clean close. Terminal campaign => genuinely done;
                # otherwise the stream was cut at a line boundary.
                if self.status(run_id)["state"] in _TERMINAL:
                    return
                raise _StreamBroken(
                    "stream closed before the campaign finished"
                )
            except _StreamBroken as exc:
                reconnects += 1
                if reconnects > self.retries:
                    raise ServeError(
                        "event stream from {}:{} broke ({}) and did not "
                        "recover after {} reconnect(s)".format(
                            self.host, self.port, exc, self.retries
                        )
                    )
                time.sleep(self._backoff_s(reconnects))

    def _stream_once(self, run_id, timeout, skip):
        """One connection's worth of events, skipping replayed backlog.

        Raises :class:`_StreamBroken` on anything a reconnect can heal
        (transport failure, torn line, corrupt line, 503);
        :class:`~repro.errors.ServeError` on definitive refusals (404).
        """
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout,
            )
        except (OSError, socket.timeout) as exc:
            raise _StreamBroken(str(exc))
        try:
            try:
                conn.request(
                    "GET", "/campaigns/{}/events".format(run_id),
                )
                response = conn.getresponse()
            except (OSError, socket.timeout,
                    http.client.HTTPException) as exc:
                raise _StreamBroken(str(exc))
            if response.status == 503:
                raise _StreamBroken("server shedding load (503)")
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data.decode("utf-8"))["error"]
                except Exception:
                    message = "event stream failed with status " \
                        "{}".format(response.status)
                raise ServeError(message, status=response.status)
            index = 0
            while True:
                try:
                    raw = response.readline()
                except (OSError, socket.timeout,
                        http.client.HTTPException) as exc:
                    raise _StreamBroken(str(exc))
                if not raw:
                    return  # clean end of stream
                if not raw.endswith(b"\n"):
                    raise _StreamBroken("torn final line")
                line = raw.strip()
                if not line:
                    continue
                try:
                    item = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    raise _StreamBroken("corrupt event line")
                index += 1
                if index <= skip:
                    continue  # backlog replayed on reconnect
                yield item
        finally:
            conn.close()
