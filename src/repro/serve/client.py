"""Blocking HTTP client for the campaign service.

The client half of ``repro submit`` / ``status`` / ``results`` /
``cancel`` / ``shutdown``: a thin :mod:`http.client` wrapper (stdlib,
matching the server's no-dependency rule) that decodes JSON bodies and
turns transport failures and error statuses into
:class:`~repro.errors.ServeError` with the HTTP status attached.

Streaming: :meth:`ServeClient.events` yields the ndjson progress feed
line by line as the server emits it, ending when the campaign reaches
a terminal state (the server closes the connection).
"""

import http.client
import json
import socket
import time

from repro.errors import ServeError
from repro.serve.server import DEFAULT_PORT


class ServeClient:
    """One server endpoint; connections are per-request (the server
    closes after every response)."""

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, timeout=10.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method, path, payload=None, timeout=None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port,
                timeout=self.timeout if timeout is None else timeout,
            )
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            finally:
                conn.close()
        except (OSError, socket.timeout, http.client.HTTPException) as exc:
            raise ServeError(
                "cannot reach repro serve at {}:{} ({})".format(
                    self.host, self.port, exc
                )
            )
        try:
            document = json.loads(data.decode("utf-8")) if data else {}
        except (ValueError, UnicodeDecodeError):
            raise ServeError(
                "malformed response from {} {} (status {})".format(
                    method, path, response.status
                ),
                status=response.status,
            )
        if response.status >= 400:
            message = document.get("error") if isinstance(document, dict) \
                else None
            raise ServeError(
                message or "{} {} failed with status {}".format(
                    method, path, response.status
                ),
                status=response.status,
            )
        return document

    # -- endpoints -----------------------------------------------------

    def health(self):
        return self._request("GET", "/")

    def submit(self, spec):
        """Submit a campaign spec; returns its status payload."""
        return self._request("POST", "/campaigns", payload=spec)

    def campaigns(self):
        return self._request("GET", "/campaigns")

    def status(self, run_id):
        return self._request("GET", "/campaigns/{}".format(run_id))

    def results(self, run_id):
        """The final records document (raises 409 while running)."""
        return self._request(
            "GET", "/campaigns/{}/results".format(run_id)
        )

    def cancel(self, run_id):
        return self._request("DELETE", "/campaigns/{}".format(run_id))

    def pool(self):
        return self._request("GET", "/pool")

    def set_pool(self, workers):
        """Hotplug the worker pool to ``workers`` processes."""
        return self._request(
            "POST", "/pool", payload={"workers": workers},
        )

    def shutdown(self):
        return self._request("POST", "/shutdown")

    # -- conveniences --------------------------------------------------

    def wait(self, run_id, timeout=600.0, poll_s=0.2):
        """Poll until the campaign reaches a terminal state.

        Returns the final status payload; raises
        :class:`~repro.errors.ServeError` on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status["state"] in ("done", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServeError(
                    "campaign {} still {} after {:.0f}s ({} of {} "
                    "cells)".format(
                        run_id, status["state"], timeout,
                        status["completed"], status["total"],
                    )
                )
            time.sleep(poll_s)

    def events(self, run_id, timeout=600.0):
        """Generator over the campaign's ndjson progress stream."""
        try:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout,
            )
            try:
                conn.request(
                    "GET", "/campaigns/{}/events".format(run_id),
                )
                response = conn.getresponse()
                if response.status >= 400:
                    data = response.read()
                    try:
                        message = json.loads(data.decode("utf-8"))["error"]
                    except Exception:
                        message = "event stream failed with status " \
                            "{}".format(response.status)
                    raise ServeError(message, status=response.status)
                for raw in response:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
            finally:
                conn.close()
        except (OSError, socket.timeout, http.client.HTTPException) as exc:
            raise ServeError(
                "event stream from {}:{} broke ({})".format(
                    self.host, self.port, exc
                )
            )
