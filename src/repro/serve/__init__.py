"""Long-running campaign service over the experiment engine.

``repro serve`` turns the batch experiment machinery into a local
service: submit sweep campaigns over HTTP+JSON, watch their progress
stream live, and share one content-addressed result cache across every
campaign so overlapping submissions never recompute a cell.

The package deliberately *reuses* the batch layers instead of
paralleling them — workers run the engine's
:func:`~repro.experiments.parallel.run_cell`, liveness rides the
:mod:`~repro.experiments.watchdog` heartbeats, durability rides
:class:`~repro.experiments.journal.RunJournal`, and cancellation and
shutdown ride the preemption protocol — so a served campaign is
bit-identical, journal-compatible, and resume-compatible with its
``repro figure5`` equivalent.

* :mod:`repro.serve.http` — minimal stdlib asyncio HTTP/1.1;
* :mod:`repro.serve.pool` — hotplug watchdog-supervised worker pool;
* :mod:`repro.serve.campaigns` — specs, campaign state, recovery;
* :mod:`repro.serve.server` — the dispatcher + API endpoint;
* :mod:`repro.serve.client` — the blocking client the CLI uses.
"""

from repro.serve.campaigns import (
    Campaign,
    CampaignStore,
    cells_for,
    normalize_spec,
)
from repro.serve.client import ServeClient
from repro.serve.pool import WorkerPool
from repro.serve.server import DEFAULT_PORT, CampaignServer

__all__ = [
    "Campaign",
    "CampaignServer",
    "CampaignStore",
    "DEFAULT_PORT",
    "ServeClient",
    "WorkerPool",
    "cells_for",
    "normalize_spec",
]
