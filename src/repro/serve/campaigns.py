"""Campaign model for the service: specs, state, and recovery.

A *campaign* is one submitted sweep — the serve-side analogue of a
``repro figure5`` invocation: a set of applications crossed with a set
of configurations at one thread count and seed. This module owns the
parts that are independent of the HTTP layer and the worker pool:

* :func:`normalize_spec` — validate a client payload into the
  canonical spec dict that is hashed, journaled, and compared;
* :func:`cells_for` — expand a spec into its
  :class:`~repro.experiments.parallel.ExperimentCell` list in the same
  app-major order the batch CLI uses, so a served campaign's results
  are byte-identical to ``repro figure5 --json`` of the same spec;
* :class:`Campaign` — per-campaign state: results slots, progress
  counters, the event backlog + live subscriber queues behind
  ``GET /campaigns/{id}/events``;
* :class:`CampaignStore` — the id-keyed registry, including
  :meth:`~CampaignStore.recover`: on startup the store replays every
  ``kind: "serve"`` journal on disk, reconstructs finished and
  cancelled campaigns, and returns the in-flight ones so a killed
  server resumes them exactly like ``repro figure5 --resume`` resumes
  a batch run.
"""

from repro import __version__
from repro.errors import ConfigError, ServeError
from repro.experiments.configs import CONFIG_NAMES
from repro.experiments.export import matrix_to_records
from repro.experiments.journal import (
    RunJournal,
    list_run_ids,
    spec_hash,
)
from repro.experiments.parallel import CellFailure, ExperimentCell
from repro.experiments.runner import DEFAULT_SEED
from repro.workloads.splash2 import SPLASH2_NAMES

#: Campaign lifecycle states (reported verbatim by the status API).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"

#: Sentinel object closing an event stream (never serialized).
STREAM_END = object()


class CancelToken:
    """Satisfies the engine's preemption protocol (`requested` attr)
    for one campaign, so cancellation reuses the same cooperative
    machinery batch preemption does."""

    def __init__(self):
        self.requested = False
        self.reason = "cancelled"

    def cancel(self, reason="cancelled"):
        self.requested = True
        self.reason = reason


def normalize_spec(payload):
    """Validate a submission payload into the canonical spec dict.

    Accepts ``apps`` (default: all ten), ``configs`` (default: all
    five), ``threads``, ``seed``. Raises
    :class:`~repro.errors.ConfigError` with a message naming the bad
    field — the server maps that to a 400.
    """
    if not isinstance(payload, dict):
        raise ConfigError("campaign spec must be a JSON object")
    known = {"apps", "configs", "threads", "seed"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(
            "unknown spec field(s) {}; allowed: {}".format(
                ", ".join(unknown), ", ".join(sorted(known))
            )
        )
    apps = payload.get("apps") or list(SPLASH2_NAMES)
    if isinstance(apps, str):
        apps = [apps]
    bad = sorted(set(apps) - set(SPLASH2_NAMES))
    if bad:
        raise ConfigError(
            "unknown application(s) {}; choose from {}".format(
                ", ".join(bad), ", ".join(SPLASH2_NAMES)
            )
        )
    configs = payload.get("configs") or list(CONFIG_NAMES)
    if isinstance(configs, str):
        configs = [configs]
    bad = sorted(set(configs) - set(CONFIG_NAMES))
    if bad:
        raise ConfigError(
            "unknown configuration(s) {}; choose from {}".format(
                ", ".join(bad), ", ".join(CONFIG_NAMES)
            )
        )
    threads = payload.get("threads", 64)
    if not isinstance(threads, int) or isinstance(threads, bool) \
            or not 2 <= threads <= 1024:
        raise ConfigError(
            "threads must be an integer in [2, 1024], got {!r}".format(
                threads
            )
        )
    seed = payload.get("seed", DEFAULT_SEED)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ConfigError("seed must be an integer, got {!r}".format(seed))
    return {
        "kind": "serve",
        # Order is preserved (duplicates dropped): the batch CLI runs
        # apps in invocation order, and matching it keeps a served
        # export byte-identical to the equivalent figure5 --json.
        "apps": list(dict.fromkeys(apps)),
        "configs": list(dict.fromkeys(configs)),
        "threads": threads,
        "seed": seed,
        "version": __version__,
    }


def cells_for(spec):
    """Expand a canonical spec into its cell list, app-major.

    The order matches the batch path (``run_matrix`` iterates apps
    outer, configs inner), which is what makes a served campaign's
    export byte-identical to the equivalent ``repro figure5 --json``.
    """
    return [
        ExperimentCell.make(
            app, config, threads=spec["threads"], seed=spec["seed"],
        )
        for app in spec["apps"]
        for config in spec["configs"]
    ]


class Campaign:
    """All per-campaign state the server tracks.

    ``results[i]`` is ``None`` while cell ``i`` is pending, then the
    cell's :class:`~repro.experiments.runner.ExperimentResult` or a
    :class:`~repro.experiments.parallel.CellFailure`. Event streaming
    is backlog + fan-out: every event is appended to ``events`` (so a
    subscriber arriving late replays the full history) and pushed to
    each live subscriber queue.
    """

    def __init__(self, run_id, spec, journal=None):
        self.run_id = run_id
        self.spec = spec
        self.cells = cells_for(spec)
        self.keys = [cell.key() for cell in self.cells]
        self.results = [None] * len(self.cells)
        self.journal = journal
        self.state = QUEUED
        self.cancel_token = CancelToken()
        self.events = []       # serialized event dicts, append-only
        self.subscribers = []  # live asyncio.Queue fan-out targets
        self.cached = 0        # cells served straight from the cache
        self.deduped = 0       # cells attached to another campaign's job
        self.failed = 0
        self.resumed = False

    # -- progress ------------------------------------------------------

    @property
    def total(self):
        return len(self.cells)

    @property
    def completed(self):
        return sum(1 for r in self.results if r is not None)

    def done(self):
        return self.completed == self.total

    def pending_indices(self):
        return [i for i, r in enumerate(self.results) if r is None]

    # -- events --------------------------------------------------------

    def publish(self, payload):
        """Append to the backlog and wake every live subscriber."""
        self.events.append(payload)
        for queue in self.subscribers:
            queue.put_nowait(payload)

    def end_stream(self):
        for queue in self.subscribers:
            queue.put_nowait(STREAM_END)

    # -- reporting -----------------------------------------------------

    def status_payload(self):
        total = self.total
        completed = self.completed
        return {
            "run_id": self.run_id,
            "state": self.state,
            "spec": self.spec,
            "total": total,
            "completed": completed,
            "percent": round(100.0 * completed / total, 1) if total else
            100.0,
            "cached": self.cached,
            "deduped": self.deduped,
            "failed": self.failed,
            "resumed": self.resumed,
        }

    def matrix(self):
        """The batch-shaped ``{app: {config: result}}`` mapping.

        Only meaningful once every cell resolved; failures are left
        out (the caller checks ``failed`` first).
        """
        matrix = {}
        for cell, result in zip(self.cells, self.results):
            if isinstance(result, CellFailure) or result is None:
                continue
            matrix.setdefault(cell.app, {})[cell.config] = result
        return matrix

    def records(self):
        """Flattened result records, identical to the batch export.

        The happy path goes through
        :func:`~repro.experiments.export.matrix_to_records` — the same
        function behind ``repro figure5 --json`` — so the serialized
        records match byte for byte. Specs that the batch exporter
        cannot normalize (no baseline configuration) or campaigns with
        failures fall back to raw per-cell records.
        """
        if self.failed == 0 and "baseline" in self.spec["configs"]:
            return matrix_to_records(self.matrix())
        records = []
        for cell, result in zip(self.cells, self.results):
            if isinstance(result, CellFailure):
                records.append({
                    "app": cell.app, "config": cell.config,
                    "threads": cell.threads, "failed": True,
                    "failure": result.describe(),
                })
            elif result is not None:
                records.append({
                    "app": cell.app, "config": cell.config,
                    "threads": result.n_threads,
                    "execution_time_ns": result.execution_time_ns,
                    "energy_joules": result.energy_joules,
                    "barrier_imbalance": result.barrier_imbalance,
                })
        return records


class CampaignStore:
    """The run-id-keyed campaign registry, with durable recovery."""

    def __init__(self, journal_root=None):
        self.journal_root = journal_root
        self._campaigns = {}

    def __contains__(self, run_id):
        return run_id in self._campaigns

    def __len__(self):
        return len(self._campaigns)

    def get(self, run_id):
        try:
            return self._campaigns[run_id]
        except KeyError:
            raise ServeError(
                "no such campaign: {}".format(run_id), status=404
            )

    def all(self):
        return [self._campaigns[k] for k in sorted(self._campaigns)]

    def create(self, spec):
        """Register a new journaled campaign for a canonical spec.

        Run ids are content-derived (``c<spec-hash prefix>``) with a
        ``-2``, ``-3``… suffix when the same spec is submitted again
        while the original still exists — each submission is its own
        campaign even if every cell dedups against the first.
        """
        base = "c" + spec_hash(spec)[:10]
        run_id = base
        suffix = 1
        existing = set(list_run_ids(self.journal_root))
        while run_id in self._campaigns or run_id in existing:
            suffix += 1
            run_id = "{}-{}".format(base, suffix)
        journal = RunJournal.create(
            spec, run_id=run_id, root=self.journal_root,
        )
        campaign = Campaign(run_id, spec, journal=journal)
        self._campaigns[run_id] = campaign
        return campaign

    def recover(self, cache=None):
        """Rebuild campaigns from on-disk journals; return resumables.

        For every ``kind: "serve"`` journal under the root: a
        ``finished`` record makes it a :data:`DONE` campaign (results
        reloaded from the cache so status/results endpoints keep
        working across restarts, when the entries are still cached); a
        ``cancelled`` record makes it :data:`CANCELLED`; anything else
        was in flight when the server died — completed cells are
        restored from the cache and the campaign is returned for the
        server to re-enqueue.
        """
        resumable = []
        for run_id in list_run_ids(self.journal_root):
            if run_id in self._campaigns:
                continue
            try:
                journal = RunJournal.open(run_id, root=self.journal_root)
                spec = journal.spec().get("spec")
            except (OSError, ValueError, ConfigError):
                continue
            if not isinstance(spec, dict) or spec.get("kind") != "serve":
                continue
            state = journal.replay()
            campaign = Campaign(run_id, spec, journal=journal)
            self._fill_from_cache(campaign, cache)
            if state.finished:
                campaign.state = DONE
                self._campaigns[run_id] = campaign
            elif state.cancellations:
                campaign.state = CANCELLED
                campaign.cancel_token.cancel()
                self._campaigns[run_id] = campaign
            else:
                campaign.resumed = True
                self._campaigns[run_id] = campaign
                resumable.append(campaign)
        return resumable

    @staticmethod
    def _fill_from_cache(campaign, cache):
        if cache is None:
            return
        for index, key in enumerate(campaign.keys):
            value = cache.get(key)
            if value is not None:
                campaign.results[index] = value
                campaign.cached += 1
