"""The campaign server: asyncio loop, dispatcher, and HTTP API.

``repro serve`` runs one :class:`CampaignServer`: a single-threaded
asyncio process supervising a :class:`~repro.serve.pool.WorkerPool`
and serving the HTTP+JSON API. Everything mutable lives on the one
event loop — HTTP handlers and the supervision tick interleave but
never run concurrently — so the server needs no locks.

Dispatch is **job-based, not campaign-based**: the unit in the queue
is a :class:`_CellJob`, keyed by the cell's content-address (the same
key the result cache uses). Overlapping campaigns that share a cell
share its job — the cell computes once and every waiter settles from
the single result. Submission therefore dedups at three levels:

1. cache hit — the cell already has a durable result; settle now;
2. job hit — the cell is queued or running for another campaign;
   attach this campaign as a waiter;
3. miss — enqueue a fresh job.

Crash safety mirrors the batch engine exactly: every campaign is
journaled (dispatch/completion/failure per cell, fsynced), so a
SIGKILLed server replays its journals on restart, restores completed
cells from the result cache, and re-enqueues only the remainder.
Worker failures reuse the watchdog/requeue semantics: a crashed or
stalled worker costs one attempt on the cell it was running, and the
cell becomes a structured failure only after exhausting its retries.

API surface (all JSON; exit codes match the batch CLI):

====== ============================ =====================================
Method Path                         Meaning
====== ============================ =====================================
GET    /                            health + version + counts
POST   /campaigns                   submit a spec; 201 with status
GET    /campaigns                   status of every campaign
GET    /campaigns/{id}              one campaign's status
GET    /campaigns/{id}/results      final records (409 until done)
GET    /campaigns/{id}/events       ndjson progress stream (live tail)
DELETE /campaigns/{id}              graceful cancel
GET    /pool                        worker-pool snapshot
POST   /pool                        hotplug: ``{"workers": N}``
POST   /shutdown                    graceful stop (in-flight journaled)
====== ============================ =====================================
"""

import asyncio
import os
import sys
from dataclasses import asdict

from repro import __version__
from repro.errors import ConfigError, ServeError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ERR, OK, CellFailure, cell_id
from repro.experiments.preemption import EXIT_RESUMABLE, PreemptionGuard
from repro.serve.campaigns import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    STREAM_END,
    CampaignStore,
    normalize_spec,
)
from repro.serve.http import (
    HttpError,
    JsonResponse,
    NdjsonStream,
    Router,
    make_connection_handler,
)
from repro.serve.pool import WorkerPool
from repro.telemetry.events import (
    CampaignCancelled,
    CampaignFinished,
    CampaignSubmitted,
    CellResolved,
    ResumeStarted,
    WorkerJoined,
    WorkerLeft,
    WorkerStalled,
)
from repro.telemetry.metrics import MetricsRegistry

#: Default port; unregistered, chosen to stay clear of common services.
DEFAULT_PORT = 8734

#: Clean-exit status (mirrors the CLI constant without importing it).
EXIT_OK = 0

_POLL_S = 0.02


class _CellJob:
    """One unit of work in the dispatch queue.

    ``waiters`` is the list of ``(campaign, index)`` pairs to settle
    when the job resolves — one entry per campaign that needs this
    cell. ``attempts`` counts failed executions (crash/stall/error);
    the job fails permanently once it exceeds the server's retry
    budget.
    """

    __slots__ = ("key", "cell", "waiters", "attempts", "pid")

    def __init__(self, key, cell):
        self.key = key
        self.cell = cell
        self.waiters = []
        self.attempts = 0
        self.pid = None  # worker currently running it, if any


class CampaignServer:
    """The long-running campaign service.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (published on
        :attr:`port` once listening — tests use this).
    pool_size:
        Initial worker count (hotpluggable at runtime).
    cache:
        Result-cache directory (or None for the default). The cache
        is *required* — cross-campaign dedup and restart recovery are
        built on it — so there is deliberately no way to disable it.
    journal_root:
        Run-journal root (or None for the default).
    watchdog / retries:
        Worker-liveness policy and per-cell retry budget, with the
        batch engine's semantics.
    idle_timeout_s:
        Per-connection read deadline in seconds; a client that opens
        a socket and stalls gets 408 instead of pinning a connection
        (None disables).
    max_connections:
        Load-shedding cap on concurrent connections; beyond it new
        requests get an immediate 503 + ``Retry-After`` (None
        disables).
    task:
        Injectable per-cell function for tests.
    """

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, pool_size=2,
                 cache=None, journal_root=None, watchdog=True, retries=1,
                 idle_timeout_s=30.0, max_connections=128,
                 task=None, poll_s=_POLL_S):
        if retries < 0:
            raise ConfigError("retries must be >= 0")
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise ConfigError("idle_timeout_s must be positive or None")
        if max_connections is not None and max_connections < 1:
            raise ConfigError("max_connections must be >= 1 or None")
        self.idle_timeout_s = idle_timeout_s
        self.max_connections = max_connections
        self.host = host
        self.port = port
        self.cache = ResultCache.coerce(cache if cache is not None else True)
        self.store = CampaignStore(journal_root=journal_root)
        self.pool = WorkerPool(pool_size, task=task, watchdog=watchdog)
        self.retries = retries
        self.poll_s = poll_s
        self.metrics = MetricsRegistry()
        self.jobs = {}        # key -> _CellJob (unsettled)
        self.queue = []       # keys awaiting dispatch (FIFO via pop(0))
        self.executed = 0
        self._stopping = False
        self._stop_reason = "shutdown"

    # ------------------------------------------------------------------
    # event plumbing

    def _emit(self, event, campaigns):
        """Record an event in the metrics and stream it to campaigns."""
        event.record(self.metrics)
        payload = {"kind": event.kind}
        payload.update(asdict(event))
        for campaign in campaigns:
            campaign.publish(payload)

    def _live_campaigns(self):
        return [
            c for c in self.store.all() if c.state in (QUEUED, RUNNING)
        ]

    # ------------------------------------------------------------------
    # submission and dedup

    def submit(self, payload):
        """Validate, journal, and enqueue one campaign submission."""
        spec = normalize_spec(payload)
        campaign = self.store.create(spec)
        hits = self._enqueue_campaign(campaign)
        self._emit(
            CampaignSubmitted(
                ts=0, run_id=campaign.run_id, cells=campaign.total,
                cached=campaign.cached, deduped=campaign.deduped,
            ),
            [campaign],
        )
        self._publish_cache_hits(campaign, hits)
        self._check_done(campaign)
        return campaign

    def _enqueue_campaign(self, campaign, resumed=False):
        """Route each pending cell: cache hit, job attach, or new job.

        Returns the cache-hit ``(cell, index)`` pairs; the caller
        publishes their events *after* its campaign-level event so a
        stream always opens with submitted/resumed. With ``resumed``
        the campaign's completed cells were already restored (and
        journaled by the previous server life); only the rest is
        routed.
        """
        campaign.state = RUNNING
        hits = []
        for index in campaign.pending_indices():
            key = campaign.keys[index]
            cell = campaign.cells[index]
            cached = self.cache.get(key)
            if cached is not None:
                campaign.results[index] = cached
                campaign.cached += 1
                campaign.journal.record_completed(
                    cell_id(cell, index), index=index, key=key,
                    cached=True,
                )
                hits.append((cell, index))
                continue
            job = self.jobs.get(key)
            if job is not None:
                job.waiters.append((campaign, index))
                campaign.deduped += 1
                continue
            job = _CellJob(key, cell)
            job.waiters.append((campaign, index))
            self.jobs[key] = job
            self.queue.append(key)
        return hits

    def _publish_cache_hits(self, campaign, hits):
        for cell, index in hits:
            self._emit(
                CellResolved(
                    ts=0, run_id=campaign.run_id,
                    cell="{}/{}".format(cell.app, cell.config),
                    index=index, cached=True, failed=False,
                ),
                [campaign],
            )

    # ------------------------------------------------------------------
    # settlement

    def _settle(self, campaign, index, result, cached=False):
        """Finalize one cell of one campaign (result or failure)."""
        if campaign.results[index] is not None:
            return  # cancelled-then-settled race; first write wins
        campaign.results[index] = result
        cell = campaign.cells[index]
        failed = isinstance(result, CellFailure)
        if failed:
            campaign.failed += 1
            campaign.journal.record_failed_permanent(
                cell_id(cell, index), index=index, kind=result.kind,
                message=result.message, attempts=result.attempts,
            )
        else:
            campaign.journal.record_completed(
                cell_id(cell, index), index=index,
                key=campaign.keys[index], cached=cached,
            )
        self._emit(
            CellResolved(
                ts=0, run_id=campaign.run_id,
                cell="{}/{}".format(cell.app, cell.config),
                index=index, cached=cached, failed=failed,
            ),
            [campaign],
        )
        self._check_done(campaign)

    def _check_done(self, campaign):
        if campaign.state != RUNNING or not campaign.done():
            return
        campaign.state = DONE
        campaign.journal.record_finished(
            completed=campaign.completed - campaign.failed,
            failed=campaign.failed,
        )
        self._emit(
            CampaignFinished(
                ts=0, run_id=campaign.run_id,
                completed=campaign.completed - campaign.failed,
                failed=campaign.failed,
            ),
            [campaign],
        )
        campaign.end_stream()

    # ------------------------------------------------------------------
    # cancellation

    def cancel(self, run_id, reason="cancelled"):
        """Cancel a campaign; orphaned jobs are withdrawn."""
        campaign = self.store.get(run_id)
        if campaign.state in (DONE, CANCELLED):
            return campaign
        campaign.cancel_token.cancel(reason)
        campaign.state = CANCELLED
        campaign.journal.record_cancelled(
            reason=reason, completed=campaign.completed,
            total=campaign.total,
        )
        for key in list(self.jobs):
            job = self.jobs[key]
            job.waiters = [
                (c, i) for (c, i) in job.waiters if c is not campaign
            ]
            if not job.waiters and job.pid is None:
                # Nobody needs it and it is not running: withdraw it
                # (the queue entry is skipped lazily at dispatch).
                del self.jobs[key]
        self._emit(
            CampaignCancelled(
                ts=0, run_id=campaign.run_id,
                completed=campaign.completed, total=campaign.total,
            ),
            [campaign],
        )
        campaign.end_stream()
        return campaign

    # ------------------------------------------------------------------
    # the supervision tick

    def tick(self):
        """One supervision round: absorb pool events, then dispatch."""
        for event in self.pool.poll():
            kind = event[0]
            if kind == "result":
                _, pid, key, status, payload = event
                self._on_result(key, status, payload)
            elif kind == "crashed":
                _, pid, key = event
                self._emit(
                    WorkerLeft(ts=0, worker=pid, pool_size=len(self.pool),
                               reason="crashed"),
                    self._live_campaigns(),
                )
                if key is not None:
                    self._strike(key, "crashed", "worker died")
            elif kind == "stalled":
                _, pid, key, stale_s = event
                job = self.jobs.get(key)
                waiters = job.waiters if job is not None else []
                for campaign, index in waiters:
                    campaign.journal.record_worker_stalled(
                        worker=pid,
                        cells=[cell_id(campaign.cells[index], index)],
                        stale_s=stale_s,
                    )
                self._emit(
                    WorkerStalled(
                        ts=0, worker=pid,
                        cells=1 if key is not None else 0,
                        stale_s=round(stale_s, 3),
                    ),
                    [c for c, _ in waiters],
                )
                if key is not None:
                    self._strike(key, "stalled", "no heartbeat for "
                                 "{:.2f}s".format(stale_s))
            elif kind == "left":
                _, pid, reason = event
                self._emit(
                    WorkerLeft(ts=0, worker=pid, pool_size=len(self.pool),
                               reason=reason),
                    self._live_campaigns(),
                )
            elif kind == "joined":
                _, pid = event
                self._emit(
                    WorkerJoined(ts=0, worker=pid,
                                 pool_size=len(self.pool)),
                    self._live_campaigns(),
                )
        self._dispatch()

    def _on_result(self, key, status, payload):
        job = self.jobs.get(key)
        if job is None:
            # Every waiter cancelled while the cell ran; still bank the
            # result — a future campaign gets it as a cache hit.
            if status == OK:
                self.cache.put(key, payload)
            return
        job.pid = None
        if status == OK:
            self.cache.put(key, payload)
            self.executed += 1
            del self.jobs[key]
            for campaign, index in job.waiters:
                self._settle(campaign, index, payload)
        elif status == ERR:
            error_type, message = payload
            self._strike(
                key, "error", "{}: {}".format(error_type, message),
            )

    def _strike(self, key, kind, message):
        """One failed attempt at a job: requeue or fail permanently."""
        job = self.jobs.get(key)
        if job is None:
            return
        job.pid = None
        job.attempts += 1
        if job.attempts <= self.retries:
            for campaign, index in job.waiters:
                campaign.journal.record_failed(
                    cell_id(campaign.cells[index], index), index=index,
                    kind=kind, message=message, attempt=job.attempts,
                )
            self.queue.insert(0, key)  # retry ahead of fresh work
            return
        del self.jobs[key]
        failure = CellFailure(
            cell=job.cell, kind=kind, message=message,
            attempts=job.attempts,
        )
        for campaign, index in job.waiters:
            self._settle(campaign, index, failure)

    def _dispatch(self):
        if self._stopping:
            return
        idle = self.pool.idle_workers()
        while self.queue and idle:
            key = self.queue[0]
            job = self.jobs.get(key)
            if job is None or job.pid is not None:
                self.queue.pop(0)  # withdrawn or already running
                continue
            pid = idle[0]
            if not self.pool.dispatch(pid, key, job.cell):
                idle.pop(0)  # worker died/drained since listed
                continue
            self.queue.pop(0)
            idle.pop(0)
            job.pid = pid
            for campaign, index in job.waiters:
                campaign.journal.record_dispatched(
                    cell_id(campaign.cells[index], index), index=index,
                    attempt=job.attempts + 1, key=key,
                )

    # ------------------------------------------------------------------
    # recovery

    def recover(self):
        """Replay on-disk journals; re-enqueue in-flight campaigns."""
        for campaign in self.store.recover(cache=self.cache):
            campaign.journal.record_resumed(
                completed=campaign.completed,
                remaining=campaign.total - campaign.completed,
            )
            self._emit(
                ResumeStarted(
                    ts=0, run_id=campaign.run_id,
                    completed=campaign.completed,
                    remaining=campaign.total - campaign.completed,
                ),
                [campaign],
            )
            hits = self._enqueue_campaign(campaign, resumed=True)
            self._publish_cache_hits(campaign, hits)
            self._check_done(campaign)

    # ------------------------------------------------------------------
    # HTTP API

    def _router(self):
        router = Router()
        router.add("GET", "/", self._h_health)
        router.add("POST", "/campaigns", self._h_submit)
        router.add("GET", "/campaigns", self._h_list)
        router.add("GET", "/campaigns/{id}", self._h_status)
        router.add("GET", "/campaigns/{id}/results", self._h_results)
        router.add("GET", "/campaigns/{id}/events", self._h_events)
        router.add("DELETE", "/campaigns/{id}", self._h_cancel)
        router.add("GET", "/pool", self._h_pool)
        router.add("POST", "/pool", self._h_resize)
        router.add("POST", "/shutdown", self._h_shutdown)
        return router

    def _campaign_or_404(self, request):
        try:
            return self.store.get(request.params["id"])
        except ServeError as exc:
            raise HttpError(404, str(exc))

    async def _h_health(self, request):
        return JsonResponse({
            "ok": True,
            "version": __version__,
            "campaigns": len(self.store),
            "pool": self.pool.target,
            "queued_cells": len(self.jobs),
            "executed_cells": self.executed,
        })

    async def _h_submit(self, request):
        try:
            campaign = self.submit(request.json())
        except ConfigError as exc:
            raise HttpError(400, str(exc))
        return JsonResponse(campaign.status_payload(), status=201)

    async def _h_list(self, request):
        return JsonResponse(
            [c.status_payload() for c in self.store.all()]
        )

    async def _h_status(self, request):
        campaign = self._campaign_or_404(request)
        return JsonResponse(campaign.status_payload())

    async def _h_results(self, request):
        campaign = self._campaign_or_404(request)
        if campaign.state == CANCELLED:
            raise HttpError(409, "campaign {} was cancelled after {} of "
                            "{} cells".format(campaign.run_id,
                                              campaign.completed,
                                              campaign.total))
        if campaign.state != DONE:
            raise HttpError(409, "campaign {} is {} ({} of {} cells "
                            "done)".format(campaign.run_id, campaign.state,
                                           campaign.completed,
                                           campaign.total))
        return JsonResponse({
            "run_id": campaign.run_id,
            "failed": campaign.failed,
            "records": campaign.records(),
        })

    async def _h_events(self, request):
        campaign = self._campaign_or_404(request)

        async def stream():
            # Snapshot + subscribe with no await in between, so no
            # event can fall between the backlog and the live tail.
            backlog = list(campaign.events)
            live = campaign.state in (QUEUED, RUNNING)
            queue = asyncio.Queue()
            if live:
                campaign.subscribers.append(queue)
            try:
                for item in backlog:
                    yield item
                while live:
                    item = await queue.get()
                    if item is STREAM_END:
                        break
                    yield item
            finally:
                if live:
                    try:
                        campaign.subscribers.remove(queue)
                    except ValueError:
                        pass

        return NdjsonStream(stream())

    async def _h_cancel(self, request):
        campaign = self._campaign_or_404(request)
        return JsonResponse(
            self.cancel(campaign.run_id).status_payload()
        )

    async def _h_pool(self, request):
        return JsonResponse(self.pool.describe())

    async def _h_resize(self, request):
        body = request.json()
        workers = body.get("workers")
        if not isinstance(workers, int) or isinstance(workers, bool) \
                or workers < 1:
            raise HttpError(400, "workers must be a positive integer")
        try:
            self.pool.resize(workers)
        except ConfigError as exc:
            raise HttpError(400, str(exc))
        return JsonResponse(self.pool.describe())

    async def _h_shutdown(self, request):
        self.request_stop("shutdown requested")
        return JsonResponse({"ok": True, "stopping": True})

    # ------------------------------------------------------------------
    # lifecycle

    def request_stop(self, reason="shutdown"):
        self._stop_reason = reason
        self._stopping = True

    async def _supervise(self, guard):
        while not self._stopping:
            if guard is not None and guard.requested:
                self.request_stop(guard.reason)
                break
            self.tick()
            await asyncio.sleep(self.poll_s)

    async def _main(self, guard=None, banner=True):
        self.recover()
        self.pool.start()
        server = await asyncio.start_server(
            make_connection_handler(
                self._router(),
                idle_timeout_s=self.idle_timeout_s,
                max_connections=self.max_connections,
            ),
            host=self.host, port=self.port,
        )
        self.port = server.sockets[0].getsockname()[1]
        # Workers forked from here on (watchdog replacements, hotplug
        # growth) would inherit the listening socket; a SIGKILLed
        # server would then leave orphans holding the port, blocking
        # the restart that resumes its campaigns. Close it in every
        # fresh child — by descriptor, because asyncio hands out
        # TransportSocket wrappers without a close() method.
        listeners = list(server.sockets)

        def _close_inherited_listeners():
            for sock in listeners:
                try:
                    os.close(sock.fileno())
                except OSError:
                    pass

        self.pool.child_setup = _close_inherited_listeners
        if banner:
            print(
                "repro serve listening on http://{}:{} "
                "(pool={}, cache={})".format(
                    self.host, self.port, self.pool.target,
                    self.cache.cache_dir,
                ),
                flush=True,
            )
        try:
            await self._supervise(guard)
        finally:
            server.close()
            await server.wait_closed()
            interrupted = False
            for campaign in self._live_campaigns():
                interrupted = True
                campaign.journal.record_interrupted(
                    reason=self._stop_reason,
                    completed=campaign.completed,
                    total=campaign.total,
                )
                campaign.end_stream()
            self.pool.stop()
        return EXIT_RESUMABLE if interrupted else EXIT_OK

    def run(self, banner=True):
        """Serve until stopped; returns the process exit status.

        SIGTERM/SIGINT latch through a
        :class:`~repro.experiments.preemption.PreemptionGuard` — the
        same graceful-preemption machinery batch campaigns use — so a
        preempted server journals every in-flight campaign and exits
        :data:`~repro.experiments.preemption.EXIT_RESUMABLE`; its next
        start resumes them.
        """
        with PreemptionGuard() as guard:
            try:
                return asyncio.run(self._main(guard, banner=banner))
            except KeyboardInterrupt:
                # Second signal: the loop was torn down mid-flight;
                # journals are fsynced per record, so resume still works.
                print("killed; in-flight campaigns remain resumable",
                      file=sys.stderr)
                return EXIT_RESUMABLE
