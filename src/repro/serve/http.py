"""A minimal stdlib HTTP/1.1 server for the campaign service.

The service speaks plain HTTP+JSON on localhost so any client — the
bundled ``repro submit`` trio, ``curl``, a notebook — can drive it
without this package growing a dependency. The subset implemented here
is exactly what the API needs:

* request parsing (request line, headers, ``Content-Length`` bodies);
* a :class:`Router` matching ``METHOD /path/{param}`` patterns;
* JSON responses, and newline-delimited JSON (*ndjson*) streaming for
  the campaign event feed, where each progress event is flushed as its
  own line the moment it happens.

Every response closes its connection (``Connection: close``): the
clients are short-lived polls or one long-lived event stream, so
connection reuse buys nothing and keep-alive bookkeeping would cost
real code. Handlers run on the server's asyncio loop and must not
block; the campaign server keeps all mutable state on that single
loop, which is what makes the service need no locks at all.
"""

import asyncio
import json
import re
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

#: Hard cap on request head + body; campaign specs are tiny.
MAX_REQUEST_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: ``Retry-After`` value sent with load-shedding 503 replies.
RETRY_AFTER_S = 1


class HttpError(Exception):
    """Raise inside a handler to answer with a JSON error body."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request, as handed to a route handler."""

    method: str
    path: str
    query: dict
    headers: dict
    body: bytes
    params: dict = field(default_factory=dict)

    def json(self):
        """The body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, "request body is not valid JSON: "
                            "{}".format(exc))


@dataclass
class JsonResponse:
    """A complete JSON reply."""

    payload: object
    status: int = 200


class NdjsonStream:
    """A streamed reply: one JSON document per line, flushed per line.

    ``source`` is an async iterator of JSON-serializable objects; the
    connection stays open until it is exhausted (end-of-stream is
    signalled by closing the connection — the standard ndjson idiom).
    """

    def __init__(self, source, status=200):
        self.source = source
        self.status = status


def _head(status, content_type, extra=()):
    lines = [
        "HTTP/1.1 {} {}".format(status, _REASONS.get(status, "Status")),
        "Content-Type: {}".format(content_type),
        "Connection: close",
    ]
    lines.extend(extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def _json_bytes(payload):
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class Router:
    """Method + path-pattern dispatch with ``{param}`` captures.

    Patterns look like ``/campaigns/{id}/events``; a ``{name}``
    segment matches one path segment and lands in ``request.params``.
    """

    def __init__(self):
        self._routes = []  # (method, regex, handler)

    def add(self, method, pattern, handler):
        regex = re.compile(
            "^"
            + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    def dispatch(self, request):
        """The (handler, params) for a request.

        Raises :class:`HttpError` 404 for an unknown path and 405 for
        a known path with the wrong method.
        """
        path_known = False
        for method, regex, handler in self._routes:
            match = regex.match(request.path)
            if not match:
                continue
            path_known = True
            if method == request.method:
                return handler, {
                    k: unquote(v) for k, v in match.groupdict().items()
                }
        if path_known:
            raise HttpError(405, "method {} not allowed for {}".format(
                request.method, request.path
            ))
        raise HttpError(404, "no such resource: {}".format(request.path))


async def _read_request(reader):
    """Parse one request off the wire (or None on immediate EOF)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_REQUEST_BYTES:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    query = {
        name: values[-1]
        for name, values in parse_qs(parts.query).items()
    }
    return Request(
        method=method.upper(), path=parts.path or "/",
        query=query, headers=headers, body=body,
    )


async def _write_json(writer, status, payload, extra=()):
    writer.write(
        _head(status, "application/json", extra) + _json_bytes(payload)
    )
    await writer.drain()


async def _drain_peer(reader):
    """Read and discard until the peer closes (lingering close)."""
    while await reader.read(65536):
        pass


async def _write_stream(writer, stream):
    writer.write(_head(stream.status, "application/x-ndjson"))
    await writer.drain()
    async for item in stream.source:
        writer.write(_json_bytes(item))
        await writer.drain()


def make_connection_handler(router, idle_timeout_s=None,
                            max_connections=None):
    """The ``asyncio.start_server`` callback serving ``router``.

    One request per connection; handler exceptions become JSON error
    replies (500 unless the handler raised :class:`HttpError`). Client
    disconnects mid-stream are normal (a watcher hit Ctrl-C) and are
    swallowed.

    Hostile-peer hardening:

    * ``idle_timeout_s`` — deadline on reading the *request* (head and
      body together). A client that opens a socket and stalls — the
      slowloris move — gets a 408 and its connection back instead of
      pinning a server slot forever. The deadline covers only the
      read: a long-lived event stream is still free to run for hours,
      because by then the peer has proven it can speak HTTP.
    * ``max_connections`` — load-shedding cap on concurrent
      connections. Beyond it, new requests are answered immediately
      with 503 + ``Retry-After`` rather than queued into a pile-up;
      the self-healing client treats that as a backoff-and-retry
      signal.
    """
    open_connections = 0

    async def handle(reader, writer):
        nonlocal open_connections
        open_connections += 1
        try:
            try:
                if (
                    max_connections is not None
                    and open_connections > max_connections
                ):
                    raise HttpError(
                        503,
                        "server at its connection cap ({}); retry "
                        "shortly".format(max_connections),
                    )
                try:
                    if idle_timeout_s is not None:
                        request = await asyncio.wait_for(
                            _read_request(reader), timeout=idle_timeout_s,
                        )
                    else:
                        request = await _read_request(reader)
                except asyncio.TimeoutError:
                    raise HttpError(
                        408,
                        "no complete request within {:.3g}s".format(
                            idle_timeout_s
                        ),
                    )
                if request is None:
                    return
                handler, params = router.dispatch(request)
                request.params = params
                response = await handler(request)
            except HttpError as exc:
                extra = ()
                if exc.status == 503:
                    extra = ("Retry-After: {}".format(RETRY_AFTER_S),)
                await _write_json(
                    writer, exc.status, {"error": exc.message}, extra,
                )
                return
            except Exception as exc:  # handler bug: answer, don't die
                await _write_json(
                    writer, 500,
                    {"error": "{}: {}".format(type(exc).__name__, exc)},
                )
                return
            if isinstance(response, NdjsonStream):
                await _write_stream(writer, response)
            else:
                await _write_json(
                    writer, response.status, response.payload,
                )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            open_connections -= 1
            # Lingering close: when a reply was written *before* the
            # request was fully read (load-shed 503, slowloris 408), a
            # straight close() races the peer's in-flight bytes and
            # turns into an RST that destroys the buffered response.
            # Send FIN first, then briefly drain the peer so the close
            # is graceful. The slot is already freed above, so a peer
            # stalling here holds nothing that matters.
            try:
                if writer.can_write_eof():
                    writer.write_eof()
                await asyncio.wait_for(_drain_peer(reader), timeout=0.5)
            except (asyncio.TimeoutError, OSError, RuntimeError):
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    return handle
