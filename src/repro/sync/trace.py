"""Barrier instrumentation.

The trace is *meta*-level: it records what happened (arrivals, release
times, stalls, sleep outcomes) for the metrics layer and for the oracle
post-hoc accounting. The simulated algorithm never reads it.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

# SleepRecord was promoted into the telemetry event model; this alias
# keeps ``repro.sync.trace.SleepRecord`` importable (same class object).
from repro.telemetry.events import SleepRecord

__all__ = ["BarrierTrace", "InstanceRecord", "SleepRecord"]


@dataclass
class InstanceRecord:
    """One dynamic barrier instance."""

    pc: str
    sequence: int
    arrivals: Dict[int, int] = field(default_factory=dict)
    departures: Dict[int, int] = field(default_factory=dict)
    sleeps: Dict[int, SleepRecord] = field(default_factory=dict)
    release_ts: Optional[int] = None
    measured_bit: Optional[int] = None
    last_thread: Optional[int] = None

    def stall_ns(self, thread_id):
        """Arrival-to-release stall of one thread (None before release)."""
        if self.release_ts is None or thread_id not in self.arrivals:
            return None
        return max(0, self.release_ts - self.arrivals[thread_id])

    def stalls(self):
        """Stall per arrived thread, in ns."""
        return {
            thread: self.stall_ns(thread)
            for thread in self.arrivals
        }

    @property
    def imbalance_window_ns(self):
        """Spread between first and last arrival."""
        if not self.arrivals:
            return 0
        return max(self.arrivals.values()) - min(self.arrivals.values())


class BarrierTrace:
    """Accumulates instance records across all barriers of a domain."""

    def __init__(self):
        self.instances = []
        self._open = {}
        self._sequence = 0

    def open_instance(self, pc):
        """Record for the next dynamic instance of barrier ``pc``."""
        record = InstanceRecord(pc=pc, sequence=self._sequence)
        self._sequence += 1
        self._open[pc] = record
        self.instances.append(record)
        return record

    def current(self, pc):
        return self._open.get(pc)

    def close_instance(self, pc):
        self._open.pop(pc, None)

    def by_pc(self, pc):
        """All instances of one static barrier, in dynamic order."""
        return [record for record in self.instances if record.pc == pc]

    def total_stall_ns(self):
        """Sum of every thread's stall over every released instance."""
        total = 0
        for record in self.instances:
            if record.release_ts is None:
                continue
            for stall in record.stalls().values():
                total += stall
        return total

    def released_instances(self):
        return [r for r in self.instances if r.release_ts is not None]
