"""A yielding barrier for time-shared CPUs (paper Section 3.4.1).

Instead of spinning (or sleeping), an early-arriving thread releases
its CPU so a co-scheduled thread can run, and blocks on an OS wake-up
until the barrier is released. The hazard the paper points out is
built in: after the release, the thread must *re-acquire a CPU*, paying
a context switch and possibly queueing behind its sibling — so the
release-to-resume latency can land on the next barrier's critical path.

The wake-up here is an OS/scheduler event, not the coherence mechanism
(a blocked thread is not spinning on the flag line); energy while
yielded is attributed to whichever thread actually runs on the CPU.
"""

from repro.energy.accounting import Category
from repro.sync.barrier import BarrierBase


class YieldingBarrier(BarrierBase):
    """Barrier for over-threaded programs: yield instead of spin."""

    allow_overthreading = True

    def __init__(self, system, domain, n_threads, pc, trace=None):
        super().__init__(system, domain, n_threads, pc, trace=trace)
        self._wakeups = {}  # record id -> OS wake-up event
        self.stats_yields = 0

    def _wakeup_for(self, record):
        key = id(record)
        event = self._wakeups.get(key)
        if event is None:
            event = self.sim.event()
            self._wakeups[key] = event
        return event

    def wait(self, node, thread_id, token, dirty_lines=0):
        """Pass the barrier; the caller must hold ``token``.

        On early arrival the token is released before blocking and
        re-acquired after the OS wake-up.
        """
        sense = self._flip_sense(thread_id)
        is_last, record = yield from self._check_in(
            node, thread_id=thread_id
        )
        wakeup = self._wakeup_for(record)
        if is_last:
            bit = self.domain.measure_bit(thread_id)
            record.measured_bit = bit
            yield from node.cpu.mem_op_as(
                Category.SPIN,
                self.memsys.store(node.node_id, self.domain.bit_addr, bit),
            )
            yield from self._release(
                node, sense, record, thread_id=thread_id
            )
            self._wakeups.pop(id(record), None)
            wakeup.succeed()
            self.domain.record_observed_release(thread_id)
            self._depart(node, record, thread_id=thread_id)
            return record
        # Early: hand the CPU to a runnable sibling and block.
        self.stats_yields += 1
        token.release(thread_id)
        yield wakeup
        # Released: compete for the CPU again (the Section 3.4.1 risk).
        yield from token.acquire(thread_id)
        self.domain.record_observed_release(thread_id)
        self._depart(node, record, thread_id=thread_id)
        return record
