"""Synchronization constructs.

* :mod:`repro.sync.lock` — a queued test-and-set spinlock (the ``lock(c)``
  of the paper's Figure 2);
* :mod:`repro.sync.barrier` — the conventional sense-reversal barrier
  (Figure 2) and the shared machinery (check-in, flag spin, tracing);
* :mod:`repro.sync.thrifty` — the thrifty barrier (Section 3): BIT
  prediction, conditional multi-state sleep, hybrid wake-up, thresholds;
* :mod:`repro.sync.spin_then_sleep` — the conventional spin-then-halt
  wait policy the paper cites as bounded by Oracle-Halt;
* :mod:`repro.sync.oracle` — exact post-hoc accounting for the
  Oracle-Halt and Ideal configurations;
* :mod:`repro.sync.thrifty_lock` — the future-work extension: a
  thrifty (sleep-while-contended) lock;
* :mod:`repro.sync.trace` — per-instance instrumentation feeding the
  metrics and the oracle accounting.
"""

from repro.sync.barrier import BarrierBase, ConventionalBarrier
from repro.sync.lock import SpinLock
from repro.sync.oracle import oracle_rerun
from repro.sync.spin_then_sleep import SpinThenSleepBarrier
from repro.sync.thrifty import ThriftyBarrier
from repro.sync.thrifty_lock import ThriftyLock
from repro.sync.trace import BarrierTrace, InstanceRecord, SleepRecord
from repro.sync.yielding import YieldingBarrier

__all__ = [
    "BarrierBase",
    "BarrierTrace",
    "ConventionalBarrier",
    "InstanceRecord",
    "SleepRecord",
    "SpinLock",
    "SpinThenSleepBarrier",
    "ThriftyBarrier",
    "ThriftyLock",
    "YieldingBarrier",
    "oracle_rerun",
]
