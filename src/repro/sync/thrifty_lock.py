"""A thrifty lock: the paper's future-work extension (Section 7).

The paper closes by proposing to extend predicted-slack sleeping "to
other synchronization constructs, such as locks". This prototype applies
the same recipe to a queued lock:

* the lock keeps a last-value history of observed *hold times*;
* a contender estimates its wait as ``holds_ahead * predicted_hold``
  (its queue depth times the predicted critical-section length);
* if the estimate covers a sleep state's round trip, the CPU sleeps;
  the hand-off event is the external wake-up, a countdown timer the
  internal one — the same hybrid structure as the thrifty barrier;
* a residual wait after waking preserves strict FIFO hand-off order.
"""

from dataclasses import dataclass, field

from repro.config import ThriftyConfig
from repro.energy.accounting import Category
from repro.energy.states import select_sleep_state
from repro.errors import SimulationError
from repro.sim.events import AnyOf


@dataclass
class ThriftyLockStats:
    acquisitions: int = 0
    contended: int = 0
    sleeps: int = 0
    sleeps_by_state: dict = field(default_factory=dict)
    spin_waits: int = 0
    timer_wakes: int = 0
    handoff_wakes: int = 0


class ThriftyLock:
    """A queued test-and-set lock with predicted-slack sleeping."""

    def __init__(self, system, config=None, name="thrifty-lock"):
        self.system = system
        self.sim = system.sim
        self.memsys = system.memsys
        self.name = name
        self.config = config or ThriftyConfig()
        self.addr = system.alloc_shared()
        self._waiters = []
        self._holder = None
        self._acquired_at = None
        self._predicted_hold_ns = None
        self.stats = ThriftyLockStats()

    # -- prediction --------------------------------------------------------

    def _estimate_wait_ns(self, queue_depth):
        """Expected wait: critical sections ahead of us in line."""
        if self._predicted_hold_ns is None:
            return None
        return (queue_depth + 1) * self._predicted_hold_ns

    def _train_hold(self, hold_ns):
        self._predicted_hold_ns = hold_ns

    # -- the lock ----------------------------------------------------------

    def acquire(self, node):
        """Simulation subroutine; returns once the lock is held."""
        cpu = node.cpu
        while True:
            old = yield from cpu.mem_op_as(
                Category.SPIN,
                self.memsys.rmw(node.node_id, self.addr, lambda _v: 1),
            )
            if old == 0:
                self._holder = node.node_id
                self._acquired_at = self.sim.now
                self.stats.acquisitions += 1
                return
            self.stats.contended += 1
            ticket = self.sim.event()
            self._waiters.append(ticket)
            estimate = self._estimate_wait_ns(len(self._waiters) - 1)
            # Prototype restriction: no flush bookkeeping while queued,
            # so only snooping states are considered.
            snoozable = tuple(
                s for s in self.config.sleep_states if s.snoops
            )
            state = None
            if estimate is not None and snoozable:
                state = select_sleep_state(
                    snoozable,
                    estimate,
                    flush_ns=0,
                    conditional=self.config.conditional_sleep,
                )
            if state is None:
                self.stats.spin_waits += 1
                yield from cpu.spin_until(ticket)
            else:
                timer = self.sim.timeout(
                    max(0, estimate - state.transition_latency_ns)
                )
                wake = AnyOf(self.sim, [ticket, timer])
                outcome = yield from cpu.sleep(state, wake)
                del outcome
                self.stats.sleeps += 1
                self.stats.sleeps_by_state[state.name] = (
                    self.stats.sleeps_by_state.get(state.name, 0) + 1
                )
                if wake.value is ticket:
                    self.stats.handoff_wakes += 1
                else:
                    self.stats.timer_wakes += 1
                    timer.cancel()
                if not ticket.triggered:
                    # Early wake: residual wait for the hand-off.
                    yield from cpu.spin_until(ticket)
            # The hand-off gives us priority; retry the RMW.

    def release(self, node):
        """Record the hold time, free the word, hand off FIFO."""
        if self._holder != node.node_id:
            raise SimulationError(
                "{} released by {} but held by {}".format(
                    self.name, node.node_id, self._holder
                )
            )
        self._train_hold(self.sim.now - self._acquired_at)
        self._holder = None
        self._acquired_at = None
        yield from node.cpu.mem_op_as(
            Category.SPIN,
            self.memsys.store(node.node_id, self.addr, 0),
        )
        if self._waiters:
            self._waiters.pop(0).succeed()

    @property
    def held(self):
        return self._holder is not None
