"""Exact post-hoc accounting for the oracle configurations.

Oracle-Halt and Ideal (Section 5.1) have perfect BIT prediction: a
sleeping CPU transitions out so that it resumes exactly at the barrier
release, and Ideal additionally pays no flush for any state. Neither
configuration ever perturbs timing relative to Baseline — the paper
presents them as lower bounds with no performance penalty — so their
energy can be computed *exactly* by replaying the Baseline run's stall
intervals:

for each (thread, instance) stall ``S``, the deepest state whose
round-trip transition fits inside ``S`` sleeps for ``S - round_trip``
between two linear ramps; if no state fits, the stall stays a spin
(the "still noticeable Spin" of Section 5.2).
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from repro.energy.accounting import Category, EnergyAccount
from repro.energy.states import ramp_energy, select_sleep_state
from repro.errors import SimulationError


@dataclass
class OracleResult:
    """Accounts and behaviour counters of an oracle replay."""

    accounts: List[EnergyAccount]
    sleeps_by_state: Counter = field(default_factory=Counter)
    spin_stalls: int = 0
    slept_stalls: int = 0


def oracle_rerun(trace, cpu_accounts, power, states):
    """Replay a Baseline run under perfect prediction.

    Parameters
    ----------
    trace:
        The Baseline :class:`~repro.sync.trace.BarrierTrace`.
    cpu_accounts:
        Per-CPU Baseline :class:`~repro.energy.EnergyAccount` objects.
    power:
        The machine's :class:`~repro.machine.CpuPower`.
    states:
        Sleep states available to the oracle — ``(SLEEP1_HALT,)`` for
        Oracle-Halt, all three for Ideal. Flush costs are zero by
        construction (Halt snoops; Ideal waives flushing).

    Returns an :class:`OracleResult` whose accounts have identical total
    time to Baseline's, category by category re-assigned.
    """
    stalls_per_thread = {thread: [] for thread in range(len(cpu_accounts))}
    for record in trace.released_instances():
        for thread, stall in record.stalls().items():
            if thread not in stalls_per_thread:
                raise SimulationError(
                    "trace mentions thread {} outside the account "
                    "range".format(thread)
                )
            stalls_per_thread[thread].append(stall)

    result = OracleResult(accounts=[])
    for thread, baseline in enumerate(cpu_accounts):
        account = EnergyAccount()
        # Computation is untouched by the barrier policy.
        account.add(
            Category.COMPUTE,
            baseline.time_ns(Category.COMPUTE),
            energy_joules=baseline.energy_joules(Category.COMPUTE),
        )
        stalls = stalls_per_thread[thread]
        total_stall = sum(stalls)
        # Check-in operations and detection lag: the (small) part of
        # Baseline's Spin that is not arrival-to-release stall.
        overhead_spin = max(
            0, baseline.time_ns(Category.SPIN) - total_stall
        )
        if overhead_spin:
            account.add(
                Category.SPIN, overhead_spin, power_watts=power.spin_watts
            )
        for stall in stalls:
            state = select_sleep_state(states, stall, flush_ns=0)
            if state is None:
                result.spin_stalls += 1
                account.add(
                    Category.SPIN, stall, power_watts=power.spin_watts
                )
                continue
            result.slept_stalls += 1
            result.sleeps_by_state[state.name] += 1
            sleep_watts = power.sleep_watts(state)
            one_way = state.transition_latency_ns
            account.add(
                Category.TRANSITION,
                2 * one_way,
                energy_joules=(
                    ramp_energy(power.compute_watts, sleep_watts, one_way)
                    + ramp_energy(sleep_watts, power.compute_watts, one_way)
                ),
            )
            account.add(
                Category.SLEEP,
                stall - state.round_trip_ns,
                power_watts=sleep_watts,
            )
        result.accounts.append(account)
    return result
