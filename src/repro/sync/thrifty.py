"""The thrifty barrier (paper Section 3).

An early-arriving thread:

1. checks in (count++ under the lock, Figure 2 S1);
2. estimates its stall: predicted BIT (PC-indexed last-value) plus its
   local BRTS gives the estimated wake-up time; minus "now" gives the
   stall (Section 3.2.1);
3. asks the sleep library for the deepest sleep state whose round-trip
   transition — plus flush cost for non-snooping states — fits the
   estimated stall (Section 3.1); if none fits, or prediction is cold or
   disabled, it spins conventionally;
4. otherwise it programs the cache controller: reads the flag (which
   both checks for an already-released barrier and installs the shared
   copy whose invalidation is the external wake-up), arms the flag
   monitor and the countdown timer, and sleeps; the first wake source
   cancels the other (hybrid wake-up, Section 3.3.2);
5. after waking it spins residually on the flag (correctness against
   false/early wake-ups, Section 3.3.1), reads the published BIT,
   advances its BRTS, and applies the overprediction cut-off
   (Section 3.3.3).

The last thread to arrive measures the actual BIT on its local clock,
passes it through the underprediction filter (Section 3.4.2) before
training the predictor, publishes it in the shared BIT variable (with a
write fence before the flag flip — free in the simulator, noted for
fidelity), and releases the barrier.
"""

from dataclasses import dataclass, field

from repro.config import ThriftyConfig
from repro.energy.states import select_sleep_state
from repro.errors import ConfigError
from repro.predict.thresholds import is_overpredicted, should_update_predictor
from repro.sim.events import AnyOf
from repro.sync.barrier import BarrierBase
from repro.sync.trace import SleepRecord
from repro.telemetry.events import (
    LateWake,
    PredictorDisable,
    PredictorFiltered,
    PredictorHit,
    PredictorReenable,
    PredictorTrain,
    WakeUp,
)

#: Cycles spent running the prediction/selection code at check-in — the
#: "lightweight control algorithm" whose cost Kumar et al. found
#: negligible; charged as Spin time.
PREDICTION_OVERHEAD_NS = 40

#: Issue cost of the post-barrier read of the shared BIT variable; the
#: miss itself overlaps with the computation that follows.
BIT_READ_OVERHEAD_NS = 24


@dataclass
class ThriftyStats:
    """Per-barrier behaviour counters."""

    arrivals: int = 0
    last_arrivals: int = 0
    sleeps: int = 0
    sleeps_by_state: dict = field(default_factory=dict)
    spin_fallbacks: int = 0      # no state fit the predicted slack
    cold_spins: int = 0          # no prediction available
    disabled_spins: int = 0      # overprediction cut-off engaged
    aborted_sleeps: int = 0      # flag already flipped at monitor arming
    timer_wakes: int = 0
    invalidation_wakes: int = 0
    cutoff_disables: int = 0
    filtered_updates: int = 0
    spurious_wakes: int = 0      # woken by neither source (fault injection)
    fallback_sleeps: int = 0     # disabled thread used spin-then-sleep
    probation_reenables: int = 0  # disable lifted after safe episodes


class ThriftyBarrier(BarrierBase):
    """Drop-in replacement for :class:`ConventionalBarrier`."""

    def __init__(
        self, system, domain, n_threads, pc,
        config=None, trace=None,
    ):
        super().__init__(system, domain, n_threads, pc, trace=trace)
        self.config = config or ThriftyConfig()
        self.stats = ThriftyStats()
        # flush_ns -> ((cost, state), ...) deepest-savings first; see
        # _choose_state.
        self._selection_cache = {}

    # -- the sleep() "library call" of Section 3.1 --------------------------

    def _flush_estimate_ns(self, dirty_lines):
        machine = self.system.config
        return machine.flush_base_ns + dirty_lines * machine.flush_per_line_ns

    def _choose_state(self, est_stall_ns, dirty_lines):
        flush_ns = self._flush_estimate_ns(dirty_lines)
        if not self.config.conditional_sleep:
            return select_sleep_state(
                self.config.sleep_states, est_stall_ns,
                flush_ns=flush_ns, conditional=False,
            )
        # The state menu and flush cost are fixed per dirty footprint,
        # so the table scan of select_sleep_state collapses to a
        # precomputed (cost, state) list ordered by descending savings:
        # the first affordable entry is the answer. Ties keep the
        # table's scan order (sorted() is stable), matching the
        # strictly-greater comparison of the reference scan.
        table = self._selection_cache.get(flush_ns)
        if table is None:
            if not list(self.config.sleep_states):
                raise ConfigError("no sleep states supplied")
            table = tuple(sorted(
                (
                    (
                        state.round_trip_ns
                        + (0 if state.snoops else flush_ns),
                        state,
                    )
                    for state in self.config.sleep_states
                ),
                key=lambda pair: pair[1].power_savings,
                reverse=True,
            ))
            self._selection_cache[flush_ns] = table
        for cost, state in table:
            if cost <= est_stall_ns:
                return state
        return None

    def _sleep(self, node, sense, state, est_wake_ts, dirty_lines, record):
        """Program the controller and sleep; returns the wake timestamp
        (None when the sleep was aborted because the barrier had already
        been released)."""
        cpu = node.cpu
        controller = node.controller
        # The controller reads the flag in: this both checks the value
        # (abort if already flipped) and installs the shared copy whose
        # invalidation will wake us.
        started = self.sim._now
        value = yield from self.memsys.load(node.node_id, self.flag_addr)
        cpu.charge_spin(self.sim._now - started)
        if value == sense:
            self.stats.aborted_sleeps += 1
            return None
        wake_sources = []
        external = None
        monitor_key = None

        def on_invalidation(_line):
            if external is not None and not external.triggered:
                external.succeed()

        if self.config.use_external_wakeup:
            external = self.sim.event()
            monitor_key = controller.arm_flag_monitor(
                self.flag_addr, on_invalidation
            )
            # The controller reads the flag in at arming: abort if the
            # flip already landed, or if the line was invalidated in the
            # same instant our read completed (that INV's wake-up is
            # lost, so sleeping now would miss the release).
            if self._monitor_raced(node, sense):
                controller.disarm_flag_monitor(monitor_key, on_invalidation)
                self.stats.aborted_sleeps += 1
                return None
            wake_sources.append(external)
        timer = None
        timer_handle = None
        if self.config.use_internal_wakeup:
            # Anticipate the release: count down to the predicted wake
            # time minus the exit latency (Section 3.3.2).
            delay = max(
                0, est_wake_ts - self.sim._now - state.transition_latency_ns
            )
            timer = self.sim.event()
            timer_handle = controller.arm_wake_timer(delay, timer.succeed)
            wake_sources.append(timer)
        wake = AnyOf(self.sim, wake_sources)
        outcome = yield from cpu.sleep(
            state, wake, controller=controller, flush_lines=dirty_lines,
        )
        # First wake source cancels the other.
        woke_by = "timer"
        if external is not None and wake.value is external:
            woke_by = "invalidation"
            self.stats.invalidation_wakes += 1
            if timer_handle is not None:
                timer_handle.cancel()
        elif timer is not None and wake.value is timer:
            self.stats.timer_wakes += 1
            if monitor_key is not None:
                controller.disarm_flag_monitor(monitor_key, on_invalidation)
        else:
            # Woken by neither source: a spurious wake-up (fault
            # injection). Both sources are still armed — cancel both;
            # the residual spin re-checks the flag (Section 3.3.1).
            woke_by = "spurious"
            self.stats.spurious_wakes += 1
            if timer_handle is not None:
                timer_handle.cancel()
            if monitor_key is not None:
                controller.disarm_flag_monitor(monitor_key, on_invalidation)
        self.stats.sleeps += 1
        self.stats.sleeps_by_state[state.name] = (
            self.stats.sleeps_by_state.get(state.name, 0) + 1
        )
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(WakeUp(
                ts=self.sim._now, thread=node.node_id, pc=self.pc,
                source=woke_by, state=state.name,
            ))
        record.sleeps[node.node_id] = SleepRecord(
            state_name=state.name,
            resident_ns=outcome.resident_ns,
            flushed_lines=outcome.flushed_lines,
            woke_by=woke_by,
        )
        return self.sim._now

    # -- degraded mode: spin-then-sleep for a disabled (thread, PC) ----------

    def _fallback_state(self):
        """Shallowest snooping state (no prediction exists to amortize
        a flush), or None when the menu has no snooping state."""
        for state in self.config.sleep_states:
            if state.snoops:
                return state
        return None

    def _fallback_sleep(self, node, sense, record):
        """Wait out one episode without a prediction: spin for the
        configured threshold, then Halt relying purely on the external
        (invalidation) wake-up — the conventional spin-then-sleep
        policy of Section 5.1, instead of baseline spinning."""
        cpu = node.cpu
        controller = node.controller
        started = self.sim._now
        value = yield from self.memsys.load(node.node_id, self.flag_addr)
        cpu.charge_spin(self.sim._now - started)
        if value == sense:
            return
        fired = self.sim.event()

        def on_invalidation(_line):
            if not fired.triggered:
                fired.succeed()

        key = controller.arm_flag_monitor(self.flag_addr, on_invalidation)
        if self._monitor_raced(node, sense):
            controller.disarm_flag_monitor(key, on_invalidation)
            return
        deadline = self.sim.timeout(self.config.fallback_spin_threshold_ns)
        race = AnyOf(self.sim, [fired, deadline])
        started = self.sim._now
        yield race
        cpu.charge_spin(self.sim._now - started)
        if race.value is fired:
            return  # released (or spuriously woken) during the spin
        state = self._fallback_state()
        if state is None:
            # Nothing snooping to halt in; finish the wait spinning.
            started = self.sim._now
            yield fired
            cpu.charge_spin(self.sim._now - started)
            return
        outcome = yield from cpu.sleep(state, fired)
        woke_by = "invalidation"
        if fired.value == "fault:spurious":
            woke_by = "spurious"
            self.stats.spurious_wakes += 1
            controller.disarm_flag_monitor(key, on_invalidation)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(WakeUp(
                ts=self.sim._now, thread=node.node_id, pc=self.pc,
                source=woke_by, state=state.name,
            ))
        record.sleeps[node.node_id] = SleepRecord(
            state_name=state.name,
            resident_ns=outcome.resident_ns,
            flushed_lines=outcome.flushed_lines,
            woke_by=woke_by,
        )

    # -- the barrier itself --------------------------------------------------

    def wait(self, node, dirty_lines=0):
        thread_id = node.node_id
        self.stats.arrivals += 1
        sense = self._flip_sense(thread_id)
        is_last, record = yield from self._check_in(node)
        if is_last:
            yield from self._last_thread_path(node, sense, record)
            self._depart(node, record)
            return record
        # Predict the stall ahead (Section 3.2.1). The table walk and
        # arithmetic cost a few tens of cycles, charged as Spin.
        yield PREDICTION_OVERHEAD_NS
        node.cpu.charge_spin(PREDICTION_OVERHEAD_NS)
        est_wake_ts, est_stall = self.domain.estimate(self.pc, thread_id)
        telemetry = self.telemetry
        if telemetry.enabled and est_stall is not None:
            telemetry.emit(PredictorHit(
                ts=self.sim._now, thread=thread_id, pc=self.pc,
                predicted_ns=est_wake_ts - self.domain.brts(thread_id),
                est_stall_ns=est_stall,
            ))
        wake_ts = None
        was_disabled = False
        if est_stall is None:
            if self.domain.predictor is not None and (
                self.domain.predictor.is_disabled(self.pc, thread_id)
            ):
                was_disabled = True
                if self.config.fallback_spin_then_sleep:
                    # Graceful degradation: a cut-off (thread, PC) waits
                    # with the conventional spin-then-sleep policy
                    # instead of burning spin power until re-enabled.
                    self.stats.fallback_sleeps += 1
                    yield from self._fallback_sleep(node, sense, record)
                else:
                    self.stats.disabled_spins += 1
            else:
                self.stats.cold_spins += 1
        else:
            state = self._choose_state(est_stall, dirty_lines)
            if state is None:
                self.stats.spin_fallbacks += 1
            else:
                wake_ts = yield from self._sleep(
                    node, sense, state, est_wake_ts, dirty_lines, record
                )
        # Residual spin: covers early wake-ups, aborted sleeps, the pure
        # spin path, and false wake-ups alike (Section 3.3.1).
        yield from self._spin_on_flag(node, sense)
        # Read the published BIT and advance the local BRTS. The BIT
        # value is ordered before the flag flip (footnote 1), and its
        # read is not on the critical path — the out-of-order core
        # overlaps it with post-barrier computation — so only its issue
        # cost is charged.
        bit = self.memsys.peek(self.domain.bit_addr)
        yield BIT_READ_OVERHEAD_NS
        node.cpu.charge_spin(BIT_READ_OVERHEAD_NS)
        release_ts = self.domain.advance(thread_id, bit)
        if wake_ts is not None:
            penalty = wake_ts - release_ts
            sleep_record = record.sleeps.get(thread_id)
            if sleep_record is not None:
                sleep_record.penalty_ns = max(0, penalty)
            if telemetry.enabled:
                telemetry.emit(LateWake(
                    ts=self.sim._now, thread=thread_id, pc=self.pc,
                    penalty_ns=max(0, penalty),
                ))
            if is_overpredicted(
                wake_ts, release_ts, bit,
                threshold=self.config.overprediction_threshold,
            ):
                self.domain.predictor.disable(self.pc, thread_id)
                self.stats.cutoff_disables += 1
                if telemetry.enabled:
                    telemetry.emit(PredictorDisable(
                        ts=self.sim._now, thread=thread_id, pc=self.pc,
                    ))
        if was_disabled and self.domain.predictor.note_safe_episode(
            self.pc, thread_id, self.config.probation_episodes
        ):
            self.stats.probation_reenables += 1
            if telemetry.enabled:
                telemetry.emit(PredictorReenable(
                    ts=self.sim._now, thread=thread_id, pc=self.pc,
                ))
        self._depart(node, record)
        return record

    def _last_thread_path(self, node, sense, record):
        thread_id = node.node_id
        self.stats.last_arrivals += 1
        bit = self.domain.measure_bit(thread_id)
        record.measured_bit = bit
        predictor = self.domain.predictor
        telemetry = self.telemetry
        if predictor is not None:
            previous = predictor.peek(self.pc)
            if should_update_predictor(
                previous, bit,
                factor=self.config.underprediction_factor,
            ):
                predictor.update(self.pc, bit)
                if telemetry.enabled:
                    telemetry.emit(PredictorTrain(
                        ts=self.sim._now, thread=thread_id, pc=self.pc,
                        bit_ns=bit, predicted_ns=previous,
                    ))
            else:
                predictor.note_filtered_update()
                self.stats.filtered_updates += 1
                if telemetry.enabled:
                    telemetry.emit(PredictorFiltered(
                        ts=self.sim._now, thread=thread_id, pc=self.pc,
                        bit_ns=bit,
                    ))
        # Publish the BIT; a write fence orders it before the flag flip
        # under release consistency (footnote 1 of the paper). The
        # simulator's in-order per-thread execution provides the fence.
        started = self.sim._now
        yield from self.memsys.store(
            node.node_id, self.domain.bit_addr, bit
        )
        node.cpu.charge_spin(self.sim._now - started)
        yield from self._release(node, sense, record)
        self.domain.advance(thread_id, bit)
