"""Intentionally broken barrier variants — the explorer's test teeth.

Each mutant plants one classic synchronization bug in an otherwise
correct barrier. They exist so ``repro check`` can prove its detector
works: the CI smoke job (and ``tests/test_check.py``) require every
mutant here to be caught within a small exploration budget, while the
correct barriers stay clean under the same budget.

===================== ==================================================
mutant                the bug (and the oracle that catches it)
===================== ==================================================
``racy-check-in``     splits the check-in's atomic fetch-and-increment
                      into a plain load + store — the textbook lost
                      update. Two overlapping arrivals both read count
                      ``c`` and both write ``c + 1``; the count never
                      reaches ``n``, the release never fires, and every
                      thread wedges on the flag. Caught by
                      **no-lost-wakeup** (threads still blocked when
                      the event queue drains) and **barrier-liveness**
                      (check-ins with no release).
``off-by-one-release`` releases at ``n - 1`` arrivals: the classic
                      fencepost. The release fires before the last
                      thread arrives, and the leaked increment poisons
                      every following episode. Caught by
                      **release-safety**.
``wake-before-flip``  flips the flag (waking every waiter) before the
                      release is committed, so threads cross the
                      barrier ahead of the published release. Caught by
                      **barrier-safety**.
===================== ==================================================

Every mutant is deterministic given (cell, schedule): catching one is a
reproducible counterexample, not a flake. Each spec carries the cell
(app, threads, seed) its bug is known to surface in — small cells, so
the CI smoke budget stays tight.
"""

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.experiments.configs import thrifty_config_for
from repro.sync.barrier import BarrierBase, ConventionalBarrier
from repro.sync.thrifty import ThriftyBarrier
from repro.telemetry.events import BarrierCheckIn, BarrierRelease


class RacyCheckInBarrier(ConventionalBarrier):
    """BUG: non-atomic check-in (load + store instead of RMW).

    The correct check-in is a single atomic fetch-and-increment at the
    directory. Splitting it opens the lost-update window: any two
    arrivals whose load/store transactions overlap each read the same
    count and each write the same incremented value, silently dropping
    one arrival. The count never reaches the release target, so the
    whole machine wedges spinning on a flag nobody will ever flip.
    """

    def _check_in(self, node, thread_id=None):
        if thread_id is None:
            thread_id = node.node_id
        record = self.trace.current(self.pc)
        if record is None:
            record = self.trace.open_instance(self.pc)
        record.arrivals.setdefault(thread_id, self.sim._now)
        cpu = node.cpu
        started = self.sim._now
        # The bug: two separate transactions where one atomic RMW
        # belongs. Another arrival can slip between them.
        count = yield from self.memsys.load(node.node_id, self.count_addr)
        yield from self.memsys.store(node.node_id, self.count_addr, count + 1)
        cpu.charge_spin(self.sim._now - started)
        is_last = (count + 1) == self._arrival_target()
        if is_last:
            started = self.sim._now
            yield from self.memsys.store(node.node_id, self.count_addr, 0)
            cpu.charge_spin(self.sim._now - started)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(BarrierCheckIn(
                ts=record.arrivals[thread_id], thread=thread_id,
                pc=self.pc, sequence=record.sequence, is_last=is_last,
            ))
        return is_last, record


class OffByOneReleaseBarrier(ConventionalBarrier):
    """BUG: off-by-one arrival count — releases at ``n - 1`` arrivals.

    The ``n - 1``-th arriver believes it is last, resets the count, and
    flips the flag while the true last thread is still computing. The
    late thread's increment is never consumed, so the fencepost
    compounds across episodes.
    """

    def _arrival_target(self):
        return self.n_threads - 1


class WakeBeforeFlipBarrier(ConventionalBarrier):
    """BUG: wakes the waiters before the release is committed.

    The flag store (whose invalidations are the wake-up signal) is
    issued first; the release itself — the instance's published
    release timestamp — commits only after a delay. Woken threads
    cross the barrier before the release exists: a barrier-safety
    violation on every episode with a waiter.
    """

    #: Simulated gap between the early wake signal and the release
    #: commit — wider than a waiter's wake round-trip (INV delivery
    #: plus the re-read through the directory, ~1 µs), so the woken
    #: threads' departures land before the commit.
    RELEASE_COMMIT_DELAY_NS = 5000

    def _release(self, node, sense, record, thread_id=None):
        record.last_thread = (
            node.node_id if thread_id is None else thread_id
        )
        self.domain.instances_released += 1
        started = self.sim._now
        yield from self.memsys.store(node.node_id, self.flag_addr, sense)
        node.cpu.charge_spin(self.sim._now - started)
        self.trace.close_instance(self.pc)
        # Waiters are already waking and departing; only now does the
        # release commit.
        yield self.RELEASE_COMMIT_DELAY_NS
        node.cpu.charge_spin(self.RELEASE_COMMIT_DELAY_NS)
        record.release_ts = self.sim._now
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(BarrierRelease(
                ts=record.release_ts, thread=record.last_thread,
                pc=self.pc, sequence=record.sequence,
                bit_ns=record.measured_bit,
            ))


@dataclass(frozen=True)
class MutantSpec:
    """One registered mutant: the class, the configuration machinery
    its barrier rides on, the cell its bug is known to surface in, and
    the oracle(s) expected to fire."""

    name: str
    barrier_class: type
    description: str
    #: Live configuration whose machinery the mutant rides on.
    base_config: str = "baseline"
    #: The (app, threads, seed) cell ``repro check --mutant`` explores
    #: by default — chosen small so the CI budget stays tight.
    app: str = "fmm"
    threads: int = 8
    seed: int = 1
    #: Invariant/oracle names expected among the violations.
    expected: tuple = ()


MUTANTS = {
    "racy-check-in": MutantSpec(
        name="racy-check-in",
        barrier_class=RacyCheckInBarrier,
        description=(
            "non-atomic check-in (load + store) loses overlapping "
            "arrivals; the release never fires"
        ),
        expected=("no-lost-wakeup", "barrier-liveness"),
    ),
    "off-by-one-release": MutantSpec(
        name="off-by-one-release",
        barrier_class=OffByOneReleaseBarrier,
        description="releases the barrier at n - 1 arrivals",
        expected=("release-safety",),
    ),
    "wake-before-flip": MutantSpec(
        name="wake-before-flip",
        barrier_class=WakeBeforeFlipBarrier,
        description="wakes waiters before the release commits",
        expected=("barrier-safety",),
    ),
}

MUTANT_NAMES = tuple(sorted(MUTANTS))


def mutant_spec(name):
    spec = MUTANTS.get(name)
    if spec is None:
        raise ConfigError(
            "unknown mutant {!r}; choose from {}".format(
                name, ", ".join(MUTANT_NAMES)
            )
        )
    return spec


def mutant_barrier_factory(name, **overrides):
    """Barrier factory for one mutant (WorkloadRunner signature)."""
    spec = mutant_spec(name)
    cls = spec.barrier_class
    if issubclass(cls, ThriftyBarrier):
        config = thrifty_config_for(spec.base_config, **overrides)

        def factory(system, domain, n_threads, pc, trace):
            return cls(
                system, domain, n_threads, pc, trace=trace, config=config
            )
        return factory

    def factory(system, domain, n_threads, pc, trace):
        return cls(system, domain, n_threads, pc, trace=trace)
    return factory


assert all(
    issubclass(spec.barrier_class, BarrierBase)
    for spec in MUTANTS.values()
)
