"""Spin-then-sleep barrier: the conventional low-power wait policy.

Section 5.1 mentions "executing Halt after spinning unsuccessfully for a
while" as the traditional alternative, bounded from below by
Oracle-Halt. This barrier spins for a fixed threshold, then executes
Halt and relies purely on the external (invalidation) wake-up — there is
no prediction, so there is no internal timer.
"""

from repro.energy.accounting import Category
from repro.errors import ConfigError
from repro.sim.events import AnyOf
from repro.sync.barrier import BarrierBase
from repro.sync.trace import SleepRecord


class SpinThenSleepBarrier(BarrierBase):
    """Spin for ``spin_threshold_ns``, then Halt until invalidated."""

    def __init__(
        self, system, domain, n_threads, pc,
        sleep_state, spin_threshold_ns=50_000, trace=None,
    ):
        super().__init__(system, domain, n_threads, pc, trace=trace)
        if spin_threshold_ns < 0:
            raise ConfigError("spin threshold must be non-negative")
        if not sleep_state.snoops:
            raise ConfigError(
                "spin-then-sleep needs a snooping state (no prediction "
                "exists to amortize a flush)"
            )
        self.sleep_state = sleep_state
        self.spin_threshold_ns = spin_threshold_ns
        self.stats_sleeps = 0

    def wait(self, node, dirty_lines=0):
        thread_id = node.node_id
        sense = self._flip_sense(thread_id)
        is_last, record = yield from self._check_in(node)
        if is_last:
            bit = self.domain.measure_bit(thread_id)
            record.measured_bit = bit
            yield from node.cpu.mem_op_as(
                Category.SPIN,
                self.memsys.store(node.node_id, self.domain.bit_addr, bit),
            )
            yield from self._release(node, sense, record)
            self.domain.record_observed_release(thread_id)
            self._depart(node, record)
            return record
        yield from self._bounded_spin_then_halt(node, sense, record)
        yield from self._spin_on_flag(node, sense)
        self.domain.record_observed_release(thread_id)
        self._depart(node, record)
        return record

    def _bounded_spin_then_halt(self, node, sense, record):
        cpu = node.cpu
        controller = node.controller
        value = yield from cpu.mem_op_as(
            Category.SPIN,
            self.memsys.load(node.node_id, self.flag_addr),
        )
        if value == sense:
            return
        fired = self.sim.event()

        def on_invalidation(_line):
            if not fired.triggered:
                fired.succeed()

        key = controller.arm_flag_monitor(self.flag_addr, on_invalidation)
        if self._monitor_raced(node, sense):
            controller.disarm_flag_monitor(key, on_invalidation)
            return
        deadline = self.sim.timeout(self.spin_threshold_ns)
        winner_race = AnyOf(self.sim, [fired, deadline])
        yield from cpu.spin_until(winner_race)
        if winner_race.value is fired:
            return  # released during the bounded spin
        # Threshold expired: Halt until the invalidation arrives.
        self.stats_sleeps += 1
        outcome = yield from cpu.sleep(self.sleep_state, fired)
        record.sleeps[node.node_id] = SleepRecord(
            state_name=self.sleep_state.name,
            resident_ns=outcome.resident_ns,
            flushed_lines=0,
            woke_by="invalidation",
        )
