"""The conventional sense-reversal barrier (paper Figure 2).

Also home to :class:`BarrierBase`, the machinery every barrier variant
shares: the check-in critical section, the coherence-driven flag spin,
trace instrumentation, and the BRTS bookkeeping hooks.
"""

from repro.errors import SimulationError
from repro.sync.trace import BarrierTrace
from repro.telemetry.events import (
    BarrierCheckIn,
    BarrierDepart,
    BarrierRelease,
)


class BarrierBase:
    """Shared structure of all barrier variants.

    Parameters
    ----------
    system:
        The :class:`~repro.machine.System` hosting the threads.
    domain:
        The application's :class:`~repro.predict.TimingDomain` (BRTS and
        shared-BIT bookkeeping). Required; the Baseline configuration
        simply leaves its predictor unused.
    n_threads:
        Number of participating threads.
    pc:
        Static identity of this barrier — the "program counter" used to
        index the predictor in SPMD codes (Section 3.2).
    trace:
        Optional shared :class:`~repro.sync.trace.BarrierTrace`.
    """

    #: Set by over-threaded variants (more threads than CPUs,
    #: Section 3.4.1); the dedicated-mode variants keep one per node.
    allow_overthreading = False

    def __init__(self, system, domain, n_threads, pc, trace=None):
        if n_threads < 1 or (
            n_threads > system.n_nodes and not self.allow_overthreading
        ):
            raise SimulationError(
                "n_threads={} invalid for {} nodes".format(
                    n_threads, system.n_nodes
                )
            )
        self.system = system
        self.sim = system.sim
        self.memsys = system.memsys
        self.domain = domain
        self.n_threads = n_threads
        self.pc = pc
        self.trace = trace if trace is not None else BarrierTrace()
        self.telemetry = system.telemetry
        self.count_addr = system.alloc_shared()
        self.flag_addr = system.alloc_shared()
        self._local_sense = [0] * max(system.n_nodes, n_threads)

    # -- pieces used by every variant ---------------------------------------

    def _flip_sense(self, thread_id):
        sense = 1 - self._local_sense[thread_id]
        self._local_sense[thread_id] = sense
        return sense

    def _arrival_target(self):
        """Arrival count that releases the barrier.

        A seam for the intentionally broken variants in
        :mod:`repro.sync.mutants`; correct barriers release on the
        full participant count.
        """
        return self.n_threads

    def _check_in(self, node, thread_id=None):
        """Check in: ``count++`` (S1 in Figure 2).

        Figure 2 guards the increment with ``lock(c)``; barrier
        libraries implement the same critical section as a single atomic
        fetch-and-increment, which is what the memory system's RMW
        transaction provides (the directory serializes contenders on the
        count line exactly as the lock would, at one transaction instead
        of three). Returns ``(is_last, record)``; the instance record is
        opened by the first arriver. ``thread_id`` defaults to the
        node id (dedicated mode, one thread per CPU).
        """
        if thread_id is None:
            thread_id = node.node_id
        record = self.trace.current(self.pc)
        if record is None:
            record = self.trace.open_instance(self.pc)
        record.arrivals.setdefault(thread_id, self.sim._now)
        cpu = node.cpu
        started = self.sim._now
        count = yield from self.memsys.rmw(
            node.node_id, self.count_addr, lambda v: v + 1
        )
        cpu.charge_spin(self.sim._now - started)
        is_last = (count + 1) == self._arrival_target()
        if is_last:
            started = self.sim._now
            yield from self.memsys.store(node.node_id, self.count_addr, 0)
            cpu.charge_spin(self.sim._now - started)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(BarrierCheckIn(
                ts=record.arrivals[thread_id], thread=thread_id,
                pc=self.pc, sequence=record.sequence, is_last=is_last,
            ))
        return is_last, record

    def _release(self, node, sense, record, thread_id=None):
        """Last thread: flip the flag, waking spinners/monitors.

        The flag write's invalidations are the external wake-up signal
        of Section 3.3.1.
        """
        record.release_ts = self.sim._now
        record.last_thread = node.node_id if thread_id is None else thread_id
        self.domain.instances_released += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(BarrierRelease(
                ts=record.release_ts, thread=record.last_thread,
                pc=self.pc, sequence=record.sequence,
                bit_ns=record.measured_bit,
            ))
        started = self.sim._now
        yield from self.memsys.store(node.node_id, self.flag_addr, sense)
        node.cpu.charge_spin(self.sim._now - started)
        self.trace.close_instance(self.pc)

    def _spin_on_flag(self, node, sense):
        """Spin-wait until the flag reads ``sense`` (S2 in Figure 2).

        The first read caches a shared copy; the thread then blocks on
        the controller's invalidation of that line and re-reads a fresh
        copy — exactly the coherence behaviour the paper describes. The
        loop also absorbs false wake-ups (re-check, re-arm). Returns the
        time spent, all charged as Spin.
        """
        cpu = node.cpu
        controller = node.controller
        started = self.sim._now
        while True:
            load_started = self.sim._now
            value = yield from self.memsys.load(node.node_id, self.flag_addr)
            cpu.charge_spin(self.sim._now - load_started)
            if value == sense:
                break
            fired = self.sim.event()

            def on_invalidation(_line, fired=fired):
                if not fired.triggered:
                    fired.succeed()

            key = controller.arm_flag_monitor(self.flag_addr, on_invalidation)
            # The controller "reads the flag in" when armed: if the flip
            # already landed or the line was invalidated in the same
            # instant our read completed (that INV's wake-up is lost),
            # re-read instead of waiting. The re-read serializes behind
            # the in-flight flag write at the directory and returns the
            # fresh value.
            if self._monitor_raced(node, sense):
                controller.disarm_flag_monitor(key, on_invalidation)
                continue
            wait_started = self.sim._now
            yield fired
            cpu.charge_spin(self.sim._now - wait_started)
        return self.sim._now - started

    def _monitor_raced(self, node, sense):
        """True when an armed monitor cannot be trusted: the flag has
        already flipped, or the flag line is gone from this node's
        caches (the invalidation that took it fired before the monitor
        was armed, so its wake-up is lost). In fast (non-detailed)
        memory mode there are no cached lines and notifications are
        synthesized from the functional store, so only the value check
        applies."""
        if self.memsys.peek(self.flag_addr) == sense:
            return True
        if not self.memsys.config.detailed_memory:
            return False
        line = self.memsys.line_of(self.flag_addr)
        return self.memsys.hierarchies[node.node_id].state(line) is None

    def _depart(self, node, record, thread_id=None):
        thread_id = node.node_id if thread_id is None else thread_id
        record.departures[thread_id] = self.sim._now
        telemetry = self.telemetry
        if telemetry.enabled:
            arrived = record.arrivals.get(thread_id, self.sim._now)
            telemetry.emit(BarrierDepart(
                ts=self.sim._now, thread=thread_id, pc=self.pc,
                sequence=record.sequence, arrived_ts=arrived,
                stall_ns=record.stall_ns(thread_id) or 0,
            ))

    def wait(self, node, dirty_lines=0):
        """Pass the barrier; must be overridden by each variant."""
        raise NotImplementedError


class ConventionalBarrier(BarrierBase):
    """The sense-reversal spin barrier of Figure 2 (the Baseline).

    Early threads spin at ~85% of compute power until the last arriver
    flips the flag. Spinning threads record their local release
    timestamps directly (the warm-up rule of Section 3.2.1), so a
    conventional barrier keeps the timing domain consistent and can
    co-exist with thrifty barriers in the same program.
    """

    def wait(self, node, dirty_lines=0):
        thread_id = node.node_id
        sense = self._flip_sense(thread_id)
        is_last, record = yield from self._check_in(node)
        if is_last:
            bit = self.domain.measure_bit(thread_id)
            record.measured_bit = bit
            # Publish the BIT for the benefit of any thrifty barrier
            # sharing the domain, then release.
            started = self.sim._now
            yield from self.memsys.store(
                node.node_id, self.domain.bit_addr, bit
            )
            node.cpu.charge_spin(self.sim._now - started)
            yield from self._release(node, sense, record)
            self.domain.record_observed_release(thread_id)
        else:
            yield from self._spin_on_flag(node, sense)
            self.domain.record_observed_release(thread_id)
        self._depart(node, record)
        return record
