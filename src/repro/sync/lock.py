"""A queued test-and-set spinlock over the coherence protocol.

This is the ``lock(c)``/``unlock(c)`` pair protecting the barrier count
in Figure 2. Acquisition performs a real atomic read-modify-write on the
lock line (exclusive ownership migrates between contenders through the
directory); a loser parks on a wait queue and retries on hand-off, which
models queue-based backoff rather than wasting simulated events on
per-iteration spinning.
"""

from repro.energy.accounting import Category
from repro.errors import SimulationError


class SpinLock:
    """One lock, backed by one cache line of shared memory."""

    def __init__(self, system, name="lock"):
        self.system = system
        self.sim = system.sim
        self.memsys = system.memsys
        self.name = name
        self.addr = system.alloc_shared()
        self._waiters = []
        self._holder = None
        self.stats_acquisitions = 0
        self.stats_contended = 0

    def acquire(self, node, category=Category.SPIN):
        """Acquire from ``node``; simulation subroutine (generator)."""
        cpu = node.cpu
        while True:
            old = yield from cpu.mem_op_as(
                category,
                self.memsys.rmw(node.node_id, self.addr, lambda _v: 1),
            )
            if old == 0:
                self._holder = node.node_id
                self.stats_acquisitions += 1
                return
            self.stats_contended += 1
            ticket = self.sim.event()
            self._waiters.append(ticket)
            yield from cpu.spin_until(ticket)

    def release(self, node, category=Category.SPIN):
        """Release from ``node``; hands off to the oldest waiter."""
        if self._holder != node.node_id:
            raise SimulationError(
                "{} released by {} but held by {}".format(
                    self.name, node.node_id, self._holder
                )
            )
        self._holder = None
        yield from node.cpu.mem_op_as(
            category,
            self.memsys.store(node.node_id, self.addr, 0),
        )
        if self._waiters:
            self._waiters.pop(0).succeed()

    @property
    def held(self):
        return self._holder is not None
