"""Exception hierarchy for the thrifty-barrier reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type when embedding the simulator.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class SchedulingError(SimulationError):
    """An event was scheduled, cancelled, or triggered incorrectly."""


class ProcessError(SimulationError):
    """A simulation process yielded something that is not awaitable."""


class ProtocolError(SimulationError):
    """The cache-coherence protocol reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload model is malformed or produced an invalid trace."""


class ExperimentError(ReproError):
    """An experiment cell failed (raised, timed out, or its worker died).

    Raised by the parallel engine in strict mode; carries the structured
    failure records in :attr:`failures`.
    """

    def __init__(self, message, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)


class ServeError(ReproError):
    """A campaign-service request failed (client side or server side).

    Carries the HTTP status the server answered with (0 when the
    failure happened before any response — connection refused, timeout).
    """

    def __init__(self, message, status=0):
        super().__init__(message)
        self.status = status


class CampaignInterrupted(ReproError):
    """A campaign was preempted (SIGTERM/SIGINT) and stopped gracefully.

    The run is *resumable*: everything finished before the signal is in
    the journal and/or result cache, and re-invoking with the same spec
    plus ``--resume <run_id>`` continues where the interrupted run left
    off. ``results`` carries whatever partial output the campaign had
    produced (``None`` slots for cells that never completed).
    """

    def __init__(self, message, run_id="", completed=0, total=0,
                 results=None):
        super().__init__(message)
        self.run_id = run_id
        self.completed = completed
        self.total = total
        self.results = results
