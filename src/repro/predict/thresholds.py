"""Misprediction thresholds (Sections 3.3.3 and 3.4.2).

*Overprediction cut-off*: a thread that wakes up after the barrier was
released incurred a penalty equal to the difference between its wake-up
timestamp and its local barrier-release timestamp. If the penalty
exceeds a threshold fraction (10% in the paper) of the barrier interval
time, prediction is disabled for that thread at that barrier.

*Underprediction filter*: an inordinately long observed interval
(context switch, I/O, page fault) must not poison the predictor — the
update is skipped when the observation exceeds the prediction by more
than a factor.
"""

from repro.errors import ConfigError


def is_overpredicted(wakeup_ts_ns, release_ts_ns, bit_ns, threshold=0.10):
    """True when the late-wake penalty warrants disabling prediction.

    Parameters mirror Section 3.3.3: ``wakeup_ts_ns`` is the thread's
    recorded wake-up timestamp, ``release_ts_ns`` its local barrier
    release timestamp (BRTS), and ``bit_ns`` the barrier interval time
    the penalty is judged against.
    """
    if threshold <= 0:
        raise ConfigError("threshold must be positive")
    penalty = wakeup_ts_ns - release_ts_ns
    if penalty <= 0:
        return False
    return penalty > threshold * bit_ns


def should_update_predictor(predicted_bit_ns, observed_bit_ns, factor=4.0):
    """Underprediction filter: False when the observation is inordinate.

    With no prior prediction (cold entry) the update always proceeds.
    """
    if factor <= 1.0:
        raise ConfigError("underprediction factor must exceed 1")
    if predicted_bit_ns is None:
        return True
    if predicted_bit_ns <= 0:
        return True
    return observed_bit_ns <= factor * predicted_bit_ns
