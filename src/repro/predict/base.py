"""Predictor interface.

A predictor maps a barrier identifier — the barrier's PC in SPMD codes,
or the barrier structure's address in the general case (Section 3.2) —
to a predicted barrier interval time. Entries carry per-thread disable
bits, set by the overprediction cut-off of Section 3.3.3.
"""

import abc

from repro.errors import ConfigError


class PredictorStats:
    """Bookkeeping shared by all predictor implementations."""

    def __init__(self):
        self.predictions = 0
        self.cold_misses = 0
        self.updates = 0
        self.filtered_updates = 0
        self.disables = 0
        self.reenables = 0


class Predictor(abc.ABC):
    """PC-indexed barrier-interval-time predictor."""

    def __init__(self):
        # pc -> {thread_id: consecutive safe episodes since disable}.
        # Membership alone is the disable bit; the count drives the
        # probation/re-enable path of the graceful-degradation policy.
        self._disabled = {}
        self.stats = PredictorStats()

    @abc.abstractmethod
    def _lookup(self, pc):
        """The raw prediction for ``pc`` in ns, or None when cold."""

    @abc.abstractmethod
    def _train(self, pc, bit_ns):
        """Fold an observed BIT into the entry for ``pc``."""

    def predict(self, pc):
        """Predicted BIT in ns, or None when no history exists."""
        value = self._lookup(pc)
        if value is None:
            self.stats.cold_misses += 1
        else:
            self.stats.predictions += 1
        return value

    def peek(self, pc):
        """Current prediction without touching the statistics (used by
        the underprediction filter on the update path)."""
        return self._lookup(pc)

    def update(self, pc, bit_ns):
        """Record an observed barrier interval time."""
        if bit_ns < 0:
            raise ConfigError("BIT must be non-negative")
        self.stats.updates += 1
        self._train(pc, bit_ns)

    def note_filtered_update(self):
        """An update was skipped by the underprediction filter."""
        self.stats.filtered_updates += 1

    def disable(self, pc, thread_id):
        """Set the per-thread disable bit (overprediction cut-off)."""
        threads = self._disabled.setdefault(pc, {})
        if thread_id not in threads:
            threads[thread_id] = 0
            self.stats.disables += 1

    def note_safe_episode(self, pc, thread_id, probation_episodes):
        """Credit a disabled (thread, PC) with one safe barrier episode.

        After ``probation_episodes`` consecutive safe episodes the
        disable bit is cleared and prediction resumes. Returns True on
        the episode that re-enables. ``probation_episodes <= 0`` keeps
        the pre-probation policy: disabled stays disabled forever.
        """
        if probation_episodes <= 0:
            return False
        threads = self._disabled.get(pc)
        if threads is None or thread_id not in threads:
            return False
        threads[thread_id] += 1
        if threads[thread_id] < probation_episodes:
            return False
        del threads[thread_id]
        if not threads:
            del self._disabled[pc]
        self.stats.reenables += 1
        return True

    def is_disabled(self, pc, thread_id):
        """True when this thread must not sleep at this barrier again."""
        return thread_id in self._disabled.get(pc, ())

    def disabled_threads(self, pc):
        return frozenset(self._disabled.get(pc, ()))
