"""Predictor interface.

A predictor maps a barrier identifier — the barrier's PC in SPMD codes,
or the barrier structure's address in the general case (Section 3.2) —
to a predicted barrier interval time. Entries carry per-thread disable
bits, set by the overprediction cut-off of Section 3.3.3.
"""

import abc

from repro.errors import ConfigError


class PredictorStats:
    """Bookkeeping shared by all predictor implementations."""

    def __init__(self):
        self.predictions = 0
        self.cold_misses = 0
        self.updates = 0
        self.filtered_updates = 0
        self.disables = 0


class Predictor(abc.ABC):
    """PC-indexed barrier-interval-time predictor."""

    def __init__(self):
        self._disabled = {}  # pc -> set of thread ids
        self.stats = PredictorStats()

    @abc.abstractmethod
    def _lookup(self, pc):
        """The raw prediction for ``pc`` in ns, or None when cold."""

    @abc.abstractmethod
    def _train(self, pc, bit_ns):
        """Fold an observed BIT into the entry for ``pc``."""

    def predict(self, pc):
        """Predicted BIT in ns, or None when no history exists."""
        value = self._lookup(pc)
        if value is None:
            self.stats.cold_misses += 1
        else:
            self.stats.predictions += 1
        return value

    def peek(self, pc):
        """Current prediction without touching the statistics (used by
        the underprediction filter on the update path)."""
        return self._lookup(pc)

    def update(self, pc, bit_ns):
        """Record an observed barrier interval time."""
        if bit_ns < 0:
            raise ConfigError("BIT must be non-negative")
        self.stats.updates += 1
        self._train(pc, bit_ns)

    def note_filtered_update(self):
        """An update was skipped by the underprediction filter."""
        self.stats.filtered_updates += 1

    def disable(self, pc, thread_id):
        """Set the per-thread disable bit (overprediction cut-off)."""
        threads = self._disabled.setdefault(pc, set())
        if thread_id not in threads:
            threads.add(thread_id)
            self.stats.disables += 1

    def is_disabled(self, pc, thread_id):
        """True when this thread must not sleep at this barrier again."""
        return thread_id in self._disabled.get(pc, ())

    def disabled_threads(self, pc):
        return frozenset(self._disabled.get(pc, ()))
