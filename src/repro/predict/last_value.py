"""Concrete BIT predictors.

The paper found simple PC-indexed *last-value* prediction accurate for
most applications; the moving-average and exponentially-weighted
variants exist for the predictor ablation benchmark (they trade reaction
speed against noise immunity — relevant for Ocean's swinging interval
times, Section 5.2).
"""

from collections import deque

from repro.errors import ConfigError
from repro.predict.base import Predictor


class LastValuePredictor(Predictor):
    """Predict the value measured at the last occurrence (the paper's)."""

    def __init__(self):
        super().__init__()
        self._table = {}

    def _lookup(self, pc):
        return self._table.get(pc)

    def _train(self, pc, bit_ns):
        self._table[pc] = bit_ns


class MovingAveragePredictor(Predictor):
    """Predict the mean of the last ``window`` observations."""

    def __init__(self, window=4):
        super().__init__()
        if window < 1:
            raise ConfigError("window must be at least 1")
        self.window = window
        self._history = {}

    def _lookup(self, pc):
        history = self._history.get(pc)
        if not history:
            return None
        return int(round(sum(history) / len(history)))

    def _train(self, pc, bit_ns):
        history = self._history.setdefault(pc, deque(maxlen=self.window))
        history.append(bit_ns)


class ExponentialPredictor(Predictor):
    """Exponentially weighted moving average with smoothing ``alpha``."""

    def __init__(self, alpha=0.5):
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ConfigError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._table = {}

    def _lookup(self, pc):
        value = self._table.get(pc)
        if value is None:
            return None
        return int(round(value))

    def _train(self, pc, bit_ns):
        previous = self._table.get(pc)
        if previous is None:
            self._table[pc] = float(bit_ns)
        else:
            self._table[pc] = (
                self.alpha * bit_ns + (1.0 - self.alpha) * previous
            )
