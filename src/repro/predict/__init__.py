"""Barrier-interval-time prediction (paper Section 3.2).

The thrifty barrier predicts barrier *stall* time indirectly: it predicts
the thread-independent barrier *interval* time (BIT) with a PC-indexed
table and subtracts the thread's own compute time. This package holds:

* :mod:`repro.predict.base` — the predictor interface with the
  per-(thread, entry) disable bits of Section 3.3.3;
* :mod:`repro.predict.last_value` — the paper's last-value predictor,
  plus moving-average and exponentially-weighted variants used by the
  ablation benchmarks;
* :mod:`repro.predict.timing` — the BRTS/BIT/BST bookkeeping of
  Section 3.2.1 (no global clock required);
* :mod:`repro.predict.thresholds` — the overprediction cut-off and the
  underprediction (context switch / I/O) update filter.
"""

from repro.predict.base import Predictor
from repro.predict.confidence import ConfidencePredictor
from repro.predict.last_value import (
    ExponentialPredictor,
    LastValuePredictor,
    MovingAveragePredictor,
)
from repro.predict.thresholds import is_overpredicted, should_update_predictor
from repro.predict.timing import TimingDomain

__all__ = [
    "ConfidencePredictor",
    "ExponentialPredictor",
    "LastValuePredictor",
    "MovingAveragePredictor",
    "Predictor",
    "TimingDomain",
    "is_overpredicted",
    "should_update_predictor",
]
