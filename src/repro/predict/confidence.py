"""A confidence-gated predictor (paper Section 3.3.3).

The paper keeps its cut-off mechanism deliberately simple and notes
that "more complex solutions with sophisticated predictors and/or
confidence estimators are possible". This wrapper is that option: a
saturating per-entry confidence counter gates an inner predictor —
predictions are only issued once recent observations have repeatedly
confirmed the entry, and a surprise (observation far from the running
prediction) drops the confidence, silencing the entry until it proves
itself again.

Unlike the cut-off (permanent, per-thread), confidence is adaptive and
shared: an Ocean-style barrier whose intervals stabilize later in the
run can re-earn its predictions.
"""

from repro.errors import ConfigError
from repro.predict.base import Predictor


class ConfidencePredictor(Predictor):
    """Gate ``inner`` behind a saturating confidence counter.

    Parameters
    ----------
    inner:
        The predictor producing values (e.g.
        :class:`~repro.predict.LastValuePredictor`).
    threshold:
        Minimum confidence at which predictions are issued.
    maximum:
        Saturation value of the counter.
    tolerance:
        Relative error under which an observation counts as confirming
        the current prediction.
    """

    def __init__(self, inner, threshold=2, maximum=3, tolerance=0.25):
        super().__init__()
        if not isinstance(inner, Predictor):
            raise ConfigError("inner must be a Predictor")
        if not 0 < threshold <= maximum:
            raise ConfigError("need 0 < threshold <= maximum")
        if tolerance <= 0:
            raise ConfigError("tolerance must be positive")
        self.inner = inner
        self.threshold = threshold
        self.maximum = maximum
        self.tolerance = tolerance
        self._confidence = {}

    def confidence(self, pc):
        """Current counter value for an entry (0 when never seen)."""
        return self._confidence.get(pc, 0)

    def _lookup(self, pc):
        if self.confidence(pc) < self.threshold:
            return None
        return self.inner.peek(pc)

    def _train(self, pc, bit_ns):
        previous = self.inner.peek(pc)
        if previous is None:
            # First observation: seed the inner table, start at 1.
            self._confidence[pc] = 1
        elif abs(bit_ns - previous) <= self.tolerance * max(previous, 1):
            self._confidence[pc] = min(
                self.maximum, self.confidence(pc) + 1
            )
        else:
            self._confidence[pc] = max(0, self.confidence(pc) - 1)
        self.inner.update(pc, bit_ns)
