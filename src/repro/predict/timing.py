"""BRTS/BIT/BST bookkeeping without a global clock (Section 3.2.1).

Per application there is **one** shared BIT location (written by the last
thread to arrive at each barrier instance) and, per thread, a local
barrier-release timestamp (BRTS). The induction:

* at arrival, a thread's compute time for the interval is
  ``now - BRTS[t]`` on its local clock;
* an early thread estimates its wake-up time as ``BRTS[t] + predict(BIT)``
  and hence its stall as that minus ``now``;
* the last thread measures the actual ``BIT = now - BRTS[t]`` and
  publishes it;
* once awake, every thread advances ``BRTS[t] += BIT``.

All processors share the nominal clock frequency (paper assumption 1),
which the simulator guarantees trivially; no thread ever reads another
thread's clock.
"""

from repro.errors import SimulationError


class TimingDomain:
    """Timing state shared by all barriers of one application."""

    def __init__(self, system, n_threads, predictor=None):
        if n_threads < 1:
            raise SimulationError("need at least one thread")
        self.sim = system.sim
        self.n_threads = n_threads
        self.predictor = predictor
        #: The shared BIT variable (one cache line of its own).
        self.bit_addr = system.alloc_shared()
        #: Local barrier-release timestamps, one per thread. Zero
        #: initially; the first instance is handled conventionally as
        #: warm-up, so the zeros never feed a sleep decision.
        self._brts = [0] * n_threads
        #: Global barrier-instance sequence number (meta-instrumentation).
        self.instances_released = 0

    def brts(self, thread_id):
        """The thread's local release timestamp of the last instance."""
        return self._brts[thread_id]

    def compute_time(self, thread_id):
        """Compute time of the current interval, measured at arrival."""
        elapsed = self.sim._now - self._brts[thread_id]
        if elapsed < 0:
            raise SimulationError("local clock ran backwards")
        return elapsed

    def estimate(self, pc, thread_id):
        """Predicted (wake-up time, stall time) for an early arriver.

        Returns ``(None, None)`` when the predictor is cold for this
        barrier or prediction is disabled for this thread.
        """
        if self.predictor is None:
            return None, None
        if self.predictor.is_disabled(pc, thread_id):
            return None, None
        predicted_bit = self.predictor.predict(pc)
        if predicted_bit is None:
            return None, None
        wake_ts = self._brts[thread_id] + predicted_bit
        stall = wake_ts - self.sim._now
        return wake_ts, stall

    def measure_bit(self, thread_id):
        """The actual BIT, measured by the last thread on arrival."""
        return self.sim._now - self._brts[thread_id]

    def advance(self, thread_id, bit_ns):
        """Advance BRTS after the barrier: ``BRTS[t] += BIT``.

        Returns the new BRTS — the thread's local timestamp for the
        release of the instance just passed.
        """
        if bit_ns < 0:
            raise SimulationError("BIT must be non-negative")
        self._brts[thread_id] += bit_ns
        return self._brts[thread_id]

    def record_observed_release(self, thread_id):
        """Warm-up path: a spinning thread saw the flag flip *now* and
        records its local timestamp directly (Section 3.2.1)."""
        self._brts[thread_id] = self.sim._now
        return self._brts[thread_id]
