"""Command-line interface: regenerate any table or figure, or trace a run.

Examples
--------
::

    thrifty-barrier table2 --apps fmm ocean
    thrifty-barrier figure5 --threads 64
    thrifty-barrier headline
    python -m repro figure3

Telemetry surface::

    repro run --app fmm --config thrifty --threads 16 --trace out.json
    repro trace --app fmm --threads 16
    repro metrics --app ocean --config thrifty-halt --threads 16

``run`` executes one (application, configuration) cell with tracing on
and prints its summary; ``--trace`` writes a Perfetto-loadable Chrome
trace, ``--metrics-csv`` a CSV metric dump. ``trace`` prints the
human-readable timeline digest; ``metrics`` the full metrics tables.

Model checking::

    repro check --schedules 64 --depth 24     # all five configs
    repro check --mutant racy-check-in        # must be caught
    repro check --replay counterexample.json  # reproduce a finding

``check`` drives the simulator through bounded alternative orderings
of same-timestamp events and audits every schedule with the protocol
oracles; a violation is shrunk to a minimal decision string and
exported as a replayable artifact plus a Perfetto witness trace.

Crash safety::

    repro figure5 --run-id nightly            # journaled sweep
    repro figure5 --resume nightly            # continue after a kill
    repro chaos --run-id soak --plans 25
    repro chaos --resume soak

``--run-id`` journals the campaign (durable per-cell records under
``$REPRO_JOURNAL_DIR`` or ``<cache dir>/runs``); after a SIGTERM/
SIGINT, OOM kill, or crash, ``--resume`` reconstructs the work queue,
skips every finished cell, and produces output byte-identical to an
uninterrupted run.

Exit codes
----------

* ``0`` (:data:`EXIT_OK`) — clean completion (chaos: no invariant
  violations; check: every explored schedule clean, or a replay
  reproduced its artifact exactly);
* ``1`` (:data:`EXIT_VIOLATION`) — the campaign finished but found
  violations / failures (check: a counterexample was found, or a
  replay did not reproduce);
* ``2`` (:data:`EXIT_USAGE`) — bad invocation (unknown configuration,
  argparse errors);
* ``3`` (:data:`EXIT_RESUMABLE`) — gracefully preempted; everything
  finished so far is journaled/cached and ``--resume`` continues it.
"""

import argparse
import sys

from repro.errors import CampaignInterrupted, ServeError
from repro.experiments import figures, tables
from repro.experiments import report
from repro.experiments.preemption import EXIT_RESUMABLE, PreemptionGuard
from repro.experiments.runner import DEFAULT_SEED, run_matrix
from repro.serve.server import DEFAULT_PORT as SERVE_DEFAULT_PORT
from repro.workloads.splash2 import SPLASH2_NAMES

EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_USAGE = 2
# EXIT_RESUMABLE (3) is defined in repro.experiments.preemption and
# re-exported here so every exit status reads from one module.

_ARTIFACTS = (
    "table1", "table2", "table3", "figure3", "figure5", "figure6",
    "headline", "all",
)

#: Telemetry commands operating on a single (app, config) cell.
_CELL_COMMANDS = ("run", "trace", "metrics")

#: Robustness commands.
_CHAOS_COMMANDS = ("chaos",)

#: Model-checking commands: bounded schedule exploration and replay.
_CHECK_COMMANDS = ("check",)

#: Campaign-service commands: the server plus its client verbs.
_SERVE_COMMANDS = ("serve", "submit", "status", "results", "cancel",
                   "shutdown")

#: Result-cache maintenance.
_CACHE_COMMANDS = ("cache",)

#: Offline storage audit/repair.
_FSCK_COMMANDS = ("fsck",)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="thrifty-barrier",
        description=(
            "Reproduce tables and figures of 'The Thrifty Barrier' "
            "(HPCA 2004)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=(_ARTIFACTS + _CELL_COMMANDS + _CHAOS_COMMANDS
                 + _CHECK_COMMANDS + _SERVE_COMMANDS + _CACHE_COMMANDS
                 + _FSCK_COMMANDS),
        help="which artifact to regenerate, a telemetry command "
             "(run / trace / metrics) on one experiment cell, "
             "'chaos' to run a seeded fault-injection campaign, "
             "'check' to model-check barrier/sleep protocols over "
             "alternative event orderings, "
             "a campaign-service command (serve / submit / status / "
             "results / cancel / shutdown), 'cache' maintenance, or "
             "'fsck' to audit/repair journal and cache trees",
    )
    parser.add_argument(
        "action", nargs="?", default=None, metavar="ARG",
        help="campaign id for status/results/cancel, the cache "
             "action (stats / prune / clear), or the run id for fsck "
             "(default: every journal)",
    )
    parser.add_argument(
        "--app", default="fmm", metavar="APP",
        help="application for run/trace/metrics (default fmm)",
    )
    parser.add_argument(
        "--config", default="thrifty", metavar="CFG",
        help="configuration for run/trace/metrics (default thrifty)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Perfetto-loadable Chrome trace of the cell "
             "(run/trace/metrics only)",
    )
    parser.add_argument(
        "--metrics-csv", metavar="PATH", default=None,
        help="write the cell's metrics as CSV (run/trace/metrics only)",
    )
    parser.add_argument(
        "--apps", nargs="*", default=None, metavar="APP",
        help="applications to include (default: all ten; {})".format(
            ", ".join(SPLASH2_NAMES)
        ),
    )
    parser.add_argument(
        "--threads", type=int, default=None,
        help="thread/processor count (default 64, as in the paper; "
             "check defaults to 8 — exploration budgets scale with "
             "the choice-point count)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="workload random seed (default {})".format(DEFAULT_SEED),
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the run matrix as JSON (figure5/figure6/"
             "headline/all), or the chaos campaign report with "
             "violation event windows (chaos)",
    )
    parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the run matrix as CSV",
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="append ASCII bar charts to figure5/figure6 output",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the run matrix (default 1 = serial; "
             "0 = one per CPU); results are bit-identical either way",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-thrifty)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--plans", type=int, default=5, metavar="N",
        help="number of sampled fault plans for the chaos campaign "
             "(default 5)",
    )
    parser.add_argument(
        "--intensity", type=float, default=1.0,
        help="fault-probability scale for sampled chaos plans "
             "(default 1.0)",
    )
    parser.add_argument(
        "--configs", nargs="*", default=None, metavar="CFG",
        help="configurations for the chaos campaign or check sweep "
             "(default: all five)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="chaos: stop the campaign at the first violating cell "
             "instead of sweeping every planned cell",
    )
    parser.add_argument(
        "--schedules", type=int, default=64, metavar="N",
        help="check: schedule budget per explored cell (default 64)",
    )
    parser.add_argument(
        "--depth", type=int, default=24, metavar="N",
        help="check: deepest choice point the dfs strategy deviates at "
             "(default 24; random walks are unbounded)",
    )
    parser.add_argument(
        "--strategy", choices=("dfs", "random"), default="dfs",
        help="check: exploration strategy — 'dfs' for CHESS-style "
             "bounded systematic search, 'random' for seeded random "
             "walks (default dfs)",
    )
    parser.add_argument(
        "--mutant", metavar="NAME", default=None,
        help="check: explore a deliberately broken barrier variant "
             "from repro.sync.mutants instead of the correct one "
             "(its registered cell supplies the defaults)",
    )
    parser.add_argument(
        "--plan-seed", type=int, default=None, metavar="N",
        help="check: compose a sampled FaultPlan (seeded with N, "
             "scaled by --intensity) with the exploration",
    )
    parser.add_argument(
        "--counterexample", metavar="PATH", default="counterexample.json",
        help="check: where to write the minimized replayable "
             "counterexample when a violation is found "
             "(default counterexample.json; a Perfetto witness trace "
             "is written beside it)",
    )
    parser.add_argument(
        "--replay", metavar="PATH", default=None,
        help="check: replay a counterexample artifact and exit 0 iff "
             "the recorded violations reproduce exactly",
    )
    parser.add_argument(
        "--run-id", metavar="ID", default=None,
        help="journal this campaign under ID (durable per-cell records; "
             "a killed run becomes resumable)",
    )
    parser.add_argument(
        "--resume", metavar="ID", default=None,
        help="resume the journaled campaign ID: skip finished cells, "
             "produce output byte-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--journal-dir", metavar="PATH", default=None,
        help="run-journal root (default: $REPRO_JOURNAL_DIR or "
             "<cache dir>/runs)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="campaign-service bind/connect address "
             "(default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="campaign-service port (default {}; 0 = pick a free "
             "port when serving)".format(SERVE_DEFAULT_PORT),
    )
    parser.add_argument(
        "--pool", type=int, default=2, metavar="N",
        help="initial worker-pool size for 'serve' (default 2; "
             "hotplug at runtime via POST /pool)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="client-side wait budget in seconds for 'results' "
             "(default 600)",
    )
    parser.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="entry budget for 'cache prune'",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="fsck: apply the safe repairs (truncate torn journal "
             "tails, quarantine corrupt payloads, sweep stale tmp "
             "files) instead of only reporting",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=30.0, metavar="S",
        help="serve: per-connection idle/read deadline in seconds; a "
             "stalled client gets 408 and its connection back "
             "(default 30, 0 disables)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=128, metavar="N",
        help="serve: load-shedding cap on concurrent connections; "
             "beyond it new requests get 503 + Retry-After "
             "(default 128, 0 disables)",
    )
    return parser


def _emit(text):
    print(text)
    print()


def _cache_argument(args):
    """Map the cache flags to run_matrix's ``cache`` argument."""
    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return args.cache_dir
    return True


def _journal_argument(args, spec, total):
    """Build the run journal the flags ask for (or ``None``).

    ``--resume`` opens an existing journal, verifies the invocation
    describes the *same* campaign (spec hash), and appends a
    ``resumed`` record; ``--run-id`` creates a fresh one. Returns
    ``(journal, resumed_count)``.
    """
    from repro.experiments.journal import RunJournal

    if args.resume:
        journal = RunJournal.open(args.resume, root=args.journal_dir)
        journal.verify_spec(spec)
        completed = len(journal.replay().completed)
        journal.record_resumed(
            completed=completed, remaining=max(0, total - completed),
        )
        return journal, completed
    if args.run_id:
        return (
            RunJournal.create(spec, run_id=args.run_id,
                              root=args.journal_dir),
            0,
        )
    return None, 0


def _resume_hint(args, run_id):
    hint = "--resume {}".format(run_id)
    if args.journal_dir:
        hint += " --journal-dir {}".format(args.journal_dir)
    return hint


def _run_cell_command(args):
    """The run / trace / metrics telemetry commands: one traced cell."""
    from repro.experiments.configs import CONFIG_NAMES
    from repro.experiments.runner import run_experiment
    from repro.telemetry.export import metrics_to_csv, write_chrome_trace

    if args.config not in CONFIG_NAMES:
        print(
            "unknown configuration {!r}; choose from {}".format(
                args.config, ", ".join(CONFIG_NAMES)
            ),
            file=sys.stderr,
        )
        return EXIT_USAGE
    result = run_experiment(
        args.app, args.config, threads=args.threads, seed=args.seed,
        telemetry=True,
    )
    snapshot = result.telemetry
    if args.artifact == "run":
        _emit(report.render_table(
            ("Field", "Value"),
            [
                ("app", result.app),
                ("config", result.config),
                ("threads", result.n_threads),
                ("execution time", "{:,} ns".format(
                    result.execution_time_ns
                )),
                ("energy", "{:.3f} J".format(result.energy_joules)),
                ("barrier imbalance", "{:.4f}".format(
                    result.barrier_imbalance
                )),
                ("events traced", "{:,}".format(len(snapshot.events))),
            ],
            title="Cell summary",
        ))
        _emit(report.render_metrics(
            snapshot.metrics, title="Cell metrics",
            prefixes=("barrier.", "sleep.", "wake.", "predictor."),
        ))
    elif args.artifact == "trace":
        _emit(report.render_trace_summary(snapshot.events))
    else:  # metrics
        _emit(report.render_metrics(snapshot.metrics))
    if args.trace:
        write_chrome_trace(
            snapshot.events, args.trace,
            process_name="{} {}".format(result.app, result.config),
        )
        print("chrome trace written to {} ({:,} events; open in "
              "https://ui.perfetto.dev)".format(
                  args.trace, len(snapshot.events)))
    if args.metrics_csv:
        metrics_to_csv(snapshot.metrics, args.metrics_csv)
        print("metrics CSV written to {}".format(args.metrics_csv))
    return EXIT_OK


def _run_chaos_command(args):
    """The ``chaos`` command: a seeded fault campaign with auditing.

    Journaled (``--run-id``/``--resume``) and preemption-aware: a
    SIGTERM/SIGINT reports the partial campaign instead of discarding
    it and exits :data:`EXIT_RESUMABLE`.
    """
    import json

    from repro import __version__
    from repro.faults.chaos import (
        chaos_report_as_dict,
        render_chaos_report,
        run_chaos_campaign,
        sample_plans,
    )

    from repro.experiments.configs import CONFIG_NAMES

    apps = tuple(args.apps or ("fmm",))
    configs = tuple(args.configs or CONFIG_NAMES)
    plans = sample_plans(args.plans, seed=args.seed, intensity=args.intensity)
    spec = {
        "kind": "chaos", "apps": list(apps), "configs": list(configs),
        "threads": args.threads, "seed": args.seed, "plans": args.plans,
        "intensity": args.intensity, "version": __version__,
    }
    journal, _resumed = _journal_argument(
        args, spec, total=len(apps) * len(configs) * args.plans,
    )
    with PreemptionGuard() as guard:
        campaign = run_chaos_campaign(
            plans, apps=apps, configs=configs,
            threads=args.threads, seed=args.seed,
            journal=journal, preemption=guard,
            fail_fast=args.fail_fast,
        )
    _emit(render_chaos_report(campaign))
    if args.json:
        from repro.faults.storage import atomic_write_text

        atomic_write_text(
            args.json,
            json.dumps(chaos_report_as_dict(campaign), indent=2,
                       sort_keys=True) + "\n",
        )
        print("chaos report written to {}".format(args.json))
    if campaign.interrupted:
        if campaign.run_id:
            print("resume with: repro chaos {}".format(
                _resume_hint(args, campaign.run_id)
            ))
        else:
            print("re-run with --run-id to make interrupted campaigns "
                  "resumable")
        return EXIT_RESUMABLE
    return EXIT_OK if campaign.ok else EXIT_VIOLATION


def _usage(message):
    print(message, file=sys.stderr)
    return EXIT_USAGE


def _run_check_command(args):
    """``repro check``: model-check the protocol over tie-break orders.

    Explores bounded alternative same-timestamp event orderings of
    each requested configuration (default: all five paper configs) and
    audits every schedule with the full oracle set. The first
    violation is shrunk to a minimal decision string and exported as a
    replayable artifact (``--counterexample``) plus a Perfetto witness
    trace; ``--replay FILE`` re-runs an artifact and exits 0 iff the
    recorded violations reproduce exactly. ``--mutant NAME`` swaps in
    a deliberately broken barrier — the detector's self-test.
    Everything is deterministic given ``--seed``.
    """
    from repro.check import (
        explore,
        replay_counterexample,
        run_schedule,
        shrink_decisions,
        witness_path,
        write_counterexample,
    )
    from repro.errors import ConfigError
    from repro.experiments.configs import CONFIG_NAMES

    if args.replay:
        try:
            reproduced, result, expected = replay_counterexample(args.replay)
        except (ConfigError, OSError, ValueError) as exc:
            return _usage("cannot replay {}: {}".format(args.replay, exc))
        print("replay {}: {} recorded violation(s), {} observed".format(
            args.replay, len(expected), len(result.violations)
        ))
        for violation in result.violations:
            print("  " + violation.describe())
        print("REPRODUCED" if reproduced else
              "NOT REPRODUCED (violations differ from the artifact)")
        return EXIT_OK if reproduced else EXIT_VIOLATION

    fault_plan = None
    if args.plan_seed is not None:
        from repro.faults.plan import FaultPlan

        fault_plan = FaultPlan.sample(
            args.plan_seed, intensity=args.intensity
        )

    if args.mutant:
        from repro.sync.mutants import mutant_spec

        try:
            spec = mutant_spec(args.mutant)
        except ConfigError as exc:
            return _usage(str(exc))
        app, configs = spec.app, (spec.base_config,)
    else:
        app = args.app
        configs = tuple(args.configs or CONFIG_NAMES)
        unknown = [c for c in configs if c not in CONFIG_NAMES]
        if unknown:
            return _usage(
                "unknown configuration(s) {}; choose from {}".format(
                    ", ".join(map(repr, unknown)), ", ".join(CONFIG_NAMES)
                )
            )

    for config in configs:
        try:
            exploration = explore(
                app, config, threads=args.threads, seed=args.seed,
                max_schedules=args.schedules, max_depth=args.depth,
                strategy=args.strategy, fault_plan=fault_plan,
                mutant=args.mutant,
            )
        except ConfigError as exc:
            return _usage(str(exc))
        print("check {}/{}/{}t seed {} [{}]: {} schedule(s), "
              "{} unique{}{}".format(
                  app, config, args.threads, args.seed, args.strategy,
                  exploration.schedules_run, exploration.unique_schedules,
                  " (budget exhausted)" if exploration.exhausted_budget
                  else "",
                  " — clean" if exploration.ok else "",
              ))
        if exploration.ok:
            continue

        # A schedule violated an oracle: shrink its decision string to
        # the deviations that matter, re-run the minimal schedule, and
        # export it as a replayable artifact.
        failure = exploration.first_failure
        for violation in failure.violations:
            print("  " + violation.describe())

        def still_fails(candidate):
            return not run_schedule(
                app, config, threads=args.threads, seed=args.seed,
                decisions=candidate, fault_plan=fault_plan,
                mutant=args.mutant,
            ).ok

        minimized, trials = shrink_decisions(
            failure.decisions, still_fails
        )
        minimal = run_schedule(
            app, config, threads=args.threads, seed=args.seed,
            decisions=minimized, fault_plan=fault_plan,
            mutant=args.mutant,
        )
        write_counterexample(
            args.counterexample, minimal, decisions=minimized,
            mutant=args.mutant, fault_plan=fault_plan,
            shrink_trials=trials,
        )
        print("shrunk {} -> {} decision(s) in {} trial(s)".format(
            len(failure.decisions), len(minimized), trials
        ))
        print("counterexample written to {} (witness trace: {})".format(
            args.counterexample, witness_path(args.counterexample)
        ))
        print("replay with: repro check --replay {}".format(
            args.counterexample
        ))
        return EXIT_VIOLATION
    return EXIT_OK


def _run_serve_command(args):
    """The campaign-service commands: the server and its client verbs.

    ``serve`` blocks until shut down (its exit status distinguishes a
    clean stop from a preemption with in-flight campaigns, exactly
    like a batch run). The client verbs talk to a running server;
    ``submit`` prints the new campaign's run id *alone* on stdout so
    shell scripts can capture it (details go to stderr).
    """
    import json

    from repro.serve.client import ServeClient

    port = args.port if args.port is not None else SERVE_DEFAULT_PORT
    if args.artifact == "serve":
        from repro.serve.server import CampaignServer

        if args.no_cache:
            return _usage(
                "repro serve needs the result cache (cross-campaign "
                "dedup and restart recovery are built on it); drop "
                "--no-cache"
            )
        server = CampaignServer(
            host=args.host, port=port, pool_size=args.pool,
            cache=args.cache_dir, journal_root=args.journal_dir,
            idle_timeout_s=args.idle_timeout or None,
            max_connections=args.max_connections or None,
        )
        return server.run()

    client = ServeClient(host=args.host, port=port)
    try:
        if args.artifact == "submit":
            spec = {"threads": args.threads, "seed": args.seed}
            if args.apps:
                spec["apps"] = list(args.apps)
            if args.configs:
                spec["configs"] = list(args.configs)
            status = client.submit(spec)
            print(
                "campaign {run_id}: {total} cells ({cached} cached, "
                "{deduped} deduped), state {state}".format(**status),
                file=sys.stderr,
            )
            print(status["run_id"])
            return EXIT_OK
        if args.artifact == "shutdown":
            client.shutdown()
            print("server stopping", file=sys.stderr)
            return EXIT_OK
        if not args.action:
            return _usage(
                "repro {} needs a campaign id (see 'repro submit' "
                "output or GET /campaigns)".format(args.artifact)
            )
        if args.artifact == "status":
            print(json.dumps(client.status(args.action), indent=2,
                             sort_keys=True))
            return EXIT_OK
        if args.artifact == "cancel":
            status = client.cancel(args.action)
            print("campaign {} {} after {} of {} cells".format(
                status["run_id"], status["state"],
                status["completed"], status["total"],
            ))
            return EXIT_OK
        # results: wait for the terminal state, then fetch.
        status = client.wait(args.action, timeout=args.timeout)
        if status["state"] == "cancelled":
            print("campaign {} was cancelled".format(args.action),
                  file=sys.stderr)
            return EXIT_VIOLATION
        document = client.results(args.action)
        text = json.dumps(document["records"], indent=2, sort_keys=True)
        if args.json:
            from repro.experiments.journal import atomic_write_text

            atomic_write_text(args.json, text + "\n")
            print("results written to {}".format(args.json),
                  file=sys.stderr)
        else:
            print(text)
        if document["failed"]:
            print("{} cell(s) failed".format(document["failed"]),
                  file=sys.stderr)
            return EXIT_VIOLATION
        return EXIT_OK
    except ServeError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_VIOLATION


def _run_fsck_command(args):
    """``repro fsck [RUN_ID] [--repair]``: audit journals and cache.

    Exit status: 0 when the tree is clean (or every issue was
    repaired), 1 when issues remain — unrepaired damage without
    ``--repair``, or unrepairable loss (a corrupt ``spec.json``) with
    it.
    """
    from repro.experiments.fsck import fsck_tree, render_fsck_report

    cache_dir = None
    if not args.no_cache:
        from repro.experiments.cache import default_cache_dir

        cache_dir = args.cache_dir or default_cache_dir()
    report = fsck_tree(
        journal_root=args.journal_dir, run_id=args.action,
        cache_dir=cache_dir, repair=args.repair,
    )
    _emit(render_fsck_report(report))
    return EXIT_OK if report.ok else EXIT_VIOLATION


def _run_cache_command(args):
    """``repro cache stats | prune | clear``: result-cache upkeep."""
    import json

    from repro.experiments.cache import ResultCache

    if args.no_cache:
        return _usage("repro cache needs a cache; drop --no-cache")
    cache = ResultCache(args.cache_dir)
    action = args.action or "stats"
    if action == "prune":
        if args.max_entries is None or args.max_entries < 0:
            return _usage(
                "repro cache prune needs --max-entries N (the entry "
                "budget to keep)"
            )
        evicted = cache.prune(args.max_entries)
        print("evicted {} entr{}".format(
            evicted, "y" if evicted == 1 else "ies"
        ), file=sys.stderr)
    elif action == "clear":
        removed = cache.clear()
        print("removed {} entr{}".format(
            removed, "y" if removed == 1 else "ies"
        ), file=sys.stderr)
    elif action != "stats":
        return _usage(
            "unknown cache action {!r}; choose from stats, prune, "
            "clear".format(action)
        )
    stats = dict(cache.stats())
    stats["entries"] = len(cache)
    stats["size_bytes"] = cache.size_bytes()
    stats["layout"] = cache.layout()
    stats["cache_dir"] = str(cache.cache_dir)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return EXIT_OK


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.threads is None:
        # check explores interleavings — budgets scale with the number
        # of choice points, so its default cell is small.
        args.threads = 8 if args.artifact in _CHECK_COMMANDS else 64
    # A seeded storage fault plan in $REPRO_STORAGE_FAULTS applies to
    # any command — this is how CI runs a *subprocess* campaign under
    # injected ENOSPC/torn-write faults.
    from repro.faults.storage import install_from_env

    install_from_env()
    if args.artifact in _SERVE_COMMANDS:
        return _run_serve_command(args)
    if args.artifact in _FSCK_COMMANDS:
        return _run_fsck_command(args)
    if args.artifact in _CACHE_COMMANDS:
        return _run_cache_command(args)
    if args.artifact in _CELL_COMMANDS:
        return _run_cell_command(args)
    if args.artifact in _CHAOS_COMMANDS:
        return _run_chaos_command(args)
    if args.artifact in _CHECK_COMMANDS:
        return _run_check_command(args)
    from repro.telemetry.metrics import MetricsRegistry

    needs_matrix = args.artifact in ("figure5", "figure6", "headline", "all")
    matrix = None
    engine_metrics = MetricsRegistry()
    if needs_matrix:
        from repro import __version__
        from repro.experiments.configs import CONFIG_NAMES

        apps = tuple(args.apps or SPLASH2_NAMES)
        spec = {
            "kind": "matrix", "apps": list(apps),
            "configs": list(CONFIG_NAMES), "threads": args.threads,
            "seed": args.seed, "version": __version__,
        }
        journal, resumed = _journal_argument(
            args, spec, total=len(apps) * len(CONFIG_NAMES),
        )
        if args.resume:
            from repro.telemetry.events import ResumeStarted

            ResumeStarted(
                ts=0, run_id=journal.run_id, completed=resumed,
                remaining=len(apps) * len(CONFIG_NAMES) - resumed,
            ).record(engine_metrics)
        try:
            with PreemptionGuard() as guard:
                matrix = run_matrix(
                    apps=apps, threads=args.threads, seed=args.seed,
                    workers=args.workers or None,
                    cache=_cache_argument(args),
                    metrics=engine_metrics,
                    journal=journal,
                    preemption=guard,
                )
        except CampaignInterrupted as exc:
            print(
                "preempted ({} of {} cells finished); everything "
                "completed is {}".format(
                    exc.completed, exc.total,
                    "journaled and cached" if journal is not None
                    else "in the result cache",
                ),
                file=sys.stderr,
            )
            if exc.run_id:
                print(
                    "resume with: repro {} {}".format(
                        args.artifact, _resume_hint(args, exc.run_id)
                    ),
                    file=sys.stderr,
                )
            if len(engine_metrics):
                _emit(report.render_metrics(
                    engine_metrics,
                    title="Run summary — engine & cache counters",
                    prefixes=("engine.", "cache.", "journal.", "storage."),
                ))
            return EXIT_RESUMABLE
    if args.artifact in ("table1", "all"):
        rows, validation = tables.table1_rows()
        _emit(report.render_table1(rows, validation))
    if args.artifact in ("table2", "all"):
        rows = tables.table2_rows(
            threads=args.threads, seed=args.seed, apps=args.apps
        )
        _emit(report.render_table2(rows))
    if args.artifact in ("table3", "all"):
        rows, tdp = tables.table3_rows()
        _emit(report.render_table3(rows, tdp))
    if args.artifact in ("figure3", "all"):
        rows = figures.figure3_rows(threads=args.threads, seed=args.seed)
        _emit(report.render_figure3(rows))
    if args.artifact in ("figure5", "all"):
        rows = figures.figure5_rows(matrix)
        _emit(report.render_figure5(rows))
        if args.chart:
            _emit(report.render_bar_chart(rows))
    if args.artifact in ("figure6", "all"):
        rows = figures.figure6_rows(matrix)
        _emit(report.render_figure6(rows))
        if args.chart:
            _emit(report.render_bar_chart(rows, value_key="wall"))
    if args.artifact in ("headline", "all"):
        _emit(report.render_headline(matrix))
    if matrix is not None and (args.json or args.csv):
        from repro.experiments.export import (
            matrix_to_json,
            matrix_to_records,
            records_to_csv,
        )

        if args.json:
            matrix_to_json(matrix, path=args.json)
        if args.csv:
            records_to_csv(matrix_to_records(matrix), args.csv)
    if matrix is not None and len(engine_metrics):
        _emit(report.render_metrics(
            engine_metrics, title="Run summary — engine & cache counters",
            prefixes=("engine.", "cache.", "journal.", "storage."),
        ))
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
