"""Coherence message vocabulary and size model.

Only the *types and sizes* matter for timing: control messages are one
flit (16 bytes), data-bearing messages carry a 64-byte line plus header.
"""

import enum
from dataclasses import dataclass

CONTROL_BYTES = 16
DATA_BYTES = 64 + 16


class MessageType(enum.Enum):
    GETS = "GetS"            # read request to home
    GETX = "GetX"            # write/upgrade request to home
    PUTX = "PutX"            # dirty write-back to home
    FETCH = "Fetch"          # home asks owner for a shared copy
    FETCH_INV = "FetchInv"   # home asks owner to yield and invalidate
    INV = "Inv"              # home invalidates a sharer
    INV_ACK = "InvAck"       # sharer acknowledges invalidation
    DATA_S = "DataS"         # data reply, shared grant
    DATA_X = "DataX"         # data reply, exclusive grant
    WB_ACK = "WbAck"         # home acknowledges a write-back


_DATA_CARRYING = {
    MessageType.PUTX,
    MessageType.DATA_S,
    MessageType.DATA_X,
}


def message_bytes(message_type):
    """Wire size of a message of the given type."""
    if message_type in _DATA_CARRYING:
        return DATA_BYTES
    return CONTROL_BYTES


@dataclass(frozen=True)
class Message:
    """A coherence message (used by traces and tests; the transaction
    engine mostly works with latencies directly)."""

    type: MessageType
    line_addr: int
    src: int
    dst: int

    @property
    def size_bytes(self):
        return message_bytes(self.type)
