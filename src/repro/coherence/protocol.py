"""The coherence transaction engine.

:class:`MemorySystem` executes loads, stores, atomic read-modify-writes,
and write-backs as simulation processes. Timing follows Table 1; protocol
state (cache line states, directory entries) is mutated at the simulated
instants the corresponding messages arrive. Data values are *functional*:
a single authoritative store is updated when a write transaction commits,
which is exact for the lock-protected and flag-based sharing patterns the
barrier code uses.

The home directory's per-line lock is held for the whole transaction
(request arrival through requester fill), mirroring DASH's busy/pending
serialization. Invalidations fan out in parallel and their acks are
collected before the exclusive grant — this is the very invalidation the
thrifty barrier uses as its external wake-up signal.
"""

from repro.coherence.cache import CacheHierarchy, LineState
from repro.coherence.directory import Directory, DirState
from repro.coherence.messages import CONTROL_BYTES, DATA_BYTES
from repro.interconnect.network import Network
from repro.interconnect.topology import Hypercube
from repro.sim.events import AllOf

#: Latency of a load/store when detailed_memory is off (fast mode).
FAST_MODE_ACCESS_NS = 4
#: Delay from a fast-mode store to monitor notification at remote nodes.
FAST_MODE_NOTIFY_NS = 120


class MemoryStats:
    """Counters for reporting and tests."""

    def __init__(self):
        self.loads = 0
        self.stores = 0
        self.rmws = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        self.invalidations = 0
        self.writebacks = 0
        self.owner_fetches = 0


class MemorySystem:
    """All caches, directories, and the functional store of the machine."""

    def __init__(self, sim, config, network=None):
        self.sim = sim
        self.config = config
        self.topology = Hypercube(config.n_nodes)
        self.network = network or Network(sim, self.topology, config.network)
        self.hierarchies = [
            CacheHierarchy(config, node) for node in range(config.n_nodes)
        ]
        self.directories = [
            Directory(sim, node) for node in range(config.n_nodes)
        ]
        self.controllers = [None] * config.n_nodes  # set by machine layer
        # line_addr -> set of node ids with at least one armed flag
        # monitor; maintained by the controllers so fast-mode stores
        # notify only the watching nodes instead of scanning them all.
        self._monitor_nodes = {}
        self._values = {}
        self.stats = MemoryStats()
        # Config scalars cached as attributes: the transaction
        # generators touch these on every access.
        self._detailed = config.detailed_memory
        self._line_bytes = config.line_bytes
        self._page_bytes = config.page_bytes
        self._n_nodes = config.n_nodes
        # 64-byte line over the 16-byte, 250 MHz bus = 4 cycles of 4 ns.
        bus_cycle_ns = int(round(1_000 / config.bus_freq_mhz))
        transfer_ns = (
            config.line_bytes // config.bus_width_bytes
        ) * bus_cycle_ns
        self.memory_access_ns = config.memory_row_miss_ns + transfer_ns

    # -- address helpers --------------------------------------------------

    def line_of(self, addr):
        return addr // self._line_bytes

    def home_of(self, addr):
        """Round-robin page interleaving of shared data (Table 1)."""
        return (addr // self._page_bytes) % self._n_nodes

    def home_of_line(self, line_addr):
        return (
            line_addr * self._line_bytes // self._page_bytes
        ) % self._n_nodes

    def peek(self, addr):
        """Functional read without timing (for assertions and oracles)."""
        return self._values.get(addr, 0)

    def poke(self, addr, value):
        """Functional write without timing (workload initialization)."""
        self._values[addr] = value

    # -- public transaction API (generators) ------------------------------

    def load(self, node, addr):
        """Read ``addr`` from ``node``; returns the value."""
        stats = self.stats
        stats.loads += 1
        if not self._detailed:
            yield FAST_MODE_ACCESS_NS
            return self._values.get(addr, 0)
        line = addr // self._line_bytes
        hierarchy = self.hierarchies[node]
        latency, state = hierarchy.lookup(line)
        yield latency
        if state is not None:
            # lookup() reports the L1 round trip iff the L1 hit.
            if latency == hierarchy._l1_hit_ns:
                stats.l1_hits += 1
            else:
                stats.l2_hits += 1
            return self._values.get(addr, 0)
        stats.misses += 1
        yield from self._shared_miss(node, line)
        return self._values.get(addr, 0)

    def store(self, node, addr, value):
        """Write ``value`` to ``addr`` from ``node``."""
        self.stats.stores += 1
        if not self._detailed:
            yield FAST_MODE_ACCESS_NS
            self._values[addr] = value
            self._fast_mode_notify(node, addr // self._line_bytes)
            return
        line = addr // self._line_bytes
        hierarchy = self.hierarchies[node]
        latency, state = hierarchy.lookup(line)
        yield latency
        if state is LineState.MODIFIED:
            self._values[addr] = value
            return
        yield from self._exclusive_miss(node, line)
        self._values[addr] = value

    def rmw(self, node, addr, update):
        """Atomic read-modify-write; returns the *old* value.

        ``update`` maps the old value to the new one. Used for the
        barrier count and for lock acquisition (test&set style).
        """
        self.stats.rmws += 1
        if not self._detailed:
            yield FAST_MODE_ACCESS_NS
            old = self._values.get(addr, 0)
            self._values[addr] = update(old)
            self._fast_mode_notify(node, addr // self._line_bytes)
            return old
        line = addr // self._line_bytes
        hierarchy = self.hierarchies[node]
        latency, state = hierarchy.lookup(line)
        yield latency
        if state is not LineState.MODIFIED:
            yield from self._exclusive_miss(node, line)
        old = self._values.get(addr, 0)
        self._values[addr] = update(old)
        return old

    def writeback(self, node, line):
        """Write a dirty line back to its home (PutX); drops ownership."""
        self.stats.writebacks += 1
        home = self.home_of_line(line)
        yield self.network.delivery_ns(node, home, DATA_BYTES)
        directory = self.directories[home]
        yield directory.lock(line).acquire()
        try:
            directory.release_exclusive(line, node)
            yield self.memory_access_ns
        finally:
            directory.lock(line).release()

    # -- protocol internals ------------------------------------------------

    def _shared_miss(self, node, line):
        """GetS: obtain a shared copy of ``line`` at ``node``."""
        home = self.home_of_line(line)
        yield self.network.delivery_ns(node, home, CONTROL_BYTES)
        directory = self.directories[home]
        yield directory.lock(line).acquire()
        try:
            entry = directory.entry(line)
            if entry.state is DirState.EXCLUSIVE and entry.owner != node:
                yield from self._fetch_from_owner(
                    home, line, entry.owner, invalidate=False
                )
            elif entry.state is DirState.EXCLUSIVE:
                # Our own write-back for this line is still in flight
                # (eviction raced the re-read); treat memory as current.
                entry.state = DirState.UNCACHED
                entry.owner = None
            yield self.memory_access_ns
            directory.grant_shared(line, node)
            yield self.network.delivery_ns(home, node, DATA_BYTES)
            self._fill(node, line, LineState.SHARED)
        finally:
            directory.lock(line).release()

    def _exclusive_miss(self, node, line):
        """GetX: obtain an exclusive (M) copy of ``line`` at ``node``."""
        home = self.home_of_line(line)
        yield self.network.delivery_ns(node, home, CONTROL_BYTES)
        directory = self.directories[home]
        yield directory.lock(line).acquire()
        try:
            entry = directory.entry(line)
            if entry.state is DirState.EXCLUSIVE and entry.owner != node:
                yield from self._fetch_from_owner(
                    home, line, entry.owner, invalidate=True
                )
            elif entry.state is DirState.SHARED:
                victims = sorted(entry.sharers - {node})
                if victims:
                    yield from self._invalidate_sharers(home, line, victims)
            yield self.memory_access_ns
            entry.sharers &= {node}
            directory.grant_exclusive(line, node)
            yield self.network.delivery_ns(home, node, DATA_BYTES)
            self._fill(node, line, LineState.MODIFIED)
        finally:
            directory.lock(line).release()

    def _invalidate_sharers(self, home, line, victims):
        """Fan INVs out in parallel; wait for every ack at the home."""

        def one_round_trip(victim):
            yield self.network.delivery_ns(home, victim, CONTROL_BYTES)
            self._deliver_invalidation(victim, line)
            yield self.network.delivery_ns(victim, home, CONTROL_BYTES)

        acks = [
            self.sim.spawn(
                one_round_trip(victim), name="inv->{}".format(victim)
            )
            for victim in victims
        ]
        yield AllOf(self.sim, acks)
        directory = self.directories[home]
        for victim in victims:
            directory.drop_sharer(line, victim)

    def _fetch_from_owner(self, home, line, owner, invalidate):
        """Pull (and optionally invalidate) the dirty copy at ``owner``."""
        self.stats.owner_fetches += 1
        yield self.network.delivery_ns(home, owner, CONTROL_BYTES)
        hierarchy = self.hierarchies[owner]
        if invalidate:
            self._deliver_invalidation(owner, line)
        elif hierarchy.state(line) is LineState.MODIFIED:
            hierarchy.set_state(line, LineState.SHARED)
        yield self.network.delivery_ns(owner, home, DATA_BYTES)
        directory = self.directories[home]
        if invalidate:
            entry = directory.entry(line)
            entry.state = DirState.UNCACHED
            entry.owner = None
            entry.sharers = set()
        else:
            directory.demote_owner(line)

    def _deliver_invalidation(self, node, line):
        """Invalidate ``line`` at ``node`` and poke its controller.

        The controller hook is how the thrifty barrier's *external
        wake-up* fires: the armed flag monitor sees the INV of the
        barrier-flag line.
        """
        self.stats.invalidations += 1
        self.hierarchies[node].invalidate(line)
        controller = self.controllers[node]
        if controller is not None:
            controller.notify_invalidation(line)

    def _fill(self, node, line, state):
        """Install a line; spawn write-backs for dirty victims."""
        for victim in self.hierarchies[node].fill(line, state):
            self.sim.spawn(
                self.writeback(node, victim),
                name="wb[{}]{:#x}".format(node, victim),
            )

    def watch_line(self, line, node):
        """A controller armed its first monitor for ``line``."""
        self._monitor_nodes.setdefault(line, set()).add(node)

    def unwatch_line(self, line, node):
        """A controller's last monitor for ``line`` went away."""
        nodes = self._monitor_nodes.get(line)
        if nodes is not None:
            nodes.discard(node)
            if not nodes:
                del self._monitor_nodes[line]

    def _fast_mode_notify(self, writer, line):
        """Fast mode: emulate the INV delivery that wakes flag monitors."""
        nodes = self._monitor_nodes.get(line)
        if not nodes:
            return
        # Ascending node order matches the legacy all-controller scan,
        # so notify callbacks land in the queue in the same order.
        for node in sorted(nodes):
            if node == writer:
                continue
            self.sim.schedule(
                FAST_MODE_NOTIFY_NS,
                self.controllers[node].notify_invalidation,
                line,
            )
