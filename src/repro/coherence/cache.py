"""Set-associative cache arrays with LRU replacement.

Caches here track *coherence state and timing* only; authoritative data
values live in the functional store of :class:`repro.coherence.protocol.
MemorySystem` (timing-first simulation, see DESIGN.md).
"""

import enum
from collections import OrderedDict

from repro.errors import ConfigError, ProtocolError


class LineState(enum.Enum):
    """Stable cache-line states (MSI; DASH needs no exclusive-clean)."""

    MODIFIED = "M"
    SHARED = "S"

    # Invalid lines are simply absent from the arrays.


class Cache:
    """One level of set-associative cache with per-set LRU."""

    def __init__(self, config, name="cache"):
        self.config = config
        self.name = name
        # set index -> OrderedDict(line_addr -> LineState), LRU first.
        self._sets = [OrderedDict() for _ in range(config.n_sets)]

    def _set_for(self, line_addr):
        return self._sets[line_addr % self.config.n_sets]

    def lookup(self, line_addr):
        """The line's state, or None when not present (invalid)."""
        return self._set_for(line_addr).get(line_addr)

    def touch(self, line_addr):
        """Refresh LRU position; raises if the line is absent."""
        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            raise ProtocolError(
                "{}: touch of absent line {:#x}".format(self.name, line_addr)
            )
        cache_set.move_to_end(line_addr)

    def insert(self, line_addr, state):
        """Install a line; returns the evicted ``(line, state)`` or None."""
        if not isinstance(state, LineState):
            raise ConfigError("state must be a LineState")
        cache_set = self._set_for(line_addr)
        evicted = None
        if line_addr not in cache_set and len(cache_set) >= self.config.ways:
            evicted = cache_set.popitem(last=False)  # LRU victim
        cache_set[line_addr] = state
        cache_set.move_to_end(line_addr)
        return evicted

    def set_state(self, line_addr, state):
        """Change the state of a resident line (e.g. M -> S downgrade)."""
        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            raise ProtocolError(
                "{}: state change of absent line {:#x}".format(
                    self.name, line_addr
                )
            )
        cache_set[line_addr] = state

    def invalidate(self, line_addr):
        """Drop a line; returns its former state or None if absent."""
        return self._set_for(line_addr).pop(line_addr, None)

    def resident_lines(self):
        """All ``(line, state)`` pairs currently cached."""
        for cache_set in self._sets:
            yield from cache_set.items()

    def dirty_lines(self):
        """Line addresses currently in MODIFIED state."""
        return [
            line
            for line, state in self.resident_lines()
            if state is LineState.MODIFIED
        ]

    def occupancy(self):
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets)

    def clear(self):
        """Drop every line (used after a deep-sleep flush)."""
        for cache_set in self._sets:
            cache_set.clear()


class CacheHierarchy:
    """The private L1+L2 pair of one node, kept inclusive.

    Coherence state is authoritative at the L2; the L1 holds a subset.
    ``lookup`` returns the access latency and state so the protocol
    engine can charge L1 hits 2 ns and L2 hits 12 ns (Table 1).
    """

    def __init__(self, machine_config, node_id):
        self.config = machine_config
        self.node_id = node_id
        self.l1 = Cache(machine_config.l1, name="L1[{}]".format(node_id))
        self.l2 = Cache(machine_config.l2, name="L2[{}]".format(node_id))

    def lookup(self, line_addr):
        """Returns ``(latency_ns, state)``; state None means full miss."""
        state = self.l1.lookup(line_addr)
        if state is not None:
            self.l1.touch(line_addr)
            self.l2.touch(line_addr)
            return self.config.l1.round_trip_ns, state
        state = self.l2.lookup(line_addr)
        if state is not None:
            self.l2.touch(line_addr)
            return (
                self.config.l1.round_trip_ns + self.config.l2.round_trip_ns,
                state,
            )
        return (
            self.config.l1.round_trip_ns + self.config.l2.round_trip_ns,
            None,
        )

    def state(self, line_addr):
        """The coherence state at the L2 (authoritative), or None."""
        return self.l2.lookup(line_addr)

    def fill(self, line_addr, state):
        """Install a line in both levels; returns dirty victims to write
        back as a list of line addresses."""
        dirty_victims = []
        evicted = self.l2.insert(line_addr, state)
        if evicted is not None:
            victim, victim_state = evicted
            # Inclusion: the L1 copy (if any) goes too.
            self.l1.invalidate(victim)
            if victim_state is LineState.MODIFIED:
                dirty_victims.append(victim)
        evicted = self.l1.insert(line_addr, state)
        if evicted is not None:
            victim, victim_state = evicted
            # L1 victims remain in the (inclusive) L2; keep the L2 state
            # authoritative, so nothing to write back here.
            if self.l2.lookup(victim) is None:
                raise ProtocolError(
                    "inclusion violated: L1 victim {:#x} absent from L2".format(
                        victim
                    )
                )
        return dirty_victims

    def set_state(self, line_addr, state):
        """Downgrade/upgrade a resident line in both levels."""
        self.l2.set_state(line_addr, state)
        if self.l1.lookup(line_addr) is not None:
            self.l1.set_state(line_addr, state)

    def invalidate(self, line_addr):
        """Drop a line from both levels; returns the L2 state it had."""
        self.l1.invalidate(line_addr)
        return self.l2.invalidate(line_addr)

    def dirty_lines(self):
        """Dirty (MODIFIED) lines, authoritative at the L2."""
        return self.l2.dirty_lines()

    def drop_all(self):
        """Invalidate everything (deep-sleep flush aftermath)."""
        self.l1.clear()
        self.l2.clear()
