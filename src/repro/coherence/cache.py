"""Set-associative cache arrays with LRU replacement.

Caches here track *coherence state and timing* only; authoritative data
values live in the functional store of :class:`repro.coherence.protocol.
MemorySystem` (timing-first simulation, see DESIGN.md).
"""

import enum
from collections import OrderedDict

from repro.errors import ConfigError, ProtocolError


class LineState(enum.Enum):
    """Stable cache-line states (MSI; DASH needs no exclusive-clean)."""

    MODIFIED = "M"
    SHARED = "S"

    # Invalid lines are simply absent from the arrays.


class Cache:
    """One level of set-associative cache with per-set LRU."""

    def __init__(self, config, name="cache"):
        self.config = config
        self.name = name
        self._n_sets = config.n_sets
        self._ways = config.ways
        # set index -> OrderedDict(line_addr -> LineState), LRU first.
        # Sets are allocated on first touch: a 256-node machine carries
        # hundreds of thousands of sets, and a typical cell touches a
        # few dozen of them, so eager allocation would dominate System
        # construction time (and memory) at campaign scale.
        self._sets = [None] * config.n_sets
        # set index -> number of MODIFIED lines; lets dirty_lines() scan
        # only the sets that actually hold dirty data instead of every
        # set in the array (the pre-sleep flush calls it constantly).
        self._dirty_counts = {}

    def _set_for(self, line_addr):
        index = line_addr % self._n_sets
        cache_set = self._sets[index]
        if cache_set is None:
            cache_set = self._sets[index] = OrderedDict()
        return cache_set

    def lookup(self, line_addr):
        """The line's state, or None when not present (invalid)."""
        return self._set_for(line_addr).get(line_addr)

    def touch(self, line_addr):
        """Refresh LRU position; raises if the line is absent."""
        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            raise ProtocolError(
                "{}: touch of absent line {:#x}".format(self.name, line_addr)
            )
        cache_set.move_to_end(line_addr)

    def _count_dirty(self, set_index, delta):
        counts = self._dirty_counts
        remaining = counts.get(set_index, 0) + delta
        if remaining:
            counts[set_index] = remaining
        else:
            counts.pop(set_index, None)

    def insert(self, line_addr, state):
        """Install a line; returns the evicted ``(line, state)`` or None."""
        if not isinstance(state, LineState):
            raise ConfigError("state must be a LineState")
        set_index = line_addr % self._n_sets
        cache_set = self._sets[set_index]
        if cache_set is None:
            cache_set = self._sets[set_index] = OrderedDict()
        evicted = None
        old_state = cache_set.get(line_addr)
        if old_state is None:
            # Fresh install: a new key lands at the MRU end already.
            if len(cache_set) >= self._ways:
                evicted = cache_set.popitem(last=False)  # LRU victim
                if evicted[1] is LineState.MODIFIED:
                    self._count_dirty(set_index, -1)
            cache_set[line_addr] = state
            if state is LineState.MODIFIED:
                self._count_dirty(set_index, 1)
            return evicted
        cache_set[line_addr] = state
        cache_set.move_to_end(line_addr)
        if state is not old_state:
            if state is LineState.MODIFIED:
                self._count_dirty(set_index, 1)
            elif old_state is LineState.MODIFIED:
                self._count_dirty(set_index, -1)
        return evicted

    def set_state(self, line_addr, state):
        """Change the state of a resident line (e.g. M -> S downgrade)."""
        set_index = line_addr % self._n_sets
        cache_set = self._sets[set_index]
        old_state = None if cache_set is None else cache_set.get(line_addr)
        if old_state is None:
            raise ProtocolError(
                "{}: state change of absent line {:#x}".format(
                    self.name, line_addr
                )
            )
        cache_set[line_addr] = state
        if state is not old_state:
            if state is LineState.MODIFIED:
                self._count_dirty(set_index, 1)
            elif old_state is LineState.MODIFIED:
                self._count_dirty(set_index, -1)

    def invalidate(self, line_addr):
        """Drop a line; returns its former state or None if absent."""
        set_index = line_addr % self._n_sets
        cache_set = self._sets[set_index]
        state = None if cache_set is None else cache_set.pop(line_addr, None)
        if state is LineState.MODIFIED:
            self._count_dirty(set_index, -1)
        return state

    def resident_lines(self):
        """All ``(line, state)`` pairs currently cached."""
        for cache_set in self._sets:
            if cache_set:
                yield from cache_set.items()

    def dirty_lines(self):
        """Line addresses currently in MODIFIED state.

        Order matches a full-array scan (set index ascending, LRU order
        within a set) — the pre-sleep flush writes lines back in this
        order, so it is part of the deterministic event sequence.
        """
        counts = self._dirty_counts
        if not counts:
            return []
        dirty = []
        for set_index in sorted(counts):
            for line, state in self._sets[set_index].items():
                if state is LineState.MODIFIED:
                    dirty.append(line)
        return dirty

    def occupancy(self):
        """Number of resident lines."""
        return sum(len(cache_set) for cache_set in self._sets if cache_set)

    def clear(self):
        """Drop every line (used after a deep-sleep flush)."""
        self._sets = [None] * self._n_sets
        self._dirty_counts.clear()


class CacheHierarchy:
    """The private L1+L2 pair of one node, kept inclusive.

    Coherence state is authoritative at the L2; the L1 holds a subset.
    ``lookup`` returns the access latency and state so the protocol
    engine can charge L1 hits 2 ns and L2 hits 12 ns (Table 1).
    """

    def __init__(self, machine_config, node_id):
        self.config = machine_config
        self.node_id = node_id
        self.l1 = Cache(machine_config.l1, name="L1[{}]".format(node_id))
        self.l2 = Cache(machine_config.l2, name="L2[{}]".format(node_id))
        self._l1_hit_ns = machine_config.l1.round_trip_ns
        self._l2_hit_ns = (
            machine_config.l1.round_trip_ns + machine_config.l2.round_trip_ns
        )

    def lookup(self, line_addr):
        """Returns ``(latency_ns, state)``; state None means full miss."""
        # Inlined hit path: one modulo + dict probe per level, with the
        # LRU refresh folded in (move_to_end on a present key cannot
        # raise, so the touch() membership re-check is skipped).
        l1_set = self.l1._set_for(line_addr)
        state = l1_set.get(line_addr)
        l2_set = self.l2._set_for(line_addr)
        if state is not None:
            l1_set.move_to_end(line_addr)
            l2_set.move_to_end(line_addr)
            return self._l1_hit_ns, state
        state = l2_set.get(line_addr)
        if state is not None:
            l2_set.move_to_end(line_addr)
        return self._l2_hit_ns, state

    def state(self, line_addr):
        """The coherence state at the L2 (authoritative), or None."""
        return self.l2.lookup(line_addr)

    def fill(self, line_addr, state):
        """Install a line in both levels; returns dirty victims to write
        back as a list of line addresses."""
        dirty_victims = []
        evicted = self.l2.insert(line_addr, state)
        if evicted is not None:
            victim, victim_state = evicted
            # Inclusion: the L1 copy (if any) goes too.
            self.l1.invalidate(victim)
            if victim_state is LineState.MODIFIED:
                dirty_victims.append(victim)
        evicted = self.l1.insert(line_addr, state)
        if evicted is not None:
            victim, victim_state = evicted
            # L1 victims remain in the (inclusive) L2; keep the L2 state
            # authoritative, so nothing to write back here.
            if self.l2.lookup(victim) is None:
                raise ProtocolError(
                    "inclusion violated: L1 victim {:#x} absent from L2".format(
                        victim
                    )
                )
        return dirty_victims

    def set_state(self, line_addr, state):
        """Downgrade/upgrade a resident line in both levels."""
        self.l2.set_state(line_addr, state)
        if self.l1.lookup(line_addr) is not None:
            self.l1.set_state(line_addr, state)

    def invalidate(self, line_addr):
        """Drop a line from both levels; returns the L2 state it had."""
        self.l1.invalidate(line_addr)
        return self.l2.invalidate(line_addr)

    def dirty_lines(self):
        """Dirty (MODIFIED) lines, authoritative at the L2."""
        return self.l2.dirty_lines()

    def drop_all(self):
        """Invalidate everything (deep-sleep flush aftermath)."""
        self.l1.clear()
        self.l2.clear()
