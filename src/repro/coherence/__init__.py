"""Directory-based cache coherence (DASH-style, Table 1).

The protocol is invalidation-based MESI-without-E (M/S/I) with a full
sharer vector per line at the home node, the classic DASH organization
the paper assumes. The pieces:

* :mod:`repro.coherence.cache` — set-associative L1/L2 arrays with LRU;
* :mod:`repro.coherence.directory` — per-home-node line states and the
  per-line serialization locks;
* :mod:`repro.coherence.protocol` — the transaction engine (loads,
  stores, atomics, write-backs) that moves simulated time;
* :mod:`repro.coherence.controller` — the on-chip cache controller,
  including the paper's thrifty extensions: the programmable barrier-flag
  monitor (external wake-up) and the countdown timer (internal wake-up).
"""

from repro.coherence.cache import Cache, CacheHierarchy, LineState
from repro.coherence.controller import CacheController
from repro.coherence.directory import Directory, DirState
from repro.coherence.protocol import MemorySystem

__all__ = [
    "Cache",
    "CacheController",
    "CacheHierarchy",
    "Directory",
    "DirState",
    "LineState",
    "MemorySystem",
]
