"""Per-home-node directory state and per-line serialization.

Each memory line has a home node (round-robin page interleaving,
Table 1). The home's directory records whether the line is uncached,
shared by a set of nodes, or exclusively owned, and serializes
conflicting transactions on the same line with a FIFO lock — the role
the DASH home plays with its pending/busy states.
"""

import enum
from collections import deque

from repro.errors import ProtocolError


class DirState(enum.Enum):
    UNCACHED = "uncached"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class DirectoryEntry:
    """Directory knowledge about one line."""

    __slots__ = ("state", "sharers", "owner")

    def __init__(self):
        self.state = DirState.UNCACHED
        self.sharers = set()
        self.owner = None

    def __repr__(self):
        if self.state is DirState.EXCLUSIVE:
            detail = "owner={}".format(self.owner)
        else:
            detail = "sharers={}".format(sorted(self.sharers))
        return "DirectoryEntry({}, {})".format(self.state.value, detail)


class LineLock:
    """FIFO mutual exclusion for transactions on one line."""

    def __init__(self, sim):
        self.sim = sim
        self._locked = False
        self._waiters = deque()
        # Reusable already-triggered event for the uncontended grant:
        # yielding a triggered event continues the process immediately,
        # so handing out the same one every time is indistinguishable
        # from allocating a fresh pre-succeeded event per acquire.
        self._granted = sim.event().succeed()

    @property
    def locked(self):
        return self._locked

    def acquire(self):
        """An event that succeeds once the lock is held by the caller."""
        if not self._locked:
            self._locked = True
            return self._granted
        event = self.sim.event()
        self._waiters.append(event)
        return event

    def release(self):
        if not self._locked:
            raise ProtocolError("release of unheld line lock")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Directory:
    """The directory slice held by one home node."""

    def __init__(self, sim, node_id):
        self.sim = sim
        self.node_id = node_id
        self._entries = {}
        self._locks = {}

    def entry(self, line_addr):
        try:
            return self._entries[line_addr]
        except KeyError:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
            return entry

    def lock(self, line_addr):
        try:
            return self._locks[line_addr]
        except KeyError:
            lock = LineLock(self.sim)
            self._locks[line_addr] = lock
            return lock

    # -- state transitions used by the protocol engine -------------------

    def grant_shared(self, line_addr, node):
        entry = self.entry(line_addr)
        if entry.state is DirState.EXCLUSIVE:
            raise ProtocolError(
                "shared grant while line {:#x} exclusive at {}".format(
                    line_addr, entry.owner
                )
            )
        entry.state = DirState.SHARED
        entry.sharers.add(node)
        entry.owner = None

    def grant_exclusive(self, line_addr, node):
        entry = self.entry(line_addr)
        if entry.sharers and entry.sharers != {node}:
            raise ProtocolError(
                "exclusive grant of {:#x} with live sharers {}".format(
                    line_addr, sorted(entry.sharers)
                )
            )
        entry.state = DirState.EXCLUSIVE
        entry.sharers = set()
        entry.owner = node

    def demote_owner(self, line_addr):
        """EXCLUSIVE -> SHARED {old owner} after a Fetch."""
        entry = self.entry(line_addr)
        if entry.state is not DirState.EXCLUSIVE:
            raise ProtocolError("demote of non-exclusive line")
        owner = entry.owner
        entry.state = DirState.SHARED
        entry.sharers = {owner}
        entry.owner = None
        return owner

    def drop_sharer(self, line_addr, node):
        entry = self.entry(line_addr)
        entry.sharers.discard(node)
        if not entry.sharers and entry.state is DirState.SHARED:
            entry.state = DirState.UNCACHED

    def release_exclusive(self, line_addr, node):
        """Owner wrote the line back (PutX)."""
        entry = self.entry(line_addr)
        if entry.state is not DirState.EXCLUSIVE or entry.owner != node:
            # A stale write-back that raced a later grant: ignore, the
            # line moved on. DASH handles this with a retry NAK; dropping
            # is equivalent here because data is functional.
            return False
        entry.state = DirState.UNCACHED
        entry.owner = None
        return True
