"""The on-chip cache controller, with the thrifty-barrier extensions.

The paper (Sections 3.3.1-3.3.2) adds two small pieces of logic to the
cache controller, which is *never* disabled even when the CPU and caches
sleep:

* a programmable **flag monitor**: given the barrier-flag address, it
  fires a wake-up signal when an invalidation for that line arrives
  (external wake-up);
* a **countdown timer** armed with the predicted stall time (internal
  wake-up).

Both feed the same wake-up signal; the first to trigger cancels the
other (the barrier code expresses that with an :class:`AnyOf` race and
explicit disarm calls). The controller also performs the dirty-data
flush required before entering a non-snooping sleep state, and it keeps
acknowledging invalidations while the CPU sleeps — to clean data only,
which the flush guarantees.
"""

from repro.errors import ProtocolError


class CacheController:
    """Per-node controller wired between the CPU and the memory system."""

    def __init__(self, sim, node_id, memsys):
        self.sim = sim
        self.node_id = node_id
        self.memsys = memsys
        self.hierarchy = memsys.hierarchies[node_id]
        self._monitors = {}  # line_addr -> list of callbacks
        self._snooping = True
        self.stats_monitor_fires = 0
        self.stats_flushed_lines = 0

    # -- coherence-side interface (called by the protocol engine) ---------

    def notify_invalidation(self, line_addr):
        """An INV for ``line_addr`` arrived; fire any armed monitors.

        Called by the protocol at the simulated arrival time of the
        invalidation. The line itself has already been dropped from the
        arrays. While the CPU sleeps in a non-snooping state this still
        runs — the controller acknowledges invalidations to clean data
        without touching the (gated) arrays.
        """
        callbacks = self._monitors.pop(line_addr, None)
        if not callbacks:
            return
        self.memsys.unwatch_line(line_addr, self.node_id)
        injector = self.sim.fault_injector
        if injector is not None:
            delay = injector.on_monitor_fire(self.node_id, line_addr)
            if delay:
                # Delayed or dropped-then-redelivered wake-up: the
                # monitors were already consumed, so the signal is late
                # but never lost (liveness is delayed, not broken).
                self.sim.schedule(
                    delay, self._deliver_wakeups, line_addr, callbacks
                )
                return
        self._deliver_wakeups(line_addr, callbacks)

    def _deliver_wakeups(self, line_addr, callbacks):
        """Fire a consumed monitor list (possibly after fault delay)."""
        self.stats_monitor_fires += len(callbacks)
        for callback in callbacks:
            callback(line_addr)

    # -- CPU-side interface (called by sleep/barrier code) ----------------

    def monitors_line(self, line_addr):
        """True when a flag monitor is armed for this line."""
        return line_addr in self._monitors

    def arm_flag_monitor(self, flag_addr, callback):
        """Watch the line holding ``flag_addr``; run ``callback(line)``
        when it is invalidated. Returns the line address (the disarm
        key)."""
        line_addr = self.memsys.line_of(flag_addr)
        callbacks = self._monitors.setdefault(line_addr, [])
        if not callbacks:
            self.memsys.watch_line(line_addr, self.node_id)
        callbacks.append(callback)
        return line_addr

    def disarm_flag_monitor(self, line_addr, callback):
        """Remove one armed callback; safe if it already fired."""
        callbacks = self._monitors.get(line_addr)
        if not callbacks:
            return
        try:
            callbacks.remove(callback)
        except ValueError:
            return
        if not callbacks:
            del self._monitors[line_addr]
            self.memsys.unwatch_line(line_addr, self.node_id)

    def arm_wake_timer(self, delay_ns, callback):
        """Arm the countdown timer; returns a cancellable handle."""
        if delay_ns < 0:
            raise ProtocolError("wake timer delay must be non-negative")
        injector = self.sim.fault_injector
        if injector is not None:
            delay_ns, lost = injector.on_wake_timer(self.node_id, delay_ns)
            if lost:
                # A lost timer never fires; hand back a pre-cancelled
                # handle so the caller's disarm path stays uniform. The
                # external wake-up (or residual spin) covers liveness.
                handle = self.sim.schedule(delay_ns, callback)
                handle.cancel()
                return handle
        return self.sim.schedule(delay_ns, callback)

    @property
    def snooping(self):
        return self._snooping

    def set_snooping(self, snooping):
        """Record whether the CPU's sleep state can service the caches.

        Entering a non-snooping state requires the dirty data to have
        been flushed first; :meth:`flush_dirty` enforces that ordering.
        """
        self._snooping = bool(snooping)

    def flush_dirty(self, extra_lines=0):
        """Write back all dirty lines before a non-snooping sleep.

        Lines explicitly tracked in the simulated arrays are written
        back through the real protocol; ``extra_lines`` models the
        workload's dirty footprint that the phase-level simulation does
        not track line-by-line (see DESIGN.md) and is charged the
        pipelined per-line bus cost.

        This is a generator (simulation subroutine); it returns the
        number of lines flushed, which the CPU model converts into the
        post-wake refill penalty.
        """
        config = self.memsys.config
        dirty = list(self.hierarchy.dirty_lines())
        if extra_lines < 0:
            raise ProtocolError("extra_lines must be non-negative")
        yield config.flush_base_ns
        for line in dirty:
            self.hierarchy.invalidate(line)
            yield from self.memsys.writeback(self.node_id, line)
        if extra_lines:
            yield extra_lines * config.flush_per_line_ns
        flushed = len(dirty) + extra_lines
        self.stats_flushed_lines += flushed
        return flushed
