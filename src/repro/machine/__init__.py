"""The modeled machine: CPUs, nodes, and the CC-NUMA system of Table 1.

* :mod:`repro.machine.power` — per-CPU power levels derived from the
  Wattch model and the TDPmax microbenchmark;
* :mod:`repro.machine.cpu` — the CPU's execution/sleep state machine and
  its energy ledger;
* :mod:`repro.machine.node` — one node: CPU + cache controller + caches;
* :mod:`repro.machine.system` — builds the whole machine and runs
  thread programs on it.
"""

from repro.machine.cpu import Cpu, SleepOutcome
from repro.machine.node import Node
from repro.machine.power import CpuPower
from repro.machine.system import System
from repro.machine.timeshare import CpuToken, make_tokens

__all__ = [
    "Cpu",
    "CpuPower",
    "CpuToken",
    "Node",
    "SleepOutcome",
    "System",
    "make_tokens",
]
