"""Per-CPU power levels (paper Section 4.3).

The Wattch model gives the power of active computation; the TDPmax
microbenchmark anchors the sleep-state residency powers (published as
ratios of TDPmax, Table 3); and the spinloop is charged the measured 85%
of regular computation.
"""

from dataclasses import dataclass

from repro.config import EnergyConfig
from repro.energy.tdp import calibrate_tdp_max
from repro.energy.wattch import ActivityProfile, WattchModel


@dataclass(frozen=True)
class CpuPower:
    """Power levels, in watts, shared by every CPU of the machine."""

    compute_watts: float
    spin_watts: float
    tdp_max_watts: float

    @classmethod
    def calibrate(cls, machine_config=None, energy_config=None):
        """Build from the Wattch model + TDP microbenchmark."""
        energy_config = energy_config or EnergyConfig()
        cpu_freq = (
            machine_config.cpu_freq_mhz if machine_config is not None else 1000
        )
        model = WattchModel(
            cpu_freq_mhz=cpu_freq,
            supply_voltage=energy_config.supply_voltage,
        )
        compute = model.power(ActivityProfile.typical())
        tdp = calibrate_tdp_max(model).tdp_max_watts
        return cls(
            compute_watts=compute,
            spin_watts=energy_config.spin_power_factor * compute,
            tdp_max_watts=tdp,
        )

    def sleep_watts(self, state):
        """Residency power of a sleep state (ratio of TDPmax)."""
        return state.residency_power(self.tdp_max_watts)
