"""The CPU execution/sleep state machine and its energy ledger.

A :class:`Cpu` exposes generator primitives that thread programs (and the
barrier implementations) compose:

* :meth:`Cpu.compute` — run for a duration at compute power;
* :meth:`Cpu.spin_until` / :meth:`Cpu.spin_for` — spin-wait at 85% of
  compute power (paper Section 4.3);
* :meth:`Cpu.sleep` — the full sleep sequence: optional dirty-data flush
  (for non-snooping states), transition in, residency until a wake event,
  transition out. Each piece lands in the right accounting category:
  flush time in Compute (Section 5.2), ramps in Transition, residency in
  Sleep.

Flushing a deep-sleep state invalidates the flushed lines, so the CPU
carries a *refill debt*: the next compute phase is lengthened by the
compulsory-miss penalty of re-fetching them.
"""

import operator
from dataclasses import dataclass

from repro.energy.accounting import Category, EnergyAccount
from repro.energy.states import ramp_energy
from repro.errors import SimulationError
from repro.telemetry.events import SleepEnter, SleepExit
from repro.telemetry.tracer import NULL_TRACER


@dataclass(slots=True)
class SleepOutcome:
    """What happened during one :meth:`Cpu.sleep` call."""

    state: object
    flushed_lines: int
    flush_ns: int
    resident_ns: int
    entered_at: int
    wake_completed_at: int

    @property
    def total_ns(self):
        return self.wake_completed_at - self.entered_at


class Cpu:
    """One processor of the machine."""

    def __init__(
        self, sim, node_id, power, refill_per_line_ns=100, telemetry=None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.power = power
        self.refill_per_line_ns = refill_per_line_ns
        self.telemetry = telemetry if telemetry is not None else NULL_TRACER
        self.account = EnergyAccount(telemetry=self.telemetry)
        # The spin-charge constants, pre-resolved: charge_spin runs for
        # every barrier-internal memory operation, so the account.add
        # bound method and the (static) spinloop wattage are looked up
        # once here instead of twice per charge.
        self._account_add = self.account.add
        self._spin_watts = power.spin_watts
        self._refill_debt_ns = 0
        self.sleep_outcomes = []

    # -- debts -------------------------------------------------------------

    @property
    def refill_debt_ns(self):
        """Pending compulsory-miss penalty from a deep-sleep flush."""
        return self._refill_debt_ns

    def add_refill_debt(self, lines):
        if lines < 0:
            raise SimulationError("refill debt lines must be non-negative")
        self._refill_debt_ns += lines * self.refill_per_line_ns

    # -- execution primitives (generators) ----------------------------------

    def compute(self, duration_ns):
        """Execute for ``duration_ns`` at compute power.

        Any outstanding refill debt is paid here — the re-fetches happen
        during the first post-wake computation and grow the Compute
        segment, as the paper observes for FMM/Water-Nsq/Ocean.
        """
        if duration_ns < 0:
            raise SimulationError("compute duration must be non-negative")
        duration_ns += self._refill_debt_ns
        self._refill_debt_ns = 0
        # operator.index keeps the legacy timeout() strictness: integer
        # array scalars pass, floats raise TypeError instead of truncating.
        yield operator.index(duration_ns)
        self.account.add(
            Category.COMPUTE, duration_ns, power_watts=self.power.compute_watts
        )

    def mem_op(self, transaction):
        """Run a memory-system transaction, charging its time as Compute.

        The paper files non-barrier stalls (memory, locks) under Compute;
        this wrapper times an arbitrary protocol generator and does the
        same. Returns the transaction's value.
        """
        return self.mem_op_as(Category.COMPUTE, transaction)

    def mem_op_as(self, category, transaction):
        """Run a memory transaction, charging its time to ``category``.

        Barrier-internal operations (check-in, flag reads) are part of
        barrier time and are charged to Spin; ordinary program accesses
        go to Compute. Spin-category time is charged at spinloop power.
        """
        watts = (
            self.power.spin_watts
            if category is Category.SPIN
            else self.power.compute_watts
        )
        started = self.sim._now
        value = yield from transaction
        self.account.add(
            category, self.sim._now - started, power_watts=watts
        )
        return value

    def charge_spin(self, duration_ns):
        """Charge an elapsed span to Spin at spinloop power.

        The inline form of :meth:`mem_op_as` for the barrier hot path:
        callers time the transaction themselves (``started = sim.now``
        … ``yield from txn`` … ``charge_spin(sim.now - started)``),
        avoiding the extra generator frame the wrapper would put under
        every resume of the transaction.
        """
        self._account_add(
            Category.SPIN, duration_ns, power_watts=self._spin_watts
        )

    def spin_until(self, event):
        """Spin-wait on ``event`` at spinloop power; returns spin time."""
        started = self.sim._now
        yield event
        spun = self.sim._now - started
        self._account_add(
            Category.SPIN, spun, power_watts=self._spin_watts
        )
        return spun

    def spin_for(self, duration_ns):
        """Spin for a fixed duration (used by oracle accounting paths)."""
        if duration_ns < 0:
            raise SimulationError("spin duration must be non-negative")
        yield operator.index(duration_ns)
        self.account.add(
            Category.SPIN, duration_ns, power_watts=self.power.spin_watts
        )
        return duration_ns

    def sleep(self, state, wake_event, controller=None, flush_lines=0):
        """The full sleep sequence; returns a :class:`SleepOutcome`.

        Parameters
        ----------
        state:
            The :class:`~repro.config.SleepStateConfig` to enter.
        wake_event:
            Event ending the residency (typically an ``AnyOf`` of the
            internal timer and the external flag-invalidation).
        controller:
            The node's cache controller; required when ``state`` cannot
            snoop, to flush dirty data first.
        flush_lines:
            Extra dirty footprint (workload-model lines) to flush.
        """
        entered_at = self.sim._now
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(SleepEnter(
                ts=entered_at, thread=self.node_id, state=state.name,
                flush_lines=flush_lines,
            ))
        flushed = 0
        flush_ns = 0
        if not state.snoops:
            if controller is None:
                raise SimulationError(
                    "non-snooping state {} requires a cache controller "
                    "to flush".format(state.name)
                )
            flush_started = self.sim._now
            flushed = yield from controller.flush_dirty(
                extra_lines=flush_lines
            )
            flush_ns = self.sim._now - flush_started
            # Flush overhead is computation-side work (Section 5.2).
            self.account.add(
                Category.COMPUTE, flush_ns,
                power_watts=self.power.compute_watts,
            )
            self.add_refill_debt(flushed)
            controller.set_snooping(False)
        sleep_watts = self.power.sleep_watts(state)
        injector = self.sim.fault_injector
        enter_ns = state.transition_latency_ns
        if injector is not None:
            # Fault seams: a spurious wake-up may be scheduled against
            # this sleep, and the voltage ramps may jitter longer than
            # the nominal Table 3 latency.
            injector.on_sleep_entry(self.node_id, wake_event)
            enter_ns += injector.on_transition(self.node_id, state.name)
        # Transition in: linear ramp from compute power to sleep power.
        yield enter_ns
        self.account.add(
            Category.TRANSITION,
            enter_ns,
            energy_joules=ramp_energy(
                self.power.compute_watts, sleep_watts, enter_ns,
            ),
        )
        # Residency: wait for the wake signal (may already have fired).
        resident_started = self.sim._now
        yield wake_event
        resident_ns = self.sim._now - resident_started
        self.account.add(
            Category.SLEEP, resident_ns, power_watts=sleep_watts
        )
        exit_ns = state.transition_latency_ns
        if injector is not None:
            exit_ns += injector.on_transition(self.node_id, state.name)
        # Transition out: ramp back up.
        yield exit_ns
        self.account.add(
            Category.TRANSITION,
            exit_ns,
            energy_joules=ramp_energy(
                sleep_watts, self.power.compute_watts, exit_ns,
            ),
        )
        if not state.snoops and controller is not None:
            controller.set_snooping(True)
        outcome = SleepOutcome(
            state=state,
            flushed_lines=flushed,
            flush_ns=flush_ns,
            resident_ns=resident_ns,
            entered_at=entered_at,
            wake_completed_at=self.sim._now,
        )
        self.sleep_outcomes.append(outcome)
        if telemetry.enabled:
            telemetry.emit(SleepExit(
                ts=self.sim._now, thread=self.node_id, state=state.name,
                entered_ts=entered_at, resident_ns=resident_ns,
                flush_ns=flush_ns, flushed_lines=flushed,
            ))
        return outcome
