"""Assembly of the full machine and the thread-program runner."""

from repro.coherence.protocol import MemorySystem
from repro.config import EnergyConfig, MachineConfig
from repro.energy.accounting import EnergyAccount
from repro.errors import ConfigError, SimulationError
from repro.machine.node import Node
from repro.machine.power import CpuPower
from repro.sim import Simulator
from repro.telemetry.tracer import NULL_TRACER


#: Shared-address region used by synchronization structures; kept well
#: away from workload data.
SHARED_BASE = 1 << 40


class System:
    """The 64-node CC-NUMA multiprocessor of Table 1 (size configurable).

    Example
    -------
    >>> system = System(MachineConfig(n_nodes=4))
    >>> def program(node):
    ...     yield from node.cpu.compute(1_000)
    >>> system.run_threads(program)
    >>> system.execution_time_ns
    1000
    """

    def __init__(
        self, config=None, energy_config=None, power=None, telemetry=None,
    ):
        self.config = config or MachineConfig()
        self.energy_config = energy_config or EnergyConfig()
        self.sim = Simulator()
        self.power = power or CpuPower.calibrate(
            self.config, self.energy_config
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TRACER
        self.memsys = MemorySystem(self.sim, self.config)
        self.nodes = [
            Node(
                self.sim, node_id, self.memsys, self.power,
                telemetry=self.telemetry,
            )
            for node_id in range(self.config.n_nodes)
        ]
        self._shared_cursor = SHARED_BASE
        self._threads = []

    @property
    def n_nodes(self):
        return self.config.n_nodes

    def alloc_shared(self, count=1, stride=None):
        """Allocate ``count`` shared addresses, one cache line apart.

        Synchronization variables get a full line each to avoid false
        sharing, exactly as tuned barrier libraries lay them out.
        """
        stride = stride or self.config.line_bytes
        addrs = [
            self._shared_cursor + index * stride for index in range(count)
        ]
        self._shared_cursor += count * stride
        if count == 1:
            return addrs[0]
        return addrs

    def spawn_thread(self, node_id, generator, name=None):
        """Start a thread program (a generator) pinned to a node."""
        process = self.sim.spawn(
            generator, name=name or "thread[{}]".format(node_id)
        )
        self._threads.append(process)
        return process

    def run_threads(self, program, n_threads=None):
        """Run ``program(node)`` on the first ``n_threads`` nodes to
        completion (one thread per CPU, the paper's dedicated mode)."""
        n_threads = n_threads or self.n_nodes
        if n_threads > self.n_nodes:
            raise ConfigError(
                "{} threads exceed {} nodes".format(n_threads, self.n_nodes)
            )
        for node in self.nodes[:n_threads]:
            self.spawn_thread(node.node_id, program(node))
        self.run()

    def run(self, until=None):
        """Drive the simulation; raises if any thread died on an error."""
        self.sim.run(until=until)
        for process in self._threads:
            if process.triggered and not process.ok:
                raise SimulationError(
                    "thread {} failed: {!r}".format(
                        process.name, process.exception
                    )
                ) from process.exception

    @property
    def execution_time_ns(self):
        """Wall-clock of the parallel section so far."""
        return self.sim.now

    def total_account(self):
        """System-wide energy account (sum over CPUs)."""
        total = EnergyAccount()
        for node in self.nodes:
            total.merge(node.cpu.account)
        return total

    def cpu_accounts(self):
        """Per-CPU accounts, indexed by node."""
        return [node.cpu.account for node in self.nodes]
