"""One node of the CC-NUMA machine: CPU + cache controller + caches.

The node also provides the address-space helpers the workload layer
uses: shared addresses are page-interleaved across homes (Table 1),
private addresses are allocated on pages whose home is the node itself.
"""

from repro.coherence.controller import CacheController
from repro.machine.cpu import Cpu


class Node:
    """A processor node, wired into the shared memory system."""

    def __init__(self, sim, node_id, memsys, power, telemetry=None):
        self.sim = sim
        self.node_id = node_id
        self.memsys = memsys
        self.controller = CacheController(sim, node_id, memsys)
        memsys.controllers[node_id] = self.controller
        self.cpu = Cpu(
            sim, node_id, power,
            refill_per_line_ns=memsys.config.refill_per_line_ns,
            telemetry=telemetry,
        )

    # -- memory operations, charged as compute time ------------------------

    def load(self, addr):
        """Timed load; the stall is charged to Compute (paper Sec. 5.2)."""
        return self.cpu.mem_op(self.memsys.load(self.node_id, addr))

    def store(self, addr, value):
        """Timed store, charged to Compute."""
        return self.cpu.mem_op(self.memsys.store(self.node_id, addr, value))

    def rmw(self, addr, update):
        """Timed atomic read-modify-write, charged to Compute."""
        return self.cpu.mem_op(self.memsys.rmw(self.node_id, addr, update))

    def private_addr(self, offset):
        """An address on a page homed at this node (private data)."""
        config = self.memsys.config
        pages_per_round = config.n_nodes
        page_index = (
            self.node_id + pages_per_round * (offset // config.page_bytes)
        )
        return page_index * config.page_bytes + offset % config.page_bytes

    def __repr__(self):
        return "Node({})".format(self.node_id)
