"""Time-sharing support (paper Section 3.4.1).

In an over-threaded application (more threads than CPUs) or a
multiprogrammed system, a thread that reaches a synchronization point
may *yield* its CPU to another runnable thread instead of spinning.
The paper discusses this as an alternative way to avoid spin waste —
one that risks performance, because when the barrier is finally
released some threads may not have a CPU to resume on.

:class:`CpuToken` models the scheduler's per-CPU run permission: a FIFO
queue with a context-switch cost on every hand-off to a different
thread. A thread must hold its node's token while computing; releasing
it at a barrier lets a co-scheduled sibling run.
"""

from collections import deque

from repro.energy.accounting import Category
from repro.errors import SimulationError

#: OS context-switch cost (register/TLB state, scheduler work).
DEFAULT_CONTEXT_SWITCH_NS = 5_000


class CpuToken:
    """FIFO run permission for one CPU shared by several threads."""

    def __init__(self, node, context_switch_ns=DEFAULT_CONTEXT_SWITCH_NS):
        if context_switch_ns < 0:
            raise SimulationError("context switch cost must be >= 0")
        self.node = node
        self.sim = node.sim
        self.context_switch_ns = context_switch_ns
        self._owner = None
        self._last_owner = None
        self._waiters = deque()
        self.stats_switches = 0
        self.stats_handoffs = 0

    @property
    def owner(self):
        return self._owner

    def acquire(self, thread_id):
        """Hold the CPU; pays a context switch when ownership moves to a
        different thread than the one that ran last. Generator."""
        if self._owner == thread_id:
            return
        if self._owner is not None or self._waiters:
            ticket = self.sim.event()
            self._waiters.append((thread_id, ticket))
            yield ticket
            # Ownership was assigned by release(); fall through.
        else:
            self._owner = thread_id
        if self._owner != thread_id:
            raise SimulationError("token handoff corrupted")
        if self._last_owner is not None and self._last_owner != thread_id:
            self.stats_switches += 1
            yield self.context_switch_ns
            self.node.cpu.account.add(
                Category.COMPUTE,
                self.context_switch_ns,
                power_watts=self.node.cpu.power.compute_watts,
            )
        self._last_owner = thread_id

    def release(self, thread_id):
        """Give the CPU up (at a barrier or on completion)."""
        if self._owner != thread_id:
            raise SimulationError(
                "thread {} released a token owned by {}".format(
                    thread_id, self._owner
                )
            )
        if self._waiters:
            next_thread, ticket = self._waiters.popleft()
            self._owner = next_thread
            self.stats_handoffs += 1
            ticket.succeed()
        else:
            self._owner = None


def make_tokens(system, threads_per_cpu, context_switch_ns=None):
    """Tokens for an over-threaded run: thread ``t`` runs on node
    ``t % n_nodes``. Returns ``(tokens_by_thread, nodes_by_thread)``."""
    if threads_per_cpu < 1:
        raise SimulationError("threads_per_cpu must be >= 1")
    kwargs = {}
    if context_switch_ns is not None:
        kwargs["context_switch_ns"] = context_switch_ns
    per_node = [CpuToken(node, **kwargs) for node in system.nodes]
    n_threads = threads_per_cpu * system.n_nodes
    tokens = {t: per_node[t % system.n_nodes] for t in range(n_threads)}
    nodes = {t: system.nodes[t % system.n_nodes] for t in range(n_threads)}
    return tokens, nodes
