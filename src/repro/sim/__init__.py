"""Discrete-event simulation kernel.

A tiny, deterministic, generator-based process simulator in the style of
SimPy, specialized for this project:

* simulated time is **integer nanoseconds** (1 cycle at the nominal 1 GHz
  clock of the modeled machine equals 1 ns);
* events fire in (time, insertion-order) order, so runs are reproducible;
* processes are plain generators that ``yield`` :class:`Event` objects
  (most commonly :class:`Timeout`), and compose with ``yield from``.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello(sim, log):
...     yield sim.timeout(5)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.spawn(hello(sim, log))
>>> sim.run()
>>> log
[5]
"""

from repro.sim.core import Handle, Simulator
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Handle",
    "Process",
    "Simulator",
    "Timeout",
]
