"""Generator-based simulation processes.

A process is a generator that yields :class:`~repro.sim.events.Event`
objects — or, as a fast path for the overwhelmingly common "just wait"
case, a plain non-negative ``int`` meaning "resume after this many
nanoseconds". The process suspends until the yielded event triggers (or
the delay elapses); the event's value is sent back into the generator
(``None`` for integer delays, matching a value-less ``Timeout``).
Subroutines compose with ``yield from`` and their return value flows
back to the caller (CPython 3.11+ resumes a delegation chain with cheap
C-level frame hops, so nesting depth costs little — an explicit
generator-stack trampoline was tried and measured *slower* than
``yield from`` here).

The integer form is semantically identical to ``yield sim.timeout(n)``
but skips the Timeout/Handle allocation and the succeed→dispatch→wake
callback chain: the scheduler queues the process's resume method
directly. Use the :class:`~repro.sim.events.Timeout` object form only
when the timeout must be cancellable or raced in a combinator
(``AnyOf``/``AllOf``).

A :class:`Process` is itself an event: it succeeds with the generator's
return value, so processes can wait on each other (``yield other_process``).

The pinned resume callbacks are also what the model checker permutes:
when two processes are due at the same timestamp, their queued resume
methods share a calendar-queue bucket, and ``repro check`` treats that
bucket as a choice point (see :meth:`Simulator._run_choice`). The
:attr:`Process.name` attribute is how a candidate is labelled in
witness output — ``repro.check.tiebreak.describe_entry`` renders a
bound resume method as ``resume:<name>`` — so give long-lived
processes stable, meaningful names.
"""

from heapq import heappush

from repro.errors import ProcessError
from repro.sim.events import _PENDING, Event


class Process(Event):
    """Drives a generator to completion over simulated time."""

    __slots__ = ("generator", "name", "_resume_cb", "_wake_cb")

    def __init__(self, sim, generator, name=None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise ProcessError(
                "spawn() requires a generator, got {!r}".format(generator)
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bound methods are allocated on every attribute access; the
        # resume/wake callbacks are re-queued once per yield, so pin one
        # instance of each for the process's lifetime.
        self._resume_cb = self._resume
        self._wake_cb = self._wake
        # Start on the next scheduling round at the current time so that
        # spawning is side-effect free at the call site.
        sim._schedule_fast(0, self._resume_cb)

    def _resume(self, value, exception):
        # The loop (rather than recursion through the event-callback
        # machinery) is the hot path: yielding an already-triggered
        # event — an uncontended lock, a zero-latency local message —
        # continues the generator immediately, exactly as the legacy
        # add_callback-on-triggered dispatch did, without growing the
        # Python stack.
        generator = self.generator
        while True:
            try:
                if exception is not None:
                    target = generator.throw(exception)
                    exception = None
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate into event
                self.fail(exc)
                return
            if target.__class__ is int and target >= 0:
                # Inlined Simulator._schedule_fast — this is the single
                # hottest statement in the simulator.
                sim = self.sim
                time = sim._now + target
                buckets = sim._buckets
                bucket = buckets.get(time)
                if bucket is None:
                    buckets[time] = self._resume_cb
                    heappush(sim._times, time)
                elif bucket.__class__ is list:
                    bucket.append(self._resume_cb)
                else:
                    buckets[time] = [bucket, self._resume_cb]
                return
            if not isinstance(target, Event):
                error = ProcessError(
                    "process {!r} yielded {!r}; processes must yield Event "
                    "instances or non-negative int delays".format(
                        self.name, target
                    )
                )
                # Deliver the error into the generator so it can clean
                # up, then record the failure on the process event.
                try:
                    generator.throw(error)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:  # noqa: BLE001
                    self.fail(exc)
                    return
                self.fail(error)
                return
            exception = target._exception
            if exception is not None:
                value = None
                continue
            value = target._value
            if value is _PENDING:
                target._callbacks.append(self._wake_cb)
                return

    def _wake(self, event):
        # Direct slot reads: the event is triggered by contract (only
        # triggered events run their callbacks), so the property
        # guards of .value/.exception are dead weight here.
        exception = event._exception
        if exception is not None:
            self._resume(None, exception)
        else:
            self._resume(event._value, None)

    def __repr__(self):
        return "Process({!r}, {})".format(
            self.name, "done" if self.triggered else "running"
        )
