"""Generator-based simulation processes.

A process is a generator that yields :class:`~repro.sim.events.Event`
objects. The process suspends until the yielded event triggers; the event's
value is sent back into the generator. Subroutines compose with
``yield from`` and their return value flows back to the caller.

A :class:`Process` is itself an event: it succeeds with the generator's
return value, so processes can wait on each other (``yield other_process``).
"""

from repro.errors import ProcessError
from repro.sim.events import Event


class Process(Event):
    """Drives a generator to completion over simulated time."""

    def __init__(self, sim, generator, name=None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise ProcessError(
                "spawn() requires a generator, got {!r}".format(generator)
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Start on the next scheduling round at the current time so that
        # spawning is side-effect free at the call site.
        sim.schedule(0, self._resume, None, None)

    def _resume(self, value, exception):
        try:
            if exception is not None:
                target = self.generator.throw(exception)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = ProcessError(
                "process {!r} yielded {!r}; processes must yield Event "
                "instances".format(self.name, target)
            )
            # Deliver the error into the generator so it can clean up,
            # then record the failure on the process event.
            try:
                self.generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001
                self.fail(exc)
                return
            self.fail(error)
            return
        target.add_callback(self._wake)

    def _wake(self, event):
        if event.exception is not None:
            self._resume(None, event.exception)
        else:
            self._resume(event.value, None)

    def __repr__(self):
        return "Process({!r}, {})".format(
            self.name, "done" if self.triggered else "running"
        )
