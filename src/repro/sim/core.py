"""The event loop at the heart of the simulator.

The :class:`Simulator` owns a priority queue of ``(time, sequence)``-ordered
callbacks. Everything else in the package — coherence transactions, CPU
sleep transitions, barrier releases — is expressed as callbacks or as
generator processes resumed by callbacks.
"""

import heapq
import inspect
import itertools
import operator

from repro.errors import SchedulingError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process


class Handle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "armed"
        return "Handle(t={}, seq={}, {})".format(self.time, self.seq, state)


def _trace_accepts_cancelled(trace):
    """True when a trace hook can take the ``cancelled`` keyword."""
    try:
        signature = inspect.signature(trace)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if (
            parameter.name == "cancelled"
            and parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ):
            return True
    return False


class Simulator:
    """A deterministic discrete-event simulator with integer time.

    Parameters
    ----------
    trace:
        Optional debug hook observing every scheduled callback as it is
        *dequeued*. The contract:

        * For a callback that is about to execute, the hook is invoked
          as ``trace(now, fn, args)`` immediately before ``fn(*args)``
          runs, with the clock already advanced to the callback's time.
        * For a callback whose :class:`Handle` was cancelled, the
          dequeue is also reported — as ``trace(time, fn, args,
          cancelled=True)`` — but **only** when the hook's signature
          accepts a ``cancelled`` keyword (otherwise cancelled skips
          are silently dropped, preserving the legacy three-argument
          hook behaviour). Without this, cancelled callbacks vanish
          invisibly, which makes wake-race debugging misleading: the
          loser of a hybrid wake-up race looks like it never existed.
        * The clock is **not** advanced for a cancelled skip, and the
          hook may observe the same cancelled handle only once.

        Hooks that want both streams simply declare
        ``def hook(now, fn, args, cancelled=False)``.

    Counters
    --------
    :attr:`executed` and :attr:`skipped_cancelled` count dequeued
    callbacks over the simulator's lifetime; the telemetry layer
    harvests them after a run.
    """

    def __init__(self, trace=None):
        self._queue = []
        self._seq = itertools.count()
        self._now = 0
        self._trace = trace
        self._trace_cancelled = (
            trace is not None and _trace_accepts_cancelled(trace)
        )
        self._running = False
        self.executed = 0
        self.skipped_cancelled = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`. The
        #: instrumented seams (wake timers, monitor deliveries, sleep
        #: transitions) consult it with one ``is None`` check; when no
        #: plan is installed they behave exactly as before.
        self.fault_injector = None

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def pending(self):
        """Number of scheduled (non-cancelled) callbacks still queued."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` ns; returns a :class:`Handle`."""
        delay = operator.index(delay)
        if delay < 0:
            raise SchedulingError("cannot schedule in the past: {}".format(delay))
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute time ``time``."""
        time = operator.index(time)
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at {} before now {}".format(time, self._now)
            )
        handle = Handle(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    def event(self):
        """Create a fresh, untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator, name=None):
        """Start a generator process; returns its :class:`Process` event."""
        return Process(self, generator, name=name)

    def _skip_cancelled(self, handle):
        """Account (and optionally report) one cancelled dequeue."""
        self.skipped_cancelled += 1
        if self._trace_cancelled:
            self._trace(handle.time, handle.fn, handle.args, cancelled=True)

    def step(self):
        """Run the single earliest callback; returns False if queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self._skip_cancelled(handle)
                continue
            self._now = handle.time
            if self._trace is not None:
                self._trace(self._now, handle.fn, handle.args)
            handle.fn(*handle.args)
            self.executed += 1
            return True
        return False

    def run(self, until=None, max_events=None):
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next callback would run strictly after this time
            (the clock is advanced to ``until`` in that case).
        max_events:
            Safety valve for tests: raise :class:`SchedulingError` if more
            than this many callbacks execute.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    self._skip_cancelled(heapq.heappop(self._queue))
                    continue
                if until is not None and head.time > until:
                    self._now = max(self._now, operator.index(until))
                    return
                if not self.step():
                    break
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SchedulingError(
                        "exceeded max_events={}".format(max_events)
                    )
            if until is not None:
                self._now = max(self._now, operator.index(until))
        finally:
            self._running = False
