"""The event loop at the heart of the simulator.

The :class:`Simulator` owns a priority queue of ``(time, sequence)``-ordered
callbacks. Everything else in the package — coherence transactions, CPU
sleep transitions, barrier releases — is expressed as callbacks or as
generator processes resumed by callbacks.
"""

import heapq
import itertools
import operator

from repro.errors import SchedulingError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process


class Handle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "armed"
        return "Handle(t={}, seq={}, {})".format(self.time, self.seq, state)


class Simulator:
    """A deterministic discrete-event simulator with integer time.

    Parameters
    ----------
    trace:
        Optional callable invoked as ``trace(now, fn, args)`` before each
        callback runs; useful for debugging schedules in tests.
    """

    def __init__(self, trace=None):
        self._queue = []
        self._seq = itertools.count()
        self._now = 0
        self._trace = trace
        self._running = False

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def pending(self):
        """Number of scheduled (non-cancelled) callbacks still queued."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` ns; returns a :class:`Handle`."""
        delay = operator.index(delay)
        if delay < 0:
            raise SchedulingError("cannot schedule in the past: {}".format(delay))
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute time ``time``."""
        time = operator.index(time)
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at {} before now {}".format(time, self._now)
            )
        handle = Handle(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, handle)
        return handle

    def event(self):
        """Create a fresh, untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator, name=None):
        """Start a generator process; returns its :class:`Process` event."""
        return Process(self, generator, name=name)

    def step(self):
        """Run the single earliest callback; returns False if queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = handle.time
            if self._trace is not None:
                self._trace(self._now, handle.fn, handle.args)
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next callback would run strictly after this time
            (the clock is advanced to ``until`` in that case).
        max_events:
            Safety valve for tests: raise :class:`SchedulingError` if more
            than this many callbacks execute.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = max(self._now, operator.index(until))
                    return
                if not self.step():
                    break
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SchedulingError(
                        "exceeded max_events={}".format(max_events)
                    )
            if until is not None:
                self._now = max(self._now, operator.index(until))
        finally:
            self._running = False
