"""The event loop at the heart of the simulator.

The :class:`Simulator` owns a **bucketed calendar queue**: callbacks are
grouped into per-timestamp buckets (a dict keyed by absolute time), and
a small heap orders only the *distinct* timestamps. Within a bucket,
plain list order is execution order — the global schedule-call order the
legacy single-heap scheduler encoded with ``(time, seq)`` tuples — so
tie-breaking and cancellation semantics are exactly those of the old
heap, at a fraction of the cost: the common case (another callback at an
already-known timestamp, which barrier simultaneity makes the dominant
pattern) is one dict probe and one list append instead of an O(log n)
sift, and dequeue is an index increment instead of a heap pop.

Two kinds of entry live in a bucket:

* a :class:`Handle` — the cancellable record returned by
  :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`;
* a bare resume callable — the non-cancellable fast lane used by
  :class:`~repro.sim.process.Process` for plain integer-delay yields
  (``yield 40``), invoked as ``entry(None, None)``. These cannot be
  cancelled, so the dispatch loop skips every cancellation check for
  them.

A bucket holding a single entry is stored as the entry itself rather
than a one-element list (most timestamps only ever receive one
callback); it is promoted to a list on the second insertion at the same
time. Entries are Handles or callables, never lists, so
``bucket.__class__ is list`` distinguishes the representations.

Everything else in the package — coherence transactions, CPU sleep
transitions, barrier releases — is expressed as callbacks or as
generator processes resumed by callbacks.
"""

import heapq
import inspect
import operator

from repro.errors import SchedulingError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process

#: The argument tuple fast-lane resumes are invoked with (and reported
#: to trace hooks with): ``resume(None, None)`` means "no value, no
#: exception" — the contract of ``Process._resume``.
_FAST_ARGS = (None, None)


class Handle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time, fn, args):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    def __repr__(self):
        state = "cancelled" if self.cancelled else "armed"
        return "Handle(t={}, {})".format(self.time, state)


def _trace_accepts_cancelled(trace):
    """True when a trace hook can take the ``cancelled`` keyword."""
    try:
        signature = inspect.signature(trace)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if (
            parameter.name == "cancelled"
            and parameter.kind in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ):
            return True
    return False


class Simulator:
    """A deterministic discrete-event simulator with integer time.

    Parameters
    ----------
    trace:
        Optional debug hook observing every scheduled callback as it is
        *dequeued*. The contract:

        * For a callback that is about to execute, the hook is invoked
          as ``trace(now, fn, args)`` immediately before ``fn(*args)``
          runs, with the clock already advanced to the callback's time.
          For a fast-lane process resume, ``fn`` is the process's bound
          resume method and ``args`` is ``(None, None)``.
        * For a callback whose :class:`Handle` was cancelled, the
          dequeue is also reported — as ``trace(time, fn, args,
          cancelled=True)`` — but **only** when the hook's signature
          accepts a ``cancelled`` keyword (otherwise cancelled skips
          are silently dropped, preserving the legacy three-argument
          hook behaviour). Without this, cancelled callbacks vanish
          invisibly, which makes wake-race debugging misleading: the
          loser of a hybrid wake-up race looks like it never existed.
        * The clock is **not** advanced for a cancelled skip, and the
          hook may observe the same cancelled handle only once.

        Hooks that want both streams simply declare
        ``def hook(now, fn, args, cancelled=False)``.

    Counters
    --------
    :attr:`executed` and :attr:`skipped_cancelled` count dequeued
    callbacks over the simulator's lifetime; the telemetry layer
    harvests them after a run. Fast-lane resumes count as executed
    callbacks exactly like :class:`Handle` callbacks (they occupy one
    dequeue each), so the counters are invariant under the
    Timeout-object vs. integer-yield encoding of a delay.
    """

    def __init__(self, trace=None):
        # time -> list of entries (Handles and fast-lane resumes) in
        # schedule order; the heap orders the distinct times only.
        self._buckets = {}
        self._times = []
        # Consumption cursor into the earliest bucket, so a partially
        # drained bucket survives step()/run() interleaving and
        # exceptions raised by callbacks.
        self._head_time = None
        self._head_index = 0
        self._now = 0
        self._trace = trace
        self._trace_cancelled = (
            trace is not None and _trace_accepts_cancelled(trace)
        )
        self._running = False
        self.executed = 0
        self.skipped_cancelled = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`. The
        #: instrumented seams (wake timers, monitor deliveries, sleep
        #: transitions) consult it with one ``is None`` check; when no
        #: plan is installed they behave exactly as before.
        self.fault_injector = None
        #: Optional tie-break strategy (see :mod:`repro.check.tiebreak`)
        #: consulted whenever a bucket holds two or more live entries:
        #: ``tie_breaker.choose(time, candidates)`` returns the index of
        #: the entry to dispatch next. ``None`` (the default) keeps the
        #: legacy FIFO ``(time, seq)`` order through the unchanged fast
        #: lanes — bit-for-bit, as the golden-trace corpus requires. The
        #: flag is checked once per :meth:`run` call, never per event.
        self.tie_breaker = None

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def pending(self):
        """Number of scheduled (non-cancelled) callbacks still queued."""
        count = 0
        for time, bucket in self._buckets.items():
            if bucket.__class__ is not list:
                if bucket.__class__ is not Handle or not bucket.cancelled:
                    count += 1
                continue
            start = self._head_index if time == self._head_time else 0
            for entry in bucket[start:]:
                if entry.__class__ is not Handle or not entry.cancelled:
                    count += 1
        return count

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` ns; returns a :class:`Handle`."""
        delay = operator.index(delay)
        if delay < 0:
            raise SchedulingError("cannot schedule in the past: {}".format(delay))
        return self._insert(self._now + delay, Handle(self._now + delay, fn, args))

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute time ``time``."""
        time = operator.index(time)
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at {} before now {}".format(time, self._now)
            )
        return self._insert(time, Handle(time, fn, args))

    def _insert(self, time, entry):
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = entry
            heapq.heappush(self._times, time)
        elif bucket.__class__ is list:
            bucket.append(entry)
        else:
            buckets[time] = [bucket, entry]
        return entry

    def _schedule_fast(self, delay, resume):
        """Fast lane for process resumes: non-cancellable, no Handle.

        ``delay`` must be a validated non-negative int; ``resume`` is
        invoked as ``resume(None, None)`` at the deadline. Consumes one
        dequeue slot in exactly the position a ``schedule()`` call here
        would, so fast-lane and Handle scheduling interleave with
        identical ordering.
        """
        time = self._now + delay
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = resume
            heapq.heappush(self._times, time)
        elif bucket.__class__ is list:
            bucket.append(resume)
        else:
            buckets[time] = [bucket, resume]

    def event(self):
        """Create a fresh, untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator, name=None):
        """Start a generator process; returns its :class:`Process` event."""
        return Process(self, generator, name=name)

    def _skip_cancelled(self, handle):
        """Account (and optionally report) one cancelled dequeue."""
        self.skipped_cancelled += 1
        if self._trace_cancelled:
            self._trace(handle.time, handle.fn, handle.args, cancelled=True)

    def _open_bucket(self):
        """Cursor into the earliest bucket: ``(time, bucket, index)``."""
        time = self._times[0]
        if time != self._head_time:
            self._head_time = time
            self._head_index = 0
        return time, self._buckets[time], self._head_index

    def _close_bucket(self, time):
        """Drop an exhausted bucket and its heap entry."""
        del self._buckets[time]
        heapq.heappop(self._times)
        self._head_time = None
        self._head_index = 0

    def step(self):
        """Run the single earliest callback; returns False if queue is empty."""
        while self._times:
            time = self._times[0]
            bucket = self._buckets[time]
            if bucket.__class__ is not list:
                # Singleton bucket: consume it before executing, exactly
                # as a heap pop would.
                del self._buckets[time]
                heapq.heappop(self._times)
                if bucket.__class__ is Handle:
                    if bucket.cancelled:
                        self._skip_cancelled(bucket)
                        continue
                    self._now = time
                    if self._trace is not None:
                        self._trace(time, bucket.fn, bucket.args)
                    bucket.fn(*bucket.args)
                else:
                    self._now = time
                    if self._trace is not None:
                        self._trace(time, bucket, _FAST_ARGS)
                    bucket(None, None)
                self.executed += 1
                return True
            time, bucket, i = self._open_bucket()
            while i < len(bucket):
                entry = bucket[i]
                i += 1
                self._head_index = i
                if entry.__class__ is Handle:
                    if entry.cancelled:
                        self._skip_cancelled(entry)
                        continue
                    self._now = time
                    if self._trace is not None:
                        self._trace(time, entry.fn, entry.args)
                    entry.fn(*entry.args)
                else:
                    self._now = time
                    if self._trace is not None:
                        self._trace(time, entry, _FAST_ARGS)
                    entry(None, None)
                self.executed += 1
                return True
            self._close_bucket(time)
        return False

    def run(self, until=None, max_events=None):
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next callback would run strictly after this time
            (the clock is advanced to ``until`` in that case).
        max_events:
            Safety valve for tests: raise :class:`SchedulingError` if more
            than this many callbacks execute.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly")
        if until is not None:
            until = operator.index(until)
        if self.tie_breaker is not None:
            return self._run_choice(until, max_events)
        self._running = True
        executed = 0
        # Local aliases keep the dispatch loop free of repeated
        # attribute loads; the trace check below costs one local-load
        # branch per callback on the tracer-disabled path. Bucket
        # open/close is inlined (vs the step() helpers) for the same
        # reason — nearly every callback sits in its own bucket.
        buckets = self._buckets
        times = self._times
        trace = self._trace
        trace_cancelled = self._trace_cancelled
        pop_time = heapq.heappop
        try:
            if trace is None and max_events is None and until is None:
                # Hottest lane: full drain (no tracing, no budget, no
                # horizon) — the campaign runner's main loop. Same
                # dispatch as below with every per-callback check gone.
                while times:
                    time = times[0]
                    bucket = buckets[time]
                    if bucket.__class__ is not list:
                        del buckets[time]
                        pop_time(times)
                        if bucket.__class__ is Handle:
                            if bucket.cancelled:
                                self.skipped_cancelled += 1
                                continue
                            self._now = time
                            bucket.fn(*bucket.args)
                        else:
                            self._now = time
                            bucket(None, None)
                        executed += 1
                        continue
                    if time != self._head_time:
                        self._head_time = time
                        self._head_index = 0
                    i = self._head_index
                    while i < len(bucket):
                        entry = bucket[i]
                        i += 1
                        self._head_index = i
                        if entry.__class__ is Handle:
                            if entry.cancelled:
                                self.skipped_cancelled += 1
                                continue
                            self._now = time
                            entry.fn(*entry.args)
                        else:
                            self._now = time
                            entry(None, None)
                        executed += 1
                    del buckets[time]
                    pop_time(times)
                    self._head_time = None
                    self._head_index = 0
                return
            if trace is None and max_events is None:
                # Production fast lane (no tracing, no event budget):
                # the same dispatch with the per-callback trace and
                # budget checks removed. Kept in lockstep with the
                # general loop below.
                while times:
                    time = times[0]
                    bucket = buckets[time]
                    if bucket.__class__ is not list:
                        if until is not None and time > until:
                            if (
                                bucket.__class__ is Handle
                                and bucket.cancelled
                            ):
                                del buckets[time]
                                pop_time(times)
                                self.skipped_cancelled += 1
                                continue
                            if until > self._now:
                                self._now = until
                            return
                        del buckets[time]
                        pop_time(times)
                        if bucket.__class__ is Handle:
                            if bucket.cancelled:
                                self.skipped_cancelled += 1
                                continue
                            self._now = time
                            bucket.fn(*bucket.args)
                        else:
                            self._now = time
                            bucket(None, None)
                        executed += 1
                        continue
                    if time != self._head_time:
                        self._head_time = time
                        self._head_index = 0
                    i = self._head_index
                    if until is not None and time > until:
                        if not self._drain_cancelled_head(time, bucket, i):
                            continue
                        if until > self._now:
                            self._now = until
                        return
                    while i < len(bucket):
                        entry = bucket[i]
                        i += 1
                        self._head_index = i
                        if entry.__class__ is Handle:
                            if entry.cancelled:
                                self.skipped_cancelled += 1
                                continue
                            self._now = time
                            entry.fn(*entry.args)
                        else:
                            self._now = time
                            entry(None, None)
                        executed += 1
                    del buckets[time]
                    pop_time(times)
                    self._head_time = None
                    self._head_index = 0
                if until is not None and until > self._now:
                    self._now = until
                return
            while times:
                time = times[0]
                bucket = buckets[time]
                if bucket.__class__ is not list:
                    # Singleton bucket — the overwhelmingly common case.
                    if until is not None and time > until:
                        if bucket.__class__ is Handle and bucket.cancelled:
                            del buckets[time]
                            pop_time(times)
                            self.skipped_cancelled += 1
                            if trace_cancelled:
                                trace(
                                    time, bucket.fn, bucket.args,
                                    cancelled=True,
                                )
                            continue
                        if until > self._now:
                            self._now = until
                        return
                    del buckets[time]
                    pop_time(times)
                    if bucket.__class__ is Handle:
                        if bucket.cancelled:
                            self.skipped_cancelled += 1
                            if trace_cancelled:
                                trace(
                                    time, bucket.fn, bucket.args,
                                    cancelled=True,
                                )
                            continue
                        self._now = time
                        if trace is not None:
                            trace(time, bucket.fn, bucket.args)
                        bucket.fn(*bucket.args)
                    else:
                        self._now = time
                        if trace is not None:
                            trace(time, bucket, _FAST_ARGS)
                        bucket(None, None)
                    executed += 1
                    if max_events is not None and executed > max_events:
                        raise SchedulingError(
                            "exceeded max_events={}".format(max_events)
                        )
                    continue
                if time != self._head_time:
                    self._head_time = time
                    self._head_index = 0
                i = self._head_index
                if until is not None and time > until:
                    if not self._drain_cancelled_head(time, bucket, i):
                        continue
                    if until > self._now:
                        self._now = until
                    return
                while i < len(bucket):
                    entry = bucket[i]
                    i += 1
                    self._head_index = i
                    if entry.__class__ is Handle:
                        if entry.cancelled:
                            self.skipped_cancelled += 1
                            if trace_cancelled:
                                trace(
                                    time, entry.fn, entry.args,
                                    cancelled=True,
                                )
                            continue
                        self._now = time
                        if trace is not None:
                            trace(time, entry.fn, entry.args)
                        entry.fn(*entry.args)
                    else:
                        self._now = time
                        if trace is not None:
                            trace(time, entry, _FAST_ARGS)
                        entry(None, None)
                    executed += 1
                    if max_events is not None and executed > max_events:
                        raise SchedulingError(
                            "exceeded max_events={}".format(max_events)
                        )
                del buckets[time]
                pop_time(times)
                self._head_time = None
                self._head_index = 0
            if until is not None and until > self._now:
                self._now = until
        finally:
            self.executed += executed
            self._running = False

    def _run_choice(self, until, max_events):
        """Dispatch loop for choice mode (:attr:`tie_breaker` installed).

        Semantically equivalent to the default lanes — driven by the
        FIFO strategy it reproduces the legacy ``(time, seq)`` order
        exactly (``tests/test_scheduler_properties.py`` holds it to
        that) — but every bucket holding two or more live entries asks
        the installed strategy which one dispatches next. Only
        same-timestamp ties are permutable: choosing never moves an
        event in time, so every explored schedule is a legal ordering
        of the same event set. Same-timestamp children scheduled by the
        executing callback land in the open bucket and join the next
        round's candidate set.

        Cancelled entries are filtered (and counted, and reported to a
        cancelled-aware trace hook) eagerly each time the bucket is
        inspected. Cancellation is one-way, so this is observationally
        equivalent to the default lanes' dequeue-time accounting: the
        final counters match; only the interleaving of skip accounting
        with execution differs mid-bucket.
        """
        if self._running:
            raise SchedulingError("run() called re-entrantly")
        self._running = True
        chooser = self.tie_breaker
        buckets = self._buckets
        times = self._times
        trace = self._trace
        trace_cancelled = self._trace_cancelled
        executed = 0
        try:
            while times:
                time = times[0]
                bucket = buckets[time]
                if bucket.__class__ is not list:
                    # Promote singletons: children scheduled at this
                    # time while the entry runs must join the bucket.
                    bucket = [bucket]
                    buckets[time] = bucket
                if time != self._head_time:
                    self._head_time = time
                    self._head_index = 0
                if self._head_index:
                    # Entries before the cursor were already consumed
                    # by the default lanes (mode switched mid-bucket).
                    del bucket[: self._head_index]
                    self._head_index = 0
                # Filter cancelled entries, preserving schedule order
                # among the survivors (the candidate list the strategy
                # sees is indexed in legacy FIFO order).
                live = 0
                for entry in bucket:
                    if entry.__class__ is Handle and entry.cancelled:
                        self.skipped_cancelled += 1
                        if trace_cancelled:
                            trace(
                                time, entry.fn, entry.args,
                                cancelled=True,
                            )
                    else:
                        bucket[live] = entry
                        live += 1
                del bucket[live:]
                if not live:
                    del buckets[time]
                    heapq.heappop(times)
                    self._head_time = None
                    continue
                if until is not None and time > until:
                    if until > self._now:
                        self._now = until
                    return
                if live == 1:
                    choice = 0
                else:
                    choice = chooser.choose(time, tuple(bucket))
                    if not 0 <= choice < live:
                        raise SchedulingError(
                            "tie breaker chose index {} of {} "
                            "candidates at t={}".format(choice, live, time)
                        )
                entry = bucket.pop(choice)
                self._now = time
                if entry.__class__ is Handle:
                    if trace is not None:
                        trace(time, entry.fn, entry.args)
                    entry.fn(*entry.args)
                else:
                    if trace is not None:
                        trace(time, entry, _FAST_ARGS)
                    entry(None, None)
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SchedulingError(
                        "exceeded max_events={}".format(max_events)
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self.executed += executed
            self._running = False

    def _drain_cancelled_head(self, time, bucket, i):
        """Consume cancelled entries at the head of a beyond-horizon bucket.

        The legacy heap dequeued (and counted) cancelled callbacks even
        past ``until`` as long as they were at the head; this preserves
        that accounting. Returns True when a live callback was reached
        (the caller must stop), False when the bucket was exhausted.
        """
        while i < len(bucket):
            entry = bucket[i]
            if entry.__class__ is not Handle or not entry.cancelled:
                return True
            i += 1
            self._head_index = i
            self._skip_cancelled(entry)
        self._close_bucket(time)
        return False
