"""Awaitable events for simulation processes.

An :class:`Event` is a one-shot trigger with callbacks. Processes wait on
events by yielding them; hardware-style logic (cache controllers, timers)
uses :meth:`Event.add_callback` directly.
"""

from repro.errors import SchedulingError

_PENDING = object()


class Event:
    """A one-shot event that can succeed with a value or fail with an error.

    Callbacks added before the trigger run (in order) at the simulated time
    of the trigger; callbacks added after run immediately.
    """

    __slots__ = ("sim", "_value", "_exception", "_callbacks")

    def __init__(self, sim):
        self.sim = sim
        self._value = _PENDING
        self._exception = None
        self._callbacks = []

    @property
    def triggered(self):
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self):
        """True if the event succeeded (False while pending or failed)."""
        return self._value is not _PENDING

    @property
    def value(self):
        """The success value; raises if the event is pending or failed."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SchedulingError("event value read before trigger")
        return self._value

    @property
    def exception(self):
        """The failure exception, or None."""
        return self._exception

    def succeed(self, value=None):
        """Trigger the event successfully, running callbacks now."""
        if self._value is not _PENDING or self._exception is not None:
            raise SchedulingError("event triggered twice")
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for fn in callbacks:
                fn(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception, running callbacks now."""
        if self.triggered:
            raise SchedulingError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SchedulingError("fail() requires an exception instance")
        self._exception = exception
        self._dispatch()
        return self

    def add_callback(self, fn):
        """Run ``fn(event)`` when the event triggers (immediately if it has)."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _dispatch(self):
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self):
        state = "pending"
        if self._exception is not None:
            state = "failed"
        elif self._value is not _PENDING:
            state = "ok"
        return "{}({})".format(type(self).__name__, state)


class Timeout(Event):
    """An event that succeeds automatically after a fixed delay."""

    __slots__ = ("delay", "_handle")

    def __init__(self, sim, delay, value=None):
        super().__init__(sim)
        self.delay = delay
        self._handle = sim.schedule(delay, self._expire, value)

    def _expire(self, value):
        if not self.triggered:
            self.succeed(value)

    def cancel(self):
        """Prevent the timeout from firing (no effect once triggered)."""
        self._handle.cancel()


class AnyOf(Event):
    """Succeeds when the first of several events triggers.

    The value is the triggering event itself, so the waiter can tell which
    branch won — e.g. internal-timer wake-up vs. external invalidation.
    A failed child fails the composite.
    """

    __slots__ = ("events",)

    def __init__(self, sim, events):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SchedulingError("AnyOf requires at least one event")
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event):
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed(event)


class AllOf(Event):
    """Succeeds when every child event has triggered.

    The value is the list of child values in construction order. The first
    child failure fails the composite immediately.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim, events):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event):
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])
