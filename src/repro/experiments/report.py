"""Plain-text rendering of tables and figures.

Every artifact of the evaluation prints as an aligned text table, the
form the benchmark harness emits next to pytest-benchmark's timing
output.
"""

from repro.experiments.configs import CONFIG_NAMES, CONFIG_SHORT
from repro.experiments.metrics import SEGMENTS, headline_summary


def render_table(headers, rows, title=None):
    """Align ``rows`` (sequences of stringifiable cells) under headers."""
    table = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in table))
        if table
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in table:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_table1(rows, validation):
    body = render_table(
        ("Parameter", "Value"), rows,
        title="Table 1: architecture modeled",
    )
    probes = render_table(
        ("Probe", "Measured"),
        [
            ("L1 round trip", "{} ns".format(validation.l1_round_trip_ns)),
            ("L2 round trip", "{} ns".format(validation.l2_round_trip_ns)),
            ("Memory access", "{} ns".format(validation.memory_access_ns)),
            ("Network 1 hop", "{} ns".format(validation.network_one_hop_ns)),
            (
                "Network diameter",
                "{} ns".format(validation.network_diameter_ns),
            ),
        ],
        title="Measured validation probes",
    )
    return body + "\n\n" + probes


def render_table2(rows):
    formatted = [
        (app, size, "{:.2f}%".format(paper), "{:.2f}%".format(measured))
        for app, size, paper, measured in rows
    ]
    return render_table(
        ("Application", "Problem Size", "Paper", "Measured"),
        formatted,
        title="Table 2: barrier imbalance (Baseline, 64 threads)",
    )


def render_table3(rows, tdp):
    formatted = [
        (
            name,
            "{:.1f}%".format(savings),
            "{:.0f} us".format(latency_us),
            snoop,
            voltage,
            "{:.2f} W".format(watts),
        )
        for name, savings, latency_us, snoop, voltage, watts in rows
    ]
    body = render_table(
        ("State", "P. Savings", "Tr. Latency", "Snoop?", "V. Reduction?",
         "Residency"),
        formatted,
        title="Table 3: low-power sleep states (TDPmax = {:.1f} W)".format(
            tdp
        ),
    )
    return body


def render_figure3(rows):
    formatted = [
        (
            "i+{}".format(row.iteration - rows[0].iteration),
            row.barrier_index,
            "{:.2f}".format(row.bit_norm),
            "{:.2f}".format(row.compute_norm),
            "{:.2f}".format(row.bst_norm),
        )
        for row in rows
    ]
    return render_table(
        ("Iteration", "Barrier", "BIT", "Compute", "BST"),
        formatted,
        title=(
            "Figure 3: FMM main-loop barriers, normalized to mean BIT "
            "(thread view)"
        ),
    )


def _render_results_figure(rows, title, include_wall=False):
    headers = ["App", "Cfg", "Total"] + [s.capitalize() for s in SEGMENTS]
    if include_wall:
        headers.insert(3, "Wall")
    order = {name: i for i, name in enumerate(CONFIG_NAMES)}
    formatted = []
    for row in sorted(
        rows, key=lambda r: (r["app"], order.get(r["config"], 99))
    ):
        cells = [
            row["app"],
            CONFIG_SHORT.get(row["config"], row["config"]),
            "{:.1f}".format(row["total"]),
        ]
        if include_wall:
            cells.append("{:.1f}".format(row.get("wall", row["total"])))
        cells += ["{:.1f}".format(row[s]) for s in SEGMENTS]
        formatted.append(cells)
    return render_table(headers, formatted, title=title)


def render_figure5(rows):
    return _render_results_figure(
        rows,
        "Figure 5: normalized energy (%) — B/H/O/T/I per application",
    )


def render_figure6(rows):
    return _render_results_figure(
        rows,
        "Figure 6: normalized execution time (%) — B/H/O/T/I per "
        "application",
        include_wall=True,
    )


def render_bar_chart(rows, value_key="total", width=40, label_keys=("app", "config")):
    """ASCII bars for figure rows, the paper's stacked plots in text.

    ``rows`` are the dicts from :func:`repro.experiments.figures.
    figure5_rows` / ``figure6_rows``; one bar per row, scaled so that
    100% spans ``width`` characters.
    """
    lines = []
    order = {name: i for i, name in enumerate(CONFIG_NAMES)}
    scale = max(100.0, max((row[value_key] for row in rows), default=100.0))
    for row in sorted(
        rows, key=lambda r: (r["app"], order.get(r["config"], 99))
    ):
        label = " ".join(
            CONFIG_SHORT.get(str(row[k]), str(row[k])) for k in label_keys
        )
        value = row[value_key]
        filled = int(round(width * value / scale))
        lines.append(
            "{:16s} |{:{width}s}| {:5.1f}".format(
                label, "#" * filled, value, width=width
            )
        )
    return "\n".join(lines)


def render_headline(matrix):
    summary = headline_summary(matrix)
    rows = []
    for config, entry in summary.items():
        rows.append(
            (
                config,
                "{:.1f}%".format(100 * entry.get("target_energy_savings", 0)),
                "{:.1f}%".format(100 * entry.get("target_slowdown", 0)),
                "{:.1f}%".format(100 * entry.get("loo_energy_savings", 0)),
                "{:.1f}%".format(100 * entry.get("loo_slowdown", 0)),
            )
        )
    return render_table(
        ("Config", "Savings(target)", "Slowdown(target)",
         "Savings(-volrend)", "Slowdown(-volrend)"),
        rows,
        title="Section 5.1 headline aggregates over the target apps",
    )
