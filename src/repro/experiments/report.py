"""Plain-text rendering of tables and figures.

Every artifact of the evaluation prints as an aligned text table, the
form the benchmark harness emits next to pytest-benchmark's timing
output.
"""

from repro.experiments.configs import CONFIG_NAMES, CONFIG_SHORT
from repro.experiments.metrics import SEGMENTS, headline_summary


def render_table(headers, rows, title=None):
    """Align ``rows`` (sequences of stringifiable cells) under headers."""
    table = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in table))
        if table
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in table:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_table1(rows, validation):
    body = render_table(
        ("Parameter", "Value"), rows,
        title="Table 1: architecture modeled",
    )
    probes = render_table(
        ("Probe", "Measured"),
        [
            ("L1 round trip", "{} ns".format(validation.l1_round_trip_ns)),
            ("L2 round trip", "{} ns".format(validation.l2_round_trip_ns)),
            ("Memory access", "{} ns".format(validation.memory_access_ns)),
            ("Network 1 hop", "{} ns".format(validation.network_one_hop_ns)),
            (
                "Network diameter",
                "{} ns".format(validation.network_diameter_ns),
            ),
        ],
        title="Measured validation probes",
    )
    return body + "\n\n" + probes


def render_table2(rows):
    formatted = [
        (app, size, "{:.2f}%".format(paper), "{:.2f}%".format(measured))
        for app, size, paper, measured in rows
    ]
    return render_table(
        ("Application", "Problem Size", "Paper", "Measured"),
        formatted,
        title="Table 2: barrier imbalance (Baseline, 64 threads)",
    )


def render_table3(rows, tdp):
    formatted = [
        (
            name,
            "{:.1f}%".format(savings),
            "{:.0f} us".format(latency_us),
            snoop,
            voltage,
            "{:.2f} W".format(watts),
        )
        for name, savings, latency_us, snoop, voltage, watts in rows
    ]
    body = render_table(
        ("State", "P. Savings", "Tr. Latency", "Snoop?", "V. Reduction?",
         "Residency"),
        formatted,
        title="Table 3: low-power sleep states (TDPmax = {:.1f} W)".format(
            tdp
        ),
    )
    return body


def render_figure3(rows):
    formatted = [
        (
            "i+{}".format(row.iteration - rows[0].iteration),
            row.barrier_index,
            "{:.2f}".format(row.bit_norm),
            "{:.2f}".format(row.compute_norm),
            "{:.2f}".format(row.bst_norm),
        )
        for row in rows
    ]
    return render_table(
        ("Iteration", "Barrier", "BIT", "Compute", "BST"),
        formatted,
        title=(
            "Figure 3: FMM main-loop barriers, normalized to mean BIT "
            "(thread view)"
        ),
    )


def _render_results_figure(rows, title, include_wall=False):
    headers = ["App", "Cfg", "Total"] + [s.capitalize() for s in SEGMENTS]
    if include_wall:
        headers.insert(3, "Wall")
    order = {name: i for i, name in enumerate(CONFIG_NAMES)}
    formatted = []
    for row in sorted(
        rows, key=lambda r: (r["app"], order.get(r["config"], 99))
    ):
        cells = [
            row["app"],
            CONFIG_SHORT.get(row["config"], row["config"]),
            "{:.1f}".format(row["total"]),
        ]
        if include_wall:
            cells.append("{:.1f}".format(row.get("wall", row["total"])))
        cells += ["{:.1f}".format(row[s]) for s in SEGMENTS]
        formatted.append(cells)
    return render_table(headers, formatted, title=title)


def render_figure5(rows):
    return _render_results_figure(
        rows,
        "Figure 5: normalized energy (%) — B/H/O/T/I per application",
    )


def render_figure6(rows):
    return _render_results_figure(
        rows,
        "Figure 6: normalized execution time (%) — B/H/O/T/I per "
        "application",
        include_wall=True,
    )


def render_bar_chart(rows, value_key="total", width=40, label_keys=("app", "config")):
    """ASCII bars for figure rows, the paper's stacked plots in text.

    ``rows`` are the dicts from :func:`repro.experiments.figures.
    figure5_rows` / ``figure6_rows``; one bar per row, scaled so that
    100% spans ``width`` characters.
    """
    lines = []
    order = {name: i for i, name in enumerate(CONFIG_NAMES)}
    scale = max(100.0, max((row[value_key] for row in rows), default=100.0))
    for row in sorted(
        rows, key=lambda r: (r["app"], order.get(r["config"], 99))
    ):
        label = " ".join(
            CONFIG_SHORT.get(str(row[k]), str(row[k])) for k in label_keys
        )
        value = row[value_key]
        filled = int(round(width * value / scale))
        lines.append(
            "{:16s} |{:{width}s}| {:5.1f}".format(
                label, "#" * filled, value, width=width
            )
        )
    return "\n".join(lines)


def render_metrics(snapshot, title="Telemetry metrics", prefixes=None):
    """Render a metrics snapshot (or registry) as aligned tables.

    ``prefixes`` optionally restricts the output to metric names
    starting with any of the given strings (e.g. ``("cache.",
    "engine.")`` for the CLI run summary).
    """
    from repro.telemetry.metrics import MetricsRegistry

    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()

    def keep(name):
        return prefixes is None or any(
            name.startswith(prefix) for prefix in prefixes
        )

    sections = []
    counter_rows = [
        (name, value)
        for name, value in snapshot.get("counters", {}).items()
        if keep(name)
    ]
    gauge_rows = [
        (name, value)
        for name, value in snapshot.get("gauges", {}).items()
        if keep(name)
    ]
    scalar_rows = [
        (name, _format_metric_value(value))
        for name, value in sorted(counter_rows + gauge_rows)
    ]
    if scalar_rows:
        sections.append(render_table(
            ("Metric", "Value"), scalar_rows, title=title,
        ))
    histogram_rows = []
    registry = MetricsRegistry.from_snapshot(snapshot)
    for name, body in snapshot.get("histograms", {}).items():
        if not keep(name):
            continue
        histogram = registry.histogram(name, bounds=tuple(body["bounds"]))
        histogram_rows.append((
            name,
            body["count"],
            _format_metric_value(histogram.mean()),
            _format_metric_value(histogram.quantile(0.5)),
            _format_metric_value(histogram.quantile(0.95)),
            _format_metric_value(body["max"] if body["count"] else 0),
        ))
    if histogram_rows:
        sections.append(render_table(
            ("Histogram", "Count", "Mean", "~p50", "~p95", "Max"),
            histogram_rows,
            title=None if scalar_rows else title,
        ))
    if not sections:
        return "{}\n(no metrics recorded)".format(title)
    return "\n\n".join(sections)


def _format_metric_value(value):
    if isinstance(value, float) and not value.is_integer():
        return "{:.4g}".format(value)
    return "{:,}".format(int(value))


def render_trace_summary(events):
    """Human-readable digest of a telemetry event stream.

    One table of event counts by kind, one per-barrier table (dynamic
    instances, mean measured BIT, sleeps, wake-source mix) — the
    ``repro trace`` CLI surface.
    """
    from repro.telemetry.events import (
        BarrierCheckIn,
        BarrierRelease,
        SleepExit,
        WakeUp,
    )

    kinds = {}
    per_pc = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if isinstance(event, BarrierRelease):
            entry = per_pc.setdefault(
                event.pc, {"instances": 0, "bit_sum": 0, "sleeps": 0,
                           "timer": 0, "invalidation": 0},
            )
            entry["instances"] += 1
            entry["bit_sum"] += event.bit_ns or 0
        elif isinstance(event, WakeUp):
            entry = per_pc.setdefault(
                event.pc, {"instances": 0, "bit_sum": 0, "sleeps": 0,
                           "timer": 0, "invalidation": 0},
            )
            entry["sleeps"] += 1
            if event.source in entry:
                entry[event.source] += 1
    threads = {
        event.thread for event in events
        if isinstance(event, (BarrierCheckIn, SleepExit))
    }
    kind_table = render_table(
        ("Event", "Count"),
        [(kind, "{:,}".format(kinds[kind])) for kind in sorted(kinds)],
        title="Trace digest: {:,} events, {} threads".format(
            len(events), len(threads)
        ),
    )
    if not per_pc:
        return kind_table
    barrier_rows = []
    for pc in sorted(per_pc):
        entry = per_pc[pc]
        mean_bit = (
            entry["bit_sum"] / entry["instances"] if entry["instances"]
            else 0
        )
        barrier_rows.append((
            pc,
            entry["instances"],
            "{:,.0f}".format(mean_bit),
            entry["sleeps"],
            entry["timer"],
            entry["invalidation"],
        ))
    barrier_table = render_table(
        ("Barrier", "Instances", "Mean BIT (ns)", "Sleeps",
         "Timer wakes", "INV wakes"),
        barrier_rows,
    )
    return kind_table + "\n\n" + barrier_table


def render_headline(matrix):
    summary = headline_summary(matrix)
    rows = []
    for config, entry in summary.items():
        rows.append(
            (
                config,
                "{:.1f}%".format(100 * entry.get("target_energy_savings", 0)),
                "{:.1f}%".format(100 * entry.get("target_slowdown", 0)),
                "{:.1f}%".format(100 * entry.get("loo_energy_savings", 0)),
                "{:.1f}%".format(100 * entry.get("loo_slowdown", 0)),
            )
        )
    return render_table(
        ("Config", "Savings(target)", "Slowdown(target)",
         "Savings(-volrend)", "Slowdown(-volrend)"),
        rows,
        title="Section 5.1 headline aggregates over the target apps",
    )
