"""Run (application x configuration) experiment cells.

The unit of work is :func:`run_experiment`; :func:`run_app` produces all
five configurations for one application (sharing one Baseline run for
the two derived oracles); :func:`run_matrix` sweeps applications —
everything Figures 5 and 6 need.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import MachineConfig
from repro.energy.accounting import EnergyAccount
from repro.errors import ConfigError
from repro.experiments.configs import (
    CONFIG_NAMES,
    DERIVED_CONFIGS,
    LIVE_CONFIGS,
    ORACLE_STATES,
    barrier_factory_for,
)
from repro.machine import System
from repro.sync import ThriftyBarrier, oracle_rerun
from repro.telemetry.tracer import (
    TelemetrySnapshot,
    Tracer,
    collect_run_metrics,
)
from repro.workloads import WorkloadRunner, get_model

DEFAULT_SEED = 1


@dataclass
class ExperimentResult:
    """One (application, configuration) measurement.

    ``telemetry`` is populated only when the cell was run with tracing
    requested: the full typed event stream and the metrics snapshot of
    the simulation that produced this result (for the derived oracle
    configurations, of the Baseline simulation they replay).
    """

    app: str
    config: str
    n_threads: int
    execution_time_ns: int
    total: EnergyAccount
    barrier_imbalance: float
    thrifty_stats: dict = field(default_factory=dict)
    oracle_meta: Optional[dict] = None
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def energy_joules(self):
        return self.total.energy_joules()

    def energy_breakdown(self):
        return self.total.energy_breakdown()

    def time_breakdown(self):
        return self.total.time_breakdown()

    def identical(self, other):
        """Field-for-field equality, including energy/time breakdowns,
        thrifty stats, and oracle metadata (the determinism contract
        between serial, parallel, and cached execution)."""
        return (
            isinstance(other, ExperimentResult)
            and self.app == other.app
            and self.config == other.config
            and self.n_threads == other.n_threads
            and self.execution_time_ns == other.execution_time_ns
            and self.barrier_imbalance == other.barrier_imbalance
            and self.energy_breakdown() == other.energy_breakdown()
            and self.time_breakdown() == other.time_breakdown()
            and self.thrifty_stats == other.thrifty_stats
            and self.oracle_meta == other.oracle_meta
            and self.telemetry == other.telemetry
        )


def _summarize_thrifty(barriers):
    totals = {}
    for barrier in barriers.values():
        if not isinstance(barrier, ThriftyBarrier):
            continue
        stats = barrier.stats
        for key in (
            "sleeps", "spin_fallbacks", "cold_spins", "disabled_spins",
            "aborted_sleeps", "timer_wakes", "invalidation_wakes",
            "cutoff_disables", "filtered_updates",
        ):
            totals[key] = totals.get(key, 0) + getattr(stats, key)
        # Degradation/fault counters appear only when they fired, so a
        # clean run's stats dict stays bit-identical to the pre-fault
        # era (the same data-dependent idiom as ``sleeps[state]``).
        for key in (
            "spurious_wakes", "fallback_sleeps", "probation_reenables",
        ):
            value = getattr(stats, key)
            if value:
                totals[key] = totals.get(key, 0) + value
        for state, count in stats.sleeps_by_state.items():
            key = "sleeps[{}]".format(state)
            totals[key] = totals.get(key, 0) + count
    return totals


def _live_result(app, config_name, run):
    return ExperimentResult(
        app=app,
        config=config_name,
        n_threads=run.n_threads,
        execution_time_ns=run.execution_time_ns,
        total=run.total,
        barrier_imbalance=run.barrier_imbalance(),
        thrifty_stats=_summarize_thrifty(run.barriers),
    )


def _derived_result(app, config_name, baseline_run):
    states = ORACLE_STATES[config_name]
    replay = oracle_rerun(
        baseline_run.trace,
        baseline_run.accounts,
        baseline_run.power,
        states,
    )
    total = EnergyAccount()
    for account in replay.accounts:
        total.merge(account)
    return ExperimentResult(
        app=app,
        config=config_name,
        n_threads=baseline_run.n_threads,
        execution_time_ns=baseline_run.execution_time_ns,
        total=total,
        barrier_imbalance=baseline_run.barrier_imbalance(),
        oracle_meta={
            "sleeps_by_state": dict(replay.sleeps_by_state),
            "spin_stalls": replay.spin_stalls,
            "slept_stalls": replay.slept_stalls,
        },
    )


def _run_live(
    app, config_name, threads, seed, machine_config, overrides,
    telemetry=None, fault_plan=None,
):
    model = get_model(app)
    system = System(machine_config or MachineConfig(), telemetry=telemetry)
    perturb = None
    if fault_plan is not None and not fault_plan.is_noop:
        from repro.faults.injector import install_fault_plan

        injector = install_fault_plan(system, fault_plan, telemetry=telemetry)
        perturb = injector.perturb_hook()
    runner = WorkloadRunner(
        model,
        system=system,
        n_threads=threads,
        seed=seed,
        barrier_factory=barrier_factory_for(config_name, **overrides),
        perturb=perturb,
    )
    run = runner.run()
    if telemetry is not None and telemetry.enabled:
        collect_run_metrics(telemetry, system, run)
    return run


def _coerce_tracer(telemetry):
    """Normalize ``run_experiment``'s ``telemetry`` argument.

    ``False``/``None`` → no tracing; ``True`` → a fresh enabled
    :class:`~repro.telemetry.tracer.Tracer`; an existing tracer is used
    as-is.
    """
    if not telemetry:
        return None
    if telemetry is True:
        return Tracer()
    return telemetry


def run_experiment(
    app, config, threads=64, seed=DEFAULT_SEED,
    machine_config=None, telemetry=False, fault_plan=None,
    **thrifty_overrides,
):
    """Run one cell; derived configurations run their Baseline first.

    With ``telemetry`` truthy (``True`` or a
    :class:`~repro.telemetry.tracer.Tracer`), the simulation is traced
    and the result carries a
    :class:`~repro.telemetry.tracer.TelemetrySnapshot`; for derived
    (oracle) configurations this is the snapshot of the Baseline
    simulation they replay. ``fault_plan`` optionally installs a
    :class:`~repro.faults.plan.FaultPlan` into the live simulation
    (derived configurations replay their perturbed Baseline); ``None``
    or a no-op plan leaves the machine untouched. Returns an
    :class:`ExperimentResult`.
    """
    tracer = _coerce_tracer(telemetry)
    if config in LIVE_CONFIGS:
        run = _run_live(
            app, config, threads, seed, machine_config, thrifty_overrides,
            telemetry=tracer, fault_plan=fault_plan,
        )
        result = _live_result(app, config, run)
    elif config in DERIVED_CONFIGS:
        baseline_run = _run_live(
            app, "baseline", threads, seed, machine_config, {},
            telemetry=tracer, fault_plan=fault_plan,
        )
        result = _derived_result(app, config, baseline_run)
    else:
        raise ConfigError(
            "unknown configuration {!r}; choose from {}".format(
                config, ", ".join(CONFIG_NAMES)
            )
        )
    if tracer is not None:
        result.telemetry = tracer.snapshot()
    return result


def run_app(
    app, threads=64, seed=DEFAULT_SEED, machine_config=None, configs=None,
):
    """All requested configurations for one application.

    The Baseline simulation is shared by the two derived oracles, so a
    full five-way comparison costs three live runs.
    """
    configs = tuple(configs or CONFIG_NAMES)
    results: Dict[str, ExperimentResult] = {}
    baseline_run = None
    need_baseline = (
        "baseline" in configs
        or any(config in DERIVED_CONFIGS for config in configs)
    )
    if need_baseline:
        baseline_run = _run_live(
            app, "baseline", threads, seed, machine_config, {}
        )
    for config in configs:
        if config == "baseline":
            results[config] = _live_result(app, config, baseline_run)
        elif config in DERIVED_CONFIGS:
            results[config] = _derived_result(app, config, baseline_run)
        elif config in LIVE_CONFIGS:
            run = _run_live(
                app, config, threads, seed, machine_config, {}
            )
            results[config] = _live_result(app, config, run)
        else:
            raise ConfigError("unknown configuration {!r}".format(config))
    return results


def run_matrix(
    apps=None, threads=64, seed=DEFAULT_SEED,
    machine_config=None, configs=None,
    workers=1, cache=None, timeout=None, retries=1, strict=True,
    metrics=None, journal=None, preemption=None, watchdog=None,
):
    """The full evaluation sweep: {app: {config: ExperimentResult}}.

    ``workers=1`` with caching disabled takes the classic serial path
    (one shared Baseline run per app feeds the derived oracles); any
    other setting routes through the
    :class:`~repro.experiments.parallel.ExperimentEngine`, which fans
    cells out over processes and/or the on-disk result cache. Both
    paths produce field-identical results for the same seed.

    ``cache`` is ``None`` (off), ``True`` (default directory), a path,
    or a :class:`~repro.experiments.cache.ResultCache`. With
    ``strict=False`` a failing cell is returned in-place as a
    :class:`~repro.experiments.parallel.CellFailure` instead of
    raising.

    ``metrics`` is an optional
    :class:`~repro.telemetry.metrics.MetricsRegistry`; when given, the
    engine and result-cache counters (submitted / executed / cache
    hits, misses, errors) are recorded into it, which is how the CLI
    surfaces them in its run summary.

    Crash safety rides three optional arguments, all forwarded to the
    engine: ``journal`` (a :class:`~repro.experiments.journal.
    RunJournal` durably recording per-cell progress), ``preemption``
    (a :class:`~repro.experiments.preemption.PreemptionGuard`-like
    object turning SIGTERM/SIGINT into a graceful
    :class:`~repro.errors.CampaignInterrupted`), and ``watchdog`` (a
    hung-worker heartbeat policy). Any of them forces the engine path
    even at ``workers=1`` with no cache.
    """
    from repro.workloads.splash2 import SPLASH2_NAMES

    apps = tuple(apps or SPLASH2_NAMES)
    crash_safe = (
        journal is not None or preemption is not None
        or watchdog is not None
    )
    if workers == 1 and cache is None and not crash_safe:
        matrix = {
            app: run_app(
                app, threads=threads, seed=seed,
                machine_config=machine_config, configs=configs,
            )
            for app in apps
        }
        if metrics is not None:
            # Mirror the engine-path counter set exactly, so serial and
            # parallel runs print byte-identical CLI summaries.
            from repro.experiments.parallel import EngineStats

            cells = sum(len(row) for row in matrix.values())
            mirror = EngineStats(submitted=cells, executed=cells)
            for name, value in mirror.as_dict().items():
                metrics.counter("engine.{}".format(name)).inc(value)
        return matrix
    from repro.experiments.parallel import (
        ExperimentEngine,
        record_engine_metrics,
    )

    engine = ExperimentEngine(
        workers=workers, cache=cache, timeout=timeout,
        retries=retries, strict=strict, journal=journal,
        preemption=preemption, watchdog=watchdog,
    )
    try:
        matrix = engine.run_matrix(
            apps, configs=configs, threads=threads, seed=seed,
            machine_config=machine_config,
        )
    finally:
        # Recorded even on CampaignInterrupted: a preempted run's
        # partial counters are exactly what the operator needs to see.
        if metrics is not None:
            record_engine_metrics(metrics, engine)
    return matrix
