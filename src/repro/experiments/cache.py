"""On-disk result cache for experiment cells.

Every cell the engine runs is identified by a *content hash* of the
inputs that fully determine its result: application, configuration
name, thread count, seed, the complete :class:`~repro.config.MachineConfig`,
any thrifty-policy overrides, and the package version (the simulator is
bit-deterministic, so a new package version is the only way an identical
input can legitimately produce a different output). Re-running a
figure, sweep, or benchmark therefore skips every already-simulated
cell.

Cache entries are individual pickle files under a two-level directory
fan-out; writes are atomic (temp file + ``os.replace``), and any entry
that fails to load — truncated, corrupted, or written by an
incompatible pickle — is treated as a miss and removed, never an error.
"""

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import Path

from repro import __version__
from repro.errors import ConfigError

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_ENTRY_SUFFIX = ".pkl"


def default_cache_dir():
    """The on-disk cache location: ``$REPRO_CACHE_DIR`` if set, else
    ``~/.cache/repro-thrifty``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-thrifty"


def _canonical(value):
    """Reduce ``value`` to JSON-serializable primitives, recursively.

    Dataclasses carry their qualified class name so two config types
    with coincidentally equal fields hash differently; enums hash by
    value; tuples/lists/sets collapse to lists (sets sorted by repr).
    """
    if is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: _canonical(getattr(value, f.name))
            for f in fields(value)
        }
        body["__dataclass__"] = "{}.{}".format(
            type(value).__module__, type(value).__qualname__
        )
        return body
    if isinstance(value, Enum):
        return {"__enum__": str(value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical(v) for v in value), key=repr)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigError(
        "cannot build a stable cache key from {!r} (type {})".format(
            value, type(value).__name__
        )
    )


def content_key(
    app, config, threads, seed, machine_config, overrides=None,
    telemetry=False,
):
    """Stable hex digest identifying one experiment cell.

    Any perturbation of any field — including nested fields of the
    machine config, the ``telemetry`` flag (a traced result carries the
    event stream a plain one does not), and a bump of the package
    version — yields a new key.
    """
    payload = {
        "version": __version__,
        "app": app,
        "config": config,
        "threads": threads,
        "seed": seed,
        "machine": _canonical(machine_config),
        "overrides": _canonical(dict(overrides or {})),
        "telemetry": bool(telemetry),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-per-entry result store with hit/miss accounting.

    Corruption-tolerant: a load failure of any kind counts as a miss
    and evicts the bad entry. Counters (:attr:`hits`, :attr:`misses`,
    :attr:`stores`, :attr:`errors`) let callers verify "zero
    re-simulations" on a warm re-run.
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0

    @classmethod
    def coerce(cls, cache):
        """Normalize the ``cache=`` argument accepted by entry points.

        ``None`` → no caching; an existing :class:`ResultCache` is
        passed through; ``True`` → the default directory; a string or
        path → a cache rooted there.
        """
        if cache is None:
            return None
        if isinstance(cache, cls):
            return cache
        if cache is True:
            return cls()
        if isinstance(cache, (str, os.PathLike)):
            return cls(cache)
        raise ConfigError(
            "cache must be None, True, a path, or a ResultCache; got "
            "{!r}".format(cache)
        )

    def _entry_path(self, key):
        return self.cache_dir / key[:2] / (key + _ENTRY_SUFFIX)

    def get(self, key, default=None):
        """Load a cached result, or ``default`` on miss/corruption."""
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return default
        except Exception:
            # Truncated/corrupted/incompatible entry: a miss, not a crash.
            self.errors += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return default
        self.hits += 1
        return value

    def put(self, key, value):
        """Store a result atomically and durably (temp file, fsync,
        rename): a crash mid-``put`` leaves at worst a stale ``.tmp``
        file — never a truncated entry under the real name."""
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def __contains__(self, key):
        return self._entry_path(key).exists()

    def entries(self):
        """All entry paths currently on disk."""
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*/*" + _ENTRY_SUFFIX))

    def __len__(self):
        return len(self.entries())

    def clear(self):
        """Remove every entry, plus any ``.tmp`` files a killed writer
        left behind (the directory itself is kept)."""
        stale = (
            self.cache_dir.glob("*/*.tmp")
            if self.cache_dir.is_dir() else ()
        )
        for path in list(self.entries()) + sorted(stale):
            try:
                path.unlink()
            except OSError:
                pass

    def prune(self, max_entries):
        """Evict oldest entries (by mtime) down to ``max_entries``."""
        if max_entries < 0:
            raise ConfigError("max_entries must be non-negative")
        paths = self.entries()
        if len(paths) <= max_entries:
            return 0
        paths.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        evicted = 0
        for path in paths[max_entries:]:
            try:
                path.unlink()
                evicted += 1
            except OSError:
                pass
        return evicted

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }

    def __repr__(self):
        return "ResultCache({!r}, hits={}, misses={})".format(
            str(self.cache_dir), self.hits, self.misses
        )
