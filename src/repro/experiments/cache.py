"""On-disk result cache for experiment cells.

Every cell the engine runs is identified by a *content hash* of the
inputs that fully determine its result: application, configuration
name, thread count, seed, the complete :class:`~repro.config.MachineConfig`,
any thrifty-policy overrides, and the package version (the simulator is
bit-deterministic, so a new package version is the only way an identical
input can legitimately produce a different output). Re-running a
figure, sweep, or benchmark therefore skips every already-simulated
cell.

Cache entries are individual pickle files **sharded** into 2-hex
content-hash prefix directories (``<dir>/ab/<key>.pkl``), so many
concurrent campaigns — every worker of every overlapping submission —
fan their writes out over 256 directories instead of contending on
one. Early versions of the cache wrote flat entries directly under the
root (``<dir>/<key>.pkl``); those are still readable and are migrated
into their shard transparently on first access (:meth:`ResultCache.
get`) or in bulk (:meth:`ResultCache.migrate`).

Writes are atomic (temp file + ``os.replace``), and any entry that
fails to load — truncated, corrupted, or written by an incompatible
pickle — is treated as a miss and removed, never an error. Writes
route through the storage fault seams of :mod:`repro.faults.storage`
and *degrade* on a failing disk (ENOSPC, EIO): a store that cannot
land is counted in :attr:`ResultCache.write_errors` and dropped — the
cell simply re-runs next time — instead of killing the campaign.
"""

import hashlib
import json
import os
import pickle
import warnings
from dataclasses import fields, is_dataclass
from enum import Enum
from pathlib import Path

from repro import __version__
from repro.errors import ConfigError
from repro.faults import storage as _storage

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_ENTRY_SUFFIX = ".pkl"

#: Glob matching exactly the 2-hex shard directories.
_SHARD_GLOB = "[0-9a-f][0-9a-f]"


def default_cache_dir():
    """The on-disk cache location: ``$REPRO_CACHE_DIR`` if set, else
    ``~/.cache/repro-thrifty``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-thrifty"


def _canonical(value):
    """Reduce ``value`` to JSON-serializable primitives, recursively.

    Dataclasses carry their qualified class name so two config types
    with coincidentally equal fields hash differently; enums hash by
    value; tuples/lists/sets collapse to lists (sets sorted by repr).
    """
    if is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: _canonical(getattr(value, f.name))
            for f in fields(value)
        }
        body["__dataclass__"] = "{}.{}".format(
            type(value).__module__, type(value).__qualname__
        )
        return body
    if isinstance(value, Enum):
        return {"__enum__": str(value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical(v) for v in value), key=repr)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigError(
        "cannot build a stable cache key from {!r} (type {})".format(
            value, type(value).__name__
        )
    )


def content_key(
    app, config, threads, seed, machine_config, overrides=None,
    telemetry=False,
):
    """Stable hex digest identifying one experiment cell.

    Any perturbation of any field — including nested fields of the
    machine config, the ``telemetry`` flag (a traced result carries the
    event stream a plain one does not), and a bump of the package
    version — yields a new key.
    """
    payload = {
        "version": __version__,
        "app": app,
        "config": config,
        "threads": threads,
        "seed": seed,
        "machine": _canonical(machine_config),
        "overrides": _canonical(dict(overrides or {})),
        "telemetry": bool(telemetry),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-per-entry result store with hit/miss accounting.

    Corruption-tolerant: a load failure of any kind counts as a miss
    and evicts the bad entry. Counters (:attr:`hits`, :attr:`misses`,
    :attr:`stores`, :attr:`errors`) let callers verify "zero
    re-simulations" on a warm re-run.
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.errors = 0
        self.migrations = 0
        #: Stores lost to a failing disk (degraded, not raised).
        self.write_errors = 0
        self.last_write_error = None
        self._warned_write = False

    @classmethod
    def coerce(cls, cache):
        """Normalize the ``cache=`` argument accepted by entry points.

        ``None`` → no caching; an existing :class:`ResultCache` is
        passed through; ``True`` → the default directory; a string or
        path → a cache rooted there.
        """
        if cache is None:
            return None
        if isinstance(cache, cls):
            return cache
        if cache is True:
            return cls()
        if isinstance(cache, (str, os.PathLike)):
            return cls(cache)
        raise ConfigError(
            "cache must be None, True, a path, or a ResultCache; got "
            "{!r}".format(cache)
        )

    def _entry_path(self, key):
        """The canonical (sharded) location of a key's entry."""
        return self.cache_dir / key[:2] / (key + _ENTRY_SUFFIX)

    def _legacy_path(self, key):
        """Where the pre-shard flat layout kept this key's entry."""
        return self.cache_dir / (key + _ENTRY_SUFFIX)

    @staticmethod
    def _load(path):
        """``(value, status)`` with status 'hit'/'missing'/'corrupt'."""
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle), "hit"
        except FileNotFoundError:
            return None, "missing"
        except Exception:
            return None, "corrupt"

    @staticmethod
    def _evict(path):
        try:
            path.unlink()
        except OSError:
            pass

    def _migrate_entry(self, legacy, sharded):
        """Move one flat legacy entry into its shard, racing safely.

        ``os.replace`` is atomic; if a concurrent process migrated the
        same entry first (the source vanished) that is success, not
        failure — identical keys hold identical content by
        construction.
        """
        try:
            sharded.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, sharded)
        except OSError:
            return False
        self.migrations += 1
        return True

    def get(self, key, default=None):
        """Load a cached result, or ``default`` on miss/corruption.

        Looks in the sharded layout first, then falls back to the flat
        legacy layout; a legacy hit migrates the entry into its shard
        so the flat directory drains over time. A concurrent migration
        by another process can make the flat entry vanish between the
        two probes, so a flat miss re-checks the shard once before
        declaring an overall miss.
        """
        path = self._entry_path(key)
        value, status = self._load(path)
        if status == "missing":
            legacy = self._legacy_path(key)
            value, status = self._load(legacy)
            if status == "hit":
                self._migrate_entry(legacy, path)
            elif status == "missing":
                # Another process may have just migrated this entry
                # out from under us; the shard is now authoritative.
                value, status = self._load(path)
            elif status == "corrupt":
                path = legacy
        if status == "hit":
            self.hits += 1
            return value
        if status == "corrupt":
            # Truncated/corrupted/incompatible entry: a miss, not a crash.
            self.errors += 1
            self._evict(path)
        self.misses += 1
        return default

    def put(self, key, value):
        """Store a result atomically and durably (temp file, fsync,
        rename): a crash mid-``put`` leaves at worst a stale ``.tmp``
        file — never a truncated entry under the real name. A legacy
        flat-layout entry for the same key is dropped afterwards so
        the key is never double-counted (the shard always wins reads
        anyway).

        Returns True when the entry landed. A failing disk (ENOSPC,
        EIO — injected or real) degrades to False: the store is
        counted in :attr:`write_errors` and the cell re-runs as a miss
        next time, because a cache that kills its campaign over a full
        disk would be worse than no cache. Unpicklable values still
        raise — that is a caller bug, not a disk fault.
        """
        path = self._entry_path(key)
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            _storage.atomic_write_bytes(path, data)
        except OSError as exc:
            self.write_errors += 1
            self.last_write_error = "{}: {}".format(type(exc).__name__, exc)
            if not self._warned_write:
                self._warned_write = True
                warnings.warn(
                    "result cache at {}: store failed ({}); degrading — "
                    "the entry is dropped and its cell will re-run as a "
                    "miss".format(self.cache_dir, exc),
                    RuntimeWarning, stacklevel=2,
                )
            return False
        try:
            self._legacy_path(key).unlink()
        except OSError:
            pass
        self.stores += 1
        return True

    def __contains__(self, key):
        return (
            self._entry_path(key).exists()
            or self._legacy_path(key).exists()
        )

    def entries(self):
        """All entry paths currently on disk (sharded and legacy-flat).

        Only the 2-hex shard directories are scanned, so foreign
        subdirectories (e.g. an fsck ``quarantine/``) are never counted
        or touched by :meth:`clear`/:meth:`prune`.
        """
        if not self.cache_dir.is_dir():
            return []
        sharded = self.cache_dir.glob(_SHARD_GLOB + "/*" + _ENTRY_SUFFIX)
        flat = self.cache_dir.glob("*" + _ENTRY_SUFFIX)
        return sorted(sharded) + sorted(flat)

    def legacy_entries(self):
        """Flat pre-shard entries still awaiting migration."""
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*" + _ENTRY_SUFFIX))

    def layout(self):
        """``{"sharded": n, "flat": n}`` — how far migration has got."""
        flat = len(self.legacy_entries())
        return {"sharded": len(self.entries()) - flat, "flat": flat}

    def migrate(self):
        """Move every flat legacy entry into its shard; returns the
        number migrated. Safe to run concurrently with readers and
        other migrators (atomic renames; losing a race is a no-op)."""
        moved = 0
        for legacy in self.legacy_entries():
            key = legacy.name[:-len(_ENTRY_SUFFIX)]
            if self._migrate_entry(legacy, self._entry_path(key)):
                moved += 1
        return moved

    def __len__(self):
        return len(self.entries())

    def clear(self):
        """Remove every entry, plus any ``.tmp`` files a killed writer
        left behind (the directory itself is kept). Returns the number
        of entries removed (tmp leftovers are not counted)."""
        stale = []
        if self.cache_dir.is_dir():
            stale = sorted(self.cache_dir.glob(_SHARD_GLOB + "/*.tmp")) + sorted(
                self.cache_dir.glob("*.tmp")
            )
        entries = list(self.entries())
        removed = 0
        for path in entries + stale:
            try:
                path.unlink()
            except OSError:
                continue
            if path not in stale:
                removed += 1
        return removed

    def prune(self, max_entries):
        """Evict oldest entries (by mtime) down to ``max_entries``."""
        if max_entries < 0:
            raise ConfigError("max_entries must be non-negative")
        paths = self.entries()
        if len(paths) <= max_entries:
            return 0
        paths.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        evicted = 0
        for path in paths[max_entries:]:
            try:
                path.unlink()
                evicted += 1
            except OSError:
                pass
        return evicted

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "migrations": self.migrations,
            "write_errors": self.write_errors,
        }

    def size_bytes(self):
        """Total bytes of all entries currently on disk."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def __repr__(self):
        return "ResultCache({!r}, hits={}, misses={})".format(
            str(self.cache_dir), self.hits, self.misses
        )
