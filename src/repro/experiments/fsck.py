"""Offline audit and repair of journal/cache trees: ``repro fsck``.

The journal and result cache are built to *tolerate* torn writes and
corruption at read time (a torn journal tail is skipped, a corrupt
cache entry is a miss). That keeps campaigns alive, but it also means
damage accumulates silently on a failing disk. ``fsck`` is the
offline counterpart: walk the tree, classify every file, repair what
is safely repairable, and report what is not.

Classification (:data:`FSCK_STATUSES`):

``intact``
    The file parses completely.
``torn-tail``
    ``journal.jsonl`` ends in a malformed final line — the classic
    crash-mid-append state. Repairable: truncate to the last good
    line (exactly what replay would have ignored anyway).
``corrupt``
    A malformed record *before* the tail (the fsync-per-line contract
    says this never happens on a healthy disk, so it means real
    corruption), an unreadable checkpoint/payload/cache entry, or an
    unparseable ``spec.json``. Journals are repaired by truncating
    from the first bad line — the prefix is still consistent, and any
    dropped ``completed`` record only costs a re-run. Checkpoints are
    deleted (derived data; replay rebuilds them). Payloads and cache
    entries are quarantined so they re-run as misses. A corrupt
    ``spec.json`` is **unrepairable**: without the spec the run cannot
    be verified or resumed.
``orphaned``
    A file in ``results/`` that is not a payload (wrong name shape).
    Quarantined under ``--repair``.
``stale-tmp``
    A ``*.tmp`` file a killed atomic write left behind. Deleted under
    ``--repair``.

Repair never deletes campaign *data*: quarantined files move to a
``quarantine/`` directory beside their tree, so an operator can always
inspect (or restore) what fsck pulled out.
"""

import json
import os
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.experiments.journal import default_journal_root, list_run_ids

__all__ = [
    "FSCK_STATUSES",
    "Finding",
    "FsckReport",
    "fsck_cache",
    "fsck_run",
    "render_fsck_report",
]

#: Every status a finding may carry.
FSCK_STATUSES = ("intact", "torn-tail", "corrupt", "orphaned", "stale-tmp")

_QUARANTINE_DIR = "quarantine"
_PAYLOAD_RE = re.compile(r"^[0-9a-f]{64}\.pkl$")
_CACHE_ENTRY_RE = re.compile(r"^[0-9a-f]{64}\.pkl$")
_SHARD_RE = re.compile(r"^[0-9a-f]{2}$")


@dataclass
class Finding:
    """One file's verdict: what it is, what is wrong, what was done.

    ``repair`` describes the applicable repair action (empty for
    intact files and unrepairable loss); ``repaired`` records whether
    it was actually applied this run.
    """

    path: str
    kind: str       # journal | checkpoint | payload | spec | cache-entry | stray
    status: str     # one of FSCK_STATUSES
    detail: str = ""
    repair: str = ""
    repaired: bool = False
    unrepairable: bool = False


@dataclass
class FsckReport:
    """The verdicts of one fsck pass, plus summary accounting."""

    root: str = ""
    findings: list = field(default_factory=list)
    scanned: int = 0

    def add(self, finding):
        self.findings.append(finding)
        return finding

    @property
    def issues(self):
        return [f for f in self.findings if f.status != "intact"]

    @property
    def unrepaired(self):
        return [
            f for f in self.issues if not f.repaired and not f.unrepairable
        ]

    @property
    def unrepairable_loss(self):
        return [f for f in self.findings if f.unrepairable]

    @property
    def repaired(self):
        return [f for f in self.findings if f.repaired]

    @property
    def ok(self):
        """True when the tree is clean *now*: no unrepairable loss and
        every issue found was repaired (or none existed)."""
        return not self.unrepaired and not self.unrepairable_loss

    def counts(self):
        by_status = {status: 0 for status in FSCK_STATUSES}
        for finding in self.findings:
            by_status[finding.status] += 1
        return by_status

    def merge(self, other):
        self.findings.extend(other.findings)
        self.scanned += other.scanned
        return self


def _quarantine(path, quarantine_root):
    """Move ``path`` into the quarantine directory, never clobbering."""
    quarantine_root.mkdir(parents=True, exist_ok=True)
    target = quarantine_root / path.name
    serial = 0
    while target.exists():
        serial += 1
        target = quarantine_root / "{}.{}".format(path.name, serial)
    os.replace(path, target)
    return target


def _check_journal_file(path):
    """``(status, detail, keep_bytes)`` for one ``journal.jsonl``.

    ``keep_bytes`` is the length of the longest consistent prefix —
    the truncation point a repair applies. Raw bytes, not text: the
    truncation offset must be exact even if the tear bisected a UTF-8
    sequence.
    """
    data = path.read_bytes()
    offset = 0
    last_good_end = 0
    records = 0
    for segment in data.split(b"\n"):
        end = offset + len(segment)
        terminated = end < len(data)  # a "\n" followed this segment
        if segment:
            try:
                body = json.loads(segment.decode("utf-8"))
                if not isinstance(body, dict):
                    raise ValueError("not a JSON object")
            except (ValueError, UnicodeDecodeError):
                if terminated and end + 1 < len(data):
                    return (
                        "corrupt",
                        "malformed record #{} before the tail "
                        "(byte {})".format(records + 1, offset),
                        last_good_end,
                    )
                return (
                    "torn-tail",
                    "malformed final line ({} bytes)".format(len(segment)),
                    last_good_end,
                )
            records += 1
        if terminated:
            last_good_end = end + 1
            offset = end + 1
        else:
            # An unterminated tail that *parses* was a complete record
            # whose newline never landed; replay accepts it, so fsck
            # does too.
            last_good_end = len(data)
    return "intact", "{} records".format(records), len(data)


def _check_pickle(path):
    try:
        with open(path, "rb") as fh:
            pickle.load(fh)
    except Exception as exc:
        return "corrupt", "{}: {}".format(type(exc).__name__, exc)
    return "intact", ""


def _scan_tmp_files(report, directory, repair):
    for tmp in sorted(directory.glob("*.tmp")):
        finding = report.add(Finding(
            path=str(tmp), kind="stray", status="stale-tmp",
            detail="leftover of a killed atomic write",
            repair="delete",
        ))
        report.scanned += 1
        if repair:
            try:
                tmp.unlink()
                finding.repaired = True
            except OSError as exc:
                finding.detail += " (delete failed: {})".format(exc)


def fsck_run(run_dir, repair=False):
    """Audit (and optionally repair) one run directory."""
    run_dir = Path(run_dir)
    report = FsckReport(root=str(run_dir))
    if not run_dir.is_dir():
        raise ConfigError("no run directory at {}".format(run_dir))

    # spec.json — the identity of the run; without it nothing else can
    # be verified or resumed, so corruption here is unrepairable loss.
    spec_path = run_dir / "spec.json"
    report.scanned += 1
    if not spec_path.is_file():
        report.add(Finding(
            path=str(spec_path), kind="spec", status="corrupt",
            detail="missing spec.json — not a resumable journal",
            unrepairable=True,
        ))
    else:
        try:
            with open(spec_path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
            if "spec_hash" not in document:
                raise ValueError("no spec_hash field")
        except (OSError, ValueError) as exc:
            report.add(Finding(
                path=str(spec_path), kind="spec", status="corrupt",
                detail="{}: {}".format(type(exc).__name__, exc),
                unrepairable=True,
            ))
        else:
            report.add(Finding(
                path=str(spec_path), kind="spec", status="intact",
            ))

    # journal.jsonl — torn tails truncate to the last good line;
    # mid-file corruption truncates the whole suffix (prefix-consistent).
    journal_path = run_dir / "journal.jsonl"
    if journal_path.is_file():
        report.scanned += 1
        status, detail, keep = _check_journal_file(journal_path)
        finding = report.add(Finding(
            path=str(journal_path), kind="journal", status=status,
            detail=detail,
            repair="" if status == "intact"
            else "truncate to {} bytes".format(keep),
        ))
        if repair and status != "intact":
            try:
                with open(journal_path, "r+b") as fh:
                    fh.truncate(keep)
                finding.repaired = True
            except OSError as exc:
                finding.detail += " (truncate failed: {})".format(exc)

    # checkpoint.json — derived data: corrupt means delete, replay
    # rebuilds the snapshot from the record stream.
    checkpoint_path = run_dir / "checkpoint.json"
    if checkpoint_path.is_file():
        report.scanned += 1
        try:
            with open(checkpoint_path, "r", encoding="utf-8") as fh:
                json.load(fh)
        except (OSError, ValueError) as exc:
            finding = report.add(Finding(
                path=str(checkpoint_path), kind="checkpoint",
                status="corrupt",
                detail="{}: {}".format(type(exc).__name__, exc),
                repair="delete (derived; replay rebuilds it)",
            ))
            if repair:
                try:
                    checkpoint_path.unlink()
                    finding.repaired = True
                except OSError as exc:
                    finding.detail += " (delete failed: {})".format(exc)
        else:
            report.add(Finding(
                path=str(checkpoint_path), kind="checkpoint",
                status="intact",
            ))

    # results/ payload store — corrupt payloads are quarantined (they
    # re-run as misses); files that are not payloads at all are
    # orphans. A payload without a journal record is *fine*: chaos
    # campaigns store reference payloads that never get records.
    results_dir = run_dir / "results"
    quarantine_root = run_dir / _QUARANTINE_DIR
    if results_dir.is_dir():
        for payload in sorted(results_dir.iterdir()):
            if payload.name.endswith(".tmp") or not payload.is_file():
                continue
            report.scanned += 1
            if not _PAYLOAD_RE.match(payload.name):
                finding = report.add(Finding(
                    path=str(payload), kind="stray", status="orphaned",
                    detail="not a payload file", repair="quarantine",
                ))
                if repair:
                    _quarantine(payload, quarantine_root)
                    finding.repaired = True
                continue
            status, detail = _check_pickle(payload)
            finding = report.add(Finding(
                path=str(payload), kind="payload", status=status,
                detail=detail,
                repair="" if status == "intact" else "quarantine",
            ))
            if repair and status != "intact":
                _quarantine(payload, quarantine_root)
                finding.repaired = True
        _scan_tmp_files(report, results_dir, repair)
    _scan_tmp_files(report, run_dir, repair)
    return report


def fsck_cache(cache_dir, repair=False):
    """Audit (and optionally repair) a result-cache tree.

    Every entry (sharded and legacy-flat) must unpickle; corrupt
    entries are quarantined — the cache would have treated them as
    misses anyway, but leaving them means every warm run pays the
    load-and-evict cost and the operator never hears about it.
    """
    cache_dir = Path(cache_dir)
    report = FsckReport(root=str(cache_dir))
    if not cache_dir.is_dir():
        return report  # an absent cache is vacuously clean
    quarantine_root = cache_dir / _QUARANTINE_DIR
    shard_dirs = sorted(
        entry for entry in cache_dir.iterdir()
        if entry.is_dir() and _SHARD_RE.match(entry.name)
    )
    for directory in [cache_dir] + shard_dirs:
        for entry in sorted(directory.glob("*.pkl")):
            if not _CACHE_ENTRY_RE.match(entry.name):
                continue
            report.scanned += 1
            status, detail = _check_pickle(entry)
            finding = report.add(Finding(
                path=str(entry), kind="cache-entry", status=status,
                detail=detail,
                repair="" if status == "intact" else "quarantine",
            ))
            if repair and status != "intact":
                _quarantine(entry, quarantine_root)
                finding.repaired = True
        _scan_tmp_files(report, directory, repair)
    return report


def fsck_tree(journal_root=None, run_id=None, cache_dir=None, repair=False):
    """The full audit the CLI runs: journals (one or all) plus cache.

    ``cache_dir=None`` skips the cache; ``run_id=None`` audits every
    journal under the root.
    """
    root = Path(journal_root) if journal_root else default_journal_root()
    report = FsckReport(root=str(root))
    if run_id is not None:
        report.merge(fsck_run(root / run_id, repair=repair))
    else:
        for name in list_run_ids(root):
            report.merge(fsck_run(root / name, repair=repair))
    if cache_dir is not None:
        report.merge(fsck_cache(cache_dir, repair=repair))
    return report


def render_fsck_report(report):
    """Human-readable verdict, issues first."""
    lines = ["fsck {}".format(report.root)]
    for finding in report.issues:
        mark = "repaired" if finding.repaired else (
            "UNREPAIRABLE" if finding.unrepairable else "found"
        )
        line = "  [{}] {} {}: {}".format(
            mark, finding.status, finding.path, finding.detail or "-"
        )
        if finding.repair and not finding.repaired:
            line += " (repair: {})".format(finding.repair)
        lines.append(line)
    counts = report.counts()
    summary = ", ".join(
        "{} {}".format(counts[status], status)
        for status in FSCK_STATUSES if counts[status]
    ) or "nothing scanned"
    lines.append("  {} file(s) scanned: {}".format(report.scanned, summary))
    if report.unrepairable_loss:
        lines.append("  UNREPAIRABLE LOSS: {} file(s) cannot be "
                     "recovered".format(len(report.unrepairable_loss)))
    elif report.unrepaired:
        lines.append("  {} issue(s) left unrepaired (re-run with "
                     "--repair)".format(len(report.unrepaired)))
    elif report.repaired:
        lines.append("  {} issue(s) repaired; tree is consistent".format(
            len(report.repaired)
        ))
    else:
        lines.append("  clean")
    return "\n".join(lines)
