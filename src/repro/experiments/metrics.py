"""Normalization and headline aggregates (Section 5.1).

Everything in Figures 5 and 6 is normalized to the Baseline bar of the
same application: a segment value of 17.0 means 17% of Baseline's total
energy (or execution time).
"""

from repro.errors import ConfigError
from repro.workloads.splash2 import TARGET_APPS

#: Stacking order of the paper's bars (bottom to top).
SEGMENTS = ("compute", "spin", "transition", "sleep")


def normalized_breakdown(result, baseline, kind="energy"):
    """Per-segment percentages of the Baseline total."""
    if kind == "energy":
        total = baseline.total.energy_joules()
        breakdown = result.energy_breakdown()
    elif kind == "time":
        total = baseline.total.time_ns()
        breakdown = result.time_breakdown()
    else:
        raise ConfigError("kind must be 'energy' or 'time'")
    if total <= 0:
        raise ConfigError("baseline total must be positive")
    return {
        segment: 100.0 * breakdown[segment] / total for segment in SEGMENTS
    }


def normalized_total(result, baseline, kind="energy"):
    """The bar height: percentage of the Baseline total."""
    return sum(normalized_breakdown(result, baseline, kind).values())


def energy_savings(result, baseline):
    """Fractional energy saved versus Baseline (positive = saved)."""
    return 1.0 - result.energy_joules / baseline.energy_joules


def slowdown(result, baseline):
    """Fractional execution-time increase versus Baseline."""
    return (
        result.execution_time_ns / baseline.execution_time_ns - 1.0
    )


def headline_summary(matrix, target_apps=TARGET_APPS):
    """The Section 5.1 aggregates.

    Returns a dict with, per non-baseline configuration, the mean energy
    savings and mean slowdown over the target applications, plus the
    leave-one-out variant the paper quotes (Volrend swapped for
    Water-Sp).
    """
    sample_app = next(iter(matrix))
    configs = [c for c in matrix[sample_app] if c != "baseline"]
    summary = {}
    loo_apps = tuple(
        app if app != "volrend" else "water-sp" for app in target_apps
    )
    for config in configs:
        entry = {}
        for label, apps in (("target", target_apps), ("loo", loo_apps)):
            used = [app for app in apps if app in matrix]
            if not used:
                continue
            savings = [
                energy_savings(matrix[app][config], matrix[app]["baseline"])
                for app in used
            ]
            slowdowns = [
                slowdown(matrix[app][config], matrix[app]["baseline"])
                for app in used
            ]
            entry["{}_energy_savings".format(label)] = sum(savings) / len(
                savings
            )
            entry["{}_slowdown".format(label)] = sum(slowdowns) / len(
                slowdowns
            )
        summary[config] = entry
    return summary
