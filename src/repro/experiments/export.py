"""Machine-readable export of experiment results (JSON / CSV).

The text report is for eyeballs; downstream analysis (plotting the
figures, regression-tracking the reproduction) wants structured data.
Both writers are atomic (temp file + rename), so a preempted or
crashed export never leaves a truncated file where a previous good
export used to be.
"""

import csv
import io
import json

from repro.errors import ConfigError
from repro.experiments.journal import atomic_write_text
from repro.experiments.metrics import SEGMENTS, normalized_breakdown


def matrix_to_records(matrix):
    """Flatten a run matrix to one dict per (app, config) cell."""
    records = []
    for app, by_config in matrix.items():
        baseline = by_config.get("baseline")
        if baseline is None:
            raise ConfigError("matrix for {!r} lacks a baseline".format(app))
        for config, result in by_config.items():
            record = {
                "app": app,
                "config": config,
                "threads": result.n_threads,
                "execution_time_ns": result.execution_time_ns,
                "energy_joules": result.energy_joules,
                "barrier_imbalance": result.barrier_imbalance,
                "normalized_time_pct": (
                    100.0
                    * result.execution_time_ns
                    / baseline.execution_time_ns
                ),
            }
            energy = normalized_breakdown(result, baseline, kind="energy")
            record["normalized_energy_pct"] = sum(energy.values())
            for segment in SEGMENTS:
                record["energy_{}_pct".format(segment)] = energy[segment]
            if result.thrifty_stats:
                record["thrifty_stats"] = dict(result.thrifty_stats)
            records.append(record)
    return records


def matrix_to_json(matrix, path=None, indent=2):
    """Serialize a run matrix; writes ``path`` if given, returns the
    JSON text either way."""
    text = json.dumps(matrix_to_records(matrix), indent=indent, sort_keys=True)
    if path is not None:
        atomic_write_text(path, text + "\n")
    return text


def records_to_csv(records, path):
    """Write flattened records as CSV (scalar columns only)."""
    if not records:
        raise ConfigError("nothing to write")
    columns = sorted(
        {
            key
            for record in records
            for key, value in record.items()
            if not isinstance(value, dict)
        }
    )
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for record in records:
        writer.writerow(
            {k: v for k, v in record.items() if not isinstance(v, dict)}
        )
    atomic_write_text(path, buffer.getvalue())
    return columns
