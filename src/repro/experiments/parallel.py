"""Process-pool experiment engine with deterministic results.

The unit of work stays :func:`repro.experiments.runner.run_experiment`
— one (application, configuration) cell — so a cell computes the exact
same :class:`~repro.experiments.runner.ExperimentResult` whether it runs
in-process or in a worker. The engine adds, around that unit:

* fan-out over ``multiprocessing`` fork workers with chunked dispatch
  and result ordering that matches submission order regardless of
  completion order;
* an on-disk :class:`~repro.experiments.cache.ResultCache` so warm
  re-runs perform zero re-simulations;
* robustness: a per-cell timeout with bounded retry, worker-crash
  isolation (a dead worker costs only its unfinished cells, which are
  retried and then recorded as structured :class:`CellFailure` records
  while the rest of the matrix completes), and a strict mode that
  raises :class:`~repro.errors.ExperimentError` instead;
* crash safety: an optional durable
  :class:`~repro.experiments.journal.RunJournal` records per-cell
  dispatch/completion/failure (fsynced per line) plus periodic
  checkpoints, a heartbeat :mod:`~repro.experiments.watchdog` kills
  and requeues workers whose beats go stale, and a cooperative
  ``preemption`` guard turns SIGTERM/SIGINT into a graceful, resumable
  stop (:class:`~repro.errors.CampaignInterrupted`);
* graceful degradation to a plain serial loop when ``workers=1``, when
  there is at most one cell to run, or when the platform cannot fork.

Determinism contract: the simulator is bit-exact, so for any worker
count the engine returns field-identical results in identical order
(``tests/test_parallel.py`` enforces this).
"""

import multiprocessing
import os
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.config import MachineConfig
from repro.errors import CampaignInterrupted, ConfigError, ExperimentError
from repro.experiments.cache import ResultCache, content_key
from repro.experiments.preemption import DEFAULT_DRAIN_DEADLINE_S
from repro.experiments.runner import DEFAULT_SEED
from repro.experiments.watchdog import (
    BEAT,
    BEAT_INDEX,
    HeartbeatMonitor,
    WatchdogPolicy,
    start_beat_thread,
)

#: Placeholder for a cell whose result has not been produced yet.
_PENDING = object()

#: Worker→supervisor message status tags. Public because the serve
#: worker pool speaks the same queue protocol (results plus the
#: watchdog's heartbeat messages) as the batch engine's chunk workers.
OK = "ok"
ERR = "error"

_OK = OK
_ERR = ERR

#: How long (seconds) to keep draining a finished/terminated worker's
#: queue for results that were in flight when it stopped.
_DRAIN_BUDGET_S = 0.25

_POLL_S = 0.01


@dataclass(frozen=True)
class ExperimentCell:
    """One (application, configuration) unit of work.

    ``overrides`` is a sorted tuple of ``(name, value)`` pairs (the
    thrifty-policy keyword overrides of ``run_experiment``) so the cell
    is hashable and canonically ordered. ``telemetry`` asks the cell to
    trace its simulation; it participates in the content key because a
    traced result carries the event stream a plain result does not.
    """

    app: str
    config: str
    threads: int = 64
    seed: int = DEFAULT_SEED
    machine_config: Optional[MachineConfig] = None
    overrides: tuple = ()
    telemetry: bool = False

    @classmethod
    def make(cls, app, config, threads=64, seed=DEFAULT_SEED,
             machine_config=None, telemetry=False, **overrides):
        return cls(
            app=app, config=config, threads=threads, seed=seed,
            machine_config=machine_config,
            overrides=tuple(sorted(overrides.items())),
            telemetry=telemetry,
        )

    def key(self):
        """Content hash identifying this cell's result on disk."""
        return content_key(
            self.app, self.config, self.threads, self.seed,
            self.machine_config or MachineConfig(),
            dict(self.overrides),
            telemetry=self.telemetry,
        )


@dataclass
class CellFailure:
    """Structured record of a cell that could not produce a result.

    ``kind`` is ``"error"`` (the cell raised), ``"timeout"`` (exceeded
    the per-cell budget), ``"crashed"`` (its worker died), or
    ``"stalled"`` (the watchdog declared its worker hung).
    """

    cell: Any
    kind: str
    error_type: str = ""
    message: str = ""
    attempts: int = 1

    def describe(self):
        label = getattr(self.cell, "app", None)
        if label is not None:
            label = "{}/{}".format(self.cell.app, self.cell.config)
        else:
            label = repr(self.cell)
        detail = self.error_type or self.kind
        if self.message:
            detail += ": " + self.message
        return "{} [{}, attempt {}] {}".format(
            label, self.kind, self.attempts, detail
        )


@dataclass
class EngineStats:
    """Counters for one engine lifetime (across ``run_*`` calls)."""

    submitted: int = 0
    cache_hits: int = 0
    executed: int = 0
    failures: int = 0
    retries: int = 0
    stalled: int = 0

    def as_dict(self):
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failures": self.failures,
            "retries": self.retries,
            "stalled": self.stalled,
        }


class RetryBackoff:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``delay_for(attempt)`` (attempt numbering starts at 1 for the first
    *retry*) returns ``min(cap, base * 2**(attempt-1))`` scaled by a
    jitter factor drawn uniformly from [0.5, 1.0) — decorrelating the
    retry times of cells that failed together (e.g. all chunks of one
    dead worker) without sacrificing reproducibility: the jitter RNG is
    seeded from ``seed`` alone, so a fixed seed yields the same retry
    schedule on every run.
    """

    def __init__(self, base_s=0.05, cap_s=2.0, seed=0):
        if base_s < 0 or cap_s < 0:
            raise ConfigError("backoff delays must be non-negative")
        if cap_s < base_s:
            raise ConfigError("backoff cap must be >= base")
        self.base_s = base_s
        self.cap_s = cap_s
        self.seed = seed
        # String seeding hashes via SHA-512 — stable across processes
        # and runs, unlike hash() of arbitrary objects.
        self._rng = random.Random("retry-backoff:{}".format(seed))

    def delay_for(self, attempt):
        """Delay in seconds before retry number ``attempt`` (>= 1)."""
        if attempt < 1:
            raise ConfigError("attempt numbering starts at 1")
        raw = min(self.cap_s, self.base_s * (2 ** (attempt - 1)))
        return raw * (0.5 + 0.5 * self._rng.random())


def run_cell(cell):
    """Default task: one ``run_experiment`` call (the bit-exact unit).

    Shared by the batch engine and the serve worker pool, so a cell
    computes the identical result whichever execution path ran it.
    """
    from repro.experiments.runner import run_experiment

    return run_experiment(
        cell.app, cell.config, threads=cell.threads, seed=cell.seed,
        machine_config=cell.machine_config, telemetry=cell.telemetry,
        **dict(cell.overrides)
    )


_run_cell = run_cell


def record_engine_metrics(metrics, engine):
    """Fold an engine's (and its cache's) counters into a registry.

    This is the bridge the CLI run summary uses: ``engine.*`` counters
    mirror :class:`EngineStats`, ``cache.*`` counters mirror
    :meth:`~repro.experiments.cache.ResultCache.stats`, and
    ``journal.*`` counters surface the storage-degradation accounting
    (lost writes, corrupt reads) so a sick disk shows up in every run
    summary instead of only in warnings.
    """
    for name, value in engine.stats.as_dict().items():
        metrics.counter("engine.{}".format(name)).inc(value)
    if engine.cache is not None:
        for name, value in engine.cache.stats().items():
            metrics.counter("cache.{}".format(name)).inc(value)
    journal = getattr(engine, "journal", None)
    if journal is not None:
        metrics.counter("journal.write_errors").inc(journal.write_errors)
        metrics.counter("journal.corrupt_reads").inc(journal.corrupt_reads)


def _chunk_worker(chunk, out_queue, task_fn, beat_interval_s=None):
    """Worker body: run a chunk of cells, posting each result as it
    completes so a later crash/timeout only loses unfinished cells.

    ``out_queue`` is a SimpleQueue: ``put`` writes synchronously (no
    feeder thread), so once a cell's put returns, its result survives
    even an immediate SIGKILL of this worker. With ``beat_interval_s``
    set, a daemon thread posts heartbeat messages onto the same queue
    so the supervisor's watchdog can tell a wedged worker from a slow
    one.
    """
    stop_beats = None
    if beat_interval_s is not None:
        stop_beats = start_beat_thread(out_queue, beat_interval_s)
    try:
        for index, cell in chunk:
            try:
                result = task_fn(cell)
            except BaseException as exc:
                out_queue.put((index, _ERR, (type(exc).__name__, str(exc))))
            else:
                out_queue.put((index, _OK, result))
    finally:
        if stop_beats is not None:
            stop_beats.set()


def cell_id(cell, index):
    """Stable journal identity for one submitted cell.

    Submission order is deterministic, so the index alone identifies
    the cell across an interrupt/resume; the app/config prefix is for
    humans reading the journal. The serve subsystem journals its
    campaign cells through the same function, so batch and served
    journals replay identically.
    """
    app = getattr(cell, "app", None)
    if app is not None:
        return "{}/{}#{}".format(app, getattr(cell, "config", "?"), index)
    return "cell#{}".format(index)


_cell_id = cell_id


def _fork_context():
    """The fork multiprocessing context, or None when unsupported.

    Fork is required (not just preferred): it inherits the parent's
    loaded modules and lets tests/task functions pass closures without
    pickling. Platforms without it degrade to the serial path.
    """
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except Exception:
        pass
    return None


@dataclass
class _WorkerState:
    process: Any
    out_queue: Any
    remaining: dict  # index -> cell, in dispatch order
    deadline: float


class ExperimentEngine:
    """Fan experiment cells out over worker processes, cached.

    Parameters
    ----------
    workers:
        Process count. ``None`` means ``os.cpu_count()``; ``1`` (the
        default) selects the serial in-process path.
    cache:
        ``None`` (no caching), ``True`` (default directory), a path, or
        a :class:`ResultCache`.
    timeout:
        Per-cell wall-clock budget in seconds (parallel path only — a
        serial in-process cell cannot be preempted). ``None`` disables.
    retries:
        Extra attempts granted to a cell whose worker timed out or
        crashed. Cells that *raise* are deterministic and never retried.
    strict:
        When True, ``run_cells``/``run_matrix`` raise
        :class:`~repro.errors.ExperimentError` if any cell ends in
        failure; when False, failures are returned in-place as
        :class:`CellFailure` records and the rest of the matrix
        completes.
    chunksize:
        Cells dispatched to a worker at a time. ``None`` auto-sizes to
        about four chunks per worker.
    backoff_base_s / backoff_cap_s / backoff_seed:
        Retried cells wait ``min(cap, base * 2**(retry-1))`` seconds
        (with deterministic seeded jitter, see :class:`RetryBackoff`)
        before redispatch, so a transiently-overloaded host is not
        hammered with immediate retries. ``backoff_base_s=0`` restores
        the old immediate-requeue behaviour.
    journal:
        Optional :class:`~repro.experiments.journal.RunJournal`; every
        cell's dispatch, completion, and failure is durably appended,
        with a checkpoint snapshot every ``checkpoint_every``
        completions, so a killed run can be resumed.
    watchdog:
        ``None`` (off), ``True`` (default policy), a beat interval in
        seconds, or a :class:`~repro.experiments.watchdog.
        WatchdogPolicy`. Parallel path only: workers emit heartbeats
        and a worker whose beats go stale is killed, the cell it was on
        requeued through the retry/backoff machinery (kind
        ``"stalled"`` once it strikes out).
    preemption:
        Any object with a boolean ``requested`` attribute — typically
        a :class:`~repro.experiments.preemption.PreemptionGuard`. Once
        truthy, the engine stops dispatching, drains in-flight workers
        until the guard's ``drain_deadline_s`` passes (then kills
        them), flushes the journal, and raises
        :class:`~repro.errors.CampaignInterrupted`.
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer` receiving the
        engine-level events (``WorkerStalled``, ``CheckpointWritten``).
    """

    def __init__(self, workers=1, cache=None, timeout=None, retries=1,
                 strict=False, chunksize=None, backoff_base_s=0.05,
                 backoff_cap_s=2.0, backoff_seed=0, journal=None,
                 watchdog=None, preemption=None, tracer=None,
                 checkpoint_every=8):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError("workers must be >= 1, got {}".format(workers))
        if timeout is not None and timeout <= 0:
            raise ConfigError("timeout must be positive or None")
        if retries < 0:
            raise ConfigError("retries must be non-negative")
        if chunksize is not None and chunksize < 1:
            raise ConfigError("chunksize must be >= 1")
        self.workers = workers
        self.cache = ResultCache.coerce(cache)
        self.timeout = timeout
        self.retries = retries
        self.strict = strict
        self.chunksize = chunksize
        RetryBackoff(backoff_base_s, backoff_cap_s, backoff_seed)  # validate
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.backoff_seed = backoff_seed
        if checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        self.journal = journal
        self.watchdog = WatchdogPolicy.coerce(watchdog)
        self.preemption = preemption
        self.tracer = tracer
        if journal is not None and tracer is not None:
            # Storage faults the journal degrades over ride the same
            # telemetry stream as every other engine event.
            journal.tracer = tracer
        self.checkpoint_every = checkpoint_every
        self.stats = EngineStats()
        #: Backoff delays applied to retries, in the order they were
        #: scheduled (accumulates across runs, like ``stats``).
        self.retry_delays = []
        #: Per-cell backoff history of the engine's most recent
        #: ``run_cells`` call: ``{index: [delay, ...]}``. A cell that
        #: exhausts every attempt lands in the journal as
        #: ``failed-permanent`` with exactly this list.
        self.cell_retry_delays = {}

    # ------------------------------------------------------------------
    # public API

    def run_cells(self, cells, task_fn=None):
        """Run cells, returning results in submission order.

        Each slot of the returned list is the task's result or a
        :class:`CellFailure`. With the default task (``task_fn=None``)
        the cache is consulted first and fed on success; a custom
        ``task_fn`` bypasses the cache (its inputs are not content-
        addressed).
        """
        cells = list(cells)
        self.stats.submitted += len(cells)
        results = [_PENDING] * len(cells)
        use_cache = self.cache is not None and task_fn is None
        self.cell_retry_delays = {}
        self._completions_since_checkpoint = 0
        pending = []
        for index, cell in enumerate(cells):
            if use_cache:
                key = cell.key()
                hit = self.cache.get(key, _PENDING)
                if hit is not _PENDING:
                    results[index] = hit
                    self.stats.cache_hits += 1
                    if self.journal is not None:
                        self.journal.record_completed(
                            _cell_id(cell, index), index=index, key=key,
                            cached=True,
                        )
                    continue
            pending.append(index)
        task = task_fn or _run_cell
        if pending:
            context = _fork_context()
            if self.workers > 1 and len(pending) > 1 and context is not None:
                self._run_parallel(
                    context, cells, pending, results, task, use_cache
                )
            else:
                self._run_serial(cells, pending, results, task, use_cache)
        if self.journal is not None:
            failures = sum(
                1 for r in results if isinstance(r, CellFailure)
            )
            self.journal.record_finished(
                completed=len(results) - failures, failed=failures,
            )
        if self.strict:
            failures = [r for r in results if isinstance(r, CellFailure)]
            if failures:
                raise ExperimentError(
                    "{} of {} cells failed: {}".format(
                        len(failures), len(cells),
                        "; ".join(f.describe() for f in failures[:5]),
                    ),
                    failures=failures,
                )
        return results

    def run_matrix(self, apps, configs=None, threads=64, seed=DEFAULT_SEED,
                   machine_config=None):
        """The full sweep as ``{app: {config: result-or-failure}}``."""
        from repro.experiments.configs import CONFIG_NAMES

        configs = tuple(configs or CONFIG_NAMES)
        unknown = [c for c in configs if c not in CONFIG_NAMES]
        if unknown:
            raise ConfigError(
                "unknown configuration(s) {}; choose from {}".format(
                    ", ".join(map(repr, unknown)), ", ".join(CONFIG_NAMES)
                )
            )
        apps = tuple(apps)
        cells = [
            ExperimentCell.make(
                app, config, threads=threads, seed=seed,
                machine_config=machine_config,
            )
            for app in apps
            for config in configs
        ]
        flat = self.run_cells(cells)
        matrix = {}
        position = 0
        for app in apps:
            row = {}
            for config in configs:
                row[config] = flat[position]
                position += 1
            matrix[app] = row
        return matrix

    # ------------------------------------------------------------------
    # crash-safety plumbing shared by both paths

    def _preempted(self):
        return self.preemption is not None and bool(
            getattr(self.preemption, "requested", False)
        )

    def _drain_deadline_s(self):
        return getattr(
            self.preemption, "drain_deadline_s", DEFAULT_DRAIN_DEADLINE_S
        )

    def _note_completion(self, results):
        """Checkpoint cadence: a journal snapshot every N completions."""
        if self.journal is None:
            return
        self._completions_since_checkpoint += 1
        if self._completions_since_checkpoint >= self.checkpoint_every:
            self._completions_since_checkpoint = 0
            done = sum(1 for r in results if r is not _PENDING)
            self.journal.checkpoint(done, len(results), tracer=self.tracer)

    def _raise_interrupted(self, results):
        """Journal the stop and raise the resumable interrupt."""
        done = sum(1 for r in results if r is not _PENDING)
        reason = getattr(self.preemption, "reason", "request")
        run_id = self.journal.run_id if self.journal is not None else ""
        if self.journal is not None:
            self.journal.record_interrupted(reason, done, len(results))
        raise CampaignInterrupted(
            "campaign preempted ({}) after {} of {} cells; "
            "resumable".format(reason, done, len(results)),
            run_id=run_id, completed=done, total=len(results),
            results=tuple(
                None if r is _PENDING else r for r in results
            ),
        )

    def _cache_store(self, key, value):
        """Feed the cache, surfacing a degraded (lost) store as a
        ``storage.fault`` telemetry event — the cache itself only
        counts and warns."""
        if self.cache.put(key, value):
            return
        if self.tracer is not None and self.tracer.enabled:
            from repro.telemetry.events import StorageFault

            self.tracer.emit(StorageFault(
                ts=0, op="cache-store", path=key,
                error=self.cache.last_write_error or "",
            ))

    # ------------------------------------------------------------------
    # serial path

    def _run_serial(self, cells, pending, results, task, use_cache):
        journal = self.journal
        for index in pending:
            if self._preempted():
                self._raise_interrupted(results)
            cell = cells[index]
            if journal is not None:
                journal.record_dispatched(_cell_id(cell, index), index=index)
            try:
                result = task(cell)
            except Exception as exc:
                results[index] = CellFailure(
                    cell=cell, kind="error",
                    error_type=type(exc).__name__, message=str(exc),
                )
                self.stats.failures += 1
                if journal is not None:
                    journal.record_failed_permanent(
                        _cell_id(cell, index), index=index, kind="error",
                        message="{}: {}".format(
                            type(exc).__name__, exc
                        ),
                    )
            else:
                results[index] = result
                self.stats.executed += 1
                key = None
                if use_cache:
                    key = cell.key()
                    self._cache_store(key, result)
                if journal is not None:
                    journal.record_completed(
                        _cell_id(cell, index), index=index, key=key,
                    )
                self._note_completion(results)

    # ------------------------------------------------------------------
    # parallel path

    def _chunks(self, cells, pending):
        """Initial work queue: ``(eligible_at, chunk)`` pairs.

        ``eligible_at`` is a ``time.monotonic()`` instant before which
        the chunk must not be dispatched; fresh work is eligible
        immediately (0.0) and only backoff-delayed retries carry a
        future instant.
        """
        size = self.chunksize
        if size is None:
            size = max(1, -(-len(pending) // (self.workers * 4)))
        work = deque()
        for start in range(0, len(pending), size):
            work.append(
                (0.0, [(i, cells[i]) for i in pending[start:start + size]])
            )
        return work

    def _run_parallel(self, context, cells, pending, results, task,
                      use_cache):
        work = self._chunks(cells, pending)
        attempts = {index: 1 for index in pending}
        active = []
        timeout = self.timeout if self.timeout is not None else float("inf")
        journal = self.journal
        watchdog = self.watchdog
        monitor = HeartbeatMonitor(watchdog) if watchdog is not None else None
        # Fresh backoff per parallel run so the retry schedule depends
        # only on the seed and the retry sequence, not engine history.
        backoff = RetryBackoff(
            self.backoff_base_s, self.backoff_cap_s, self.backoff_seed
        )

        def record(index, status, payload):
            if results[index] is not _PENDING:
                return  # late duplicate from a terminated worker
            if status == _OK:
                results[index] = payload
                self.stats.executed += 1
                key = None
                if use_cache:
                    key = cells[index].key()
                    self._cache_store(key, payload)
                if journal is not None:
                    journal.record_completed(
                        _cell_id(cells[index], index), index=index, key=key,
                    )
                self._note_completion(results)
            else:
                error_type, message = payload
                results[index] = CellFailure(
                    cell=cells[index], kind="error",
                    error_type=error_type, message=message,
                    attempts=attempts[index],
                )
                self.stats.failures += 1
                if journal is not None:
                    # A raising cell is deterministic — never retried —
                    # so an error here is already permanent.
                    journal.record_failed_permanent(
                        _cell_id(cells[index], index), index=index,
                        kind="error",
                        message="{}: {}".format(error_type, message),
                        attempts=attempts[index],
                        retry_delays=self.cell_retry_delays.get(index, []),
                    )

        def consume(state, message):
            index, status, payload = message
            state.remaining.pop(index, None)
            state.deadline = time.monotonic() + timeout
            record(index, status, payload)

        def poll(state):
            # Heartbeats ride the result queue; they feed the monitor
            # and are never surfaced as messages.
            try:
                while not state.out_queue.empty():
                    message = state.out_queue.get()
                    if message[0] == BEAT_INDEX and message[1] == BEAT:
                        if monitor is not None:
                            monitor.beat(state.process.pid)
                        continue
                    return message
            except (EOFError, OSError):
                pass
            return None

        def drain(state, budget):
            stop_at = time.monotonic() + budget
            while True:
                message = poll(state)
                if message is not None:
                    consume(state, message)
                elif time.monotonic() >= stop_at:
                    return
                else:
                    time.sleep(_POLL_S)

        def retire(index, cell, kind, message=""):
            if attempts[index] <= self.retries:
                delay = backoff.delay_for(attempts[index])
                self.stats.retries += 1
                self.retry_delays.append(delay)
                self.cell_retry_delays.setdefault(index, []).append(delay)
                if journal is not None:
                    journal.record_failed(
                        _cell_id(cell, index), index=index, kind=kind,
                        message=message, attempt=attempts[index],
                    )
                attempts[index] += 1
                work.append((time.monotonic() + delay, [(index, cell)]))
            else:
                results[index] = CellFailure(
                    cell=cell, kind=kind, message=message,
                    attempts=attempts[index],
                )
                self.stats.failures += 1
                if journal is not None:
                    journal.record_failed_permanent(
                        _cell_id(cell, index), index=index, kind=kind,
                        message=message, attempts=attempts[index],
                        retry_delays=self.cell_retry_delays.get(index, []),
                    )

        def launch():
            # One bounded pass: each queued chunk is examined at most
            # once, and chunks still inside their backoff window keep
            # their relative order at the back of the queue.
            now = time.monotonic()
            beat_interval = (
                watchdog.beat_interval_s if watchdog is not None else None
            )
            for _ in range(len(work)):
                if len(active) >= self.workers:
                    return
                eligible_at, chunk = work.popleft()
                if eligible_at > now:
                    work.append((eligible_at, chunk))
                    continue
                out_queue = context.SimpleQueue()
                process = context.Process(
                    target=_chunk_worker,
                    args=(chunk, out_queue, task, beat_interval),
                    daemon=True,
                )
                process.start()
                if monitor is not None:
                    monitor.register(process.pid)
                if journal is not None:
                    for index, cell in chunk:
                        journal.record_dispatched(
                            _cell_id(cell, index), index=index,
                            attempt=attempts[index],
                        )
                active.append(_WorkerState(
                    process=process,
                    out_queue=out_queue,
                    remaining=dict(chunk),
                    deadline=time.monotonic() + timeout,
                ))

        def stop(state):
            process = state.process
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():
                # SIGKILL also reaps workers SIGTERM cannot reach (a
                # SIGSTOPped process leaves TERM pending forever).
                process.kill()
                process.join(timeout=1.0)
            if monitor is not None:
                monitor.forget(process.pid)

        def requeue_innocents(state):
            # Cells behind the one that struck out never started; they
            # are requeued without an attempt charged.
            innocent = [
                (i, c) for i, c in state.remaining.items()
                if results[i] is _PENDING
            ]
            if innocent:
                work.append((0.0, innocent))

        def preempt_shutdown():
            # Stop dispatch, give in-flight workers the drain deadline
            # to finish their current cells, then kill the rest. Every
            # completion recorded during the drain reaches the cache
            # and journal as usual, so nothing finished is lost.
            work.clear()
            stop_at = time.monotonic() + self._drain_deadline_s()
            while active and time.monotonic() < stop_at:
                for state in list(active):
                    while True:
                        message = poll(state)
                        if message is None:
                            break
                        consume(state, message)
                    if not state.remaining or not state.process.is_alive():
                        state.process.join(timeout=1.0)
                        active.remove(state)
                if active:
                    time.sleep(_POLL_S)
            for state in list(active):
                stop(state)
                drain(state, _DRAIN_BUDGET_S)
                active.remove(state)
            self._raise_interrupted(results)

        try:
            launch()
            while active or work:
                if self._preempted():
                    preempt_shutdown()
                progressed = False
                for state in list(active):
                    while True:
                        message = poll(state)
                        if message is None:
                            break
                        consume(state, message)
                        progressed = True
                    if not state.remaining:
                        state.process.join(timeout=5.0)
                        if monitor is not None:
                            monitor.forget(state.process.pid)
                        active.remove(state)
                        progressed = True
                    elif not state.process.is_alive():
                        # Crashed mid-chunk: salvage queued results, then
                        # retry (or fail) the cells that never finished.
                        drain(state, _DRAIN_BUDGET_S)
                        for index, cell in list(state.remaining.items()):
                            retire(
                                index, cell, "crashed",
                                "worker exited with code {}".format(
                                    state.process.exitcode
                                ),
                            )
                        state.process.join(timeout=1.0)
                        if monitor is not None:
                            monitor.forget(state.process.pid)
                        active.remove(state)
                        progressed = True
                    elif time.monotonic() >= state.deadline:
                        # The chunk runs in order, so the first remaining
                        # cell is the one over budget; later cells never
                        # started and are requeued without penalty.
                        stuck = next(iter(state.remaining))
                        stop(state)
                        drain(state, _DRAIN_BUDGET_S)
                        if stuck in state.remaining:
                            cell = state.remaining.pop(stuck)
                            retire(
                                stuck, cell, "timeout",
                                "exceeded {:.3g}s".format(timeout),
                            )
                        requeue_innocents(state)
                        active.remove(state)
                        progressed = True
                    elif (
                        monitor is not None
                        and monitor.is_stale(state.process.pid)
                    ):
                        # Wedged worker: beats stopped (the process is
                        # frozen, not slow — a busy cell is the timeout
                        # branch's job). Kill it, strike the cell it
                        # was on, requeue the rest.
                        stale_s = monitor.staleness(state.process.pid)
                        pid = state.process.pid
                        monitor.declare_stall(pid)
                        self.stats.stalled += 1
                        if journal is not None:
                            journal.record_worker_stalled(
                                pid, sorted(state.remaining), stale_s,
                            )
                        if self.tracer is not None and self.tracer.enabled:
                            from repro.telemetry.events import WorkerStalled

                            self.tracer.emit(WorkerStalled(
                                ts=0, worker=pid,
                                cells=len(state.remaining),
                                stale_s=round(stale_s, 3),
                            ))
                        stop(state)
                        drain(state, _DRAIN_BUDGET_S)
                        stuck = next(iter(state.remaining), None)
                        if stuck is not None:
                            cell = state.remaining.pop(stuck)
                            retire(
                                stuck, cell, "stalled",
                                "no heartbeat for {:.2f}s".format(stale_s),
                            )
                        requeue_innocents(state)
                        active.remove(state)
                        progressed = True
                launch()
                if not progressed:
                    time.sleep(_POLL_S)
        finally:
            for state in active:
                stop(state)
