"""The five configurations of the paper's evaluation (Section 5.1).

========== ===== ====================================================
name       short meaning
========== ===== ====================================================
baseline     B   conventional sense-reversal spin barrier
thrifty-halt H   thrifty with Halt as the only sleep state
oracle-halt  O   Thrifty-Halt with perfect BIT prediction (derived)
thrifty      T   thrifty with all three sleep states
ideal        I   perfect prediction, all states, no flush (derived)
========== ===== ====================================================

``baseline``, ``thrifty-halt``, and ``thrifty`` run live simulations;
``oracle-halt`` and ``ideal`` are exact post-hoc replays of the Baseline
run (they never perturb timing — see :mod:`repro.sync.oracle`).
"""

from repro.config import DEFAULT_SLEEP_STATES, SLEEP1_HALT, ThriftyConfig
from repro.errors import ConfigError
from repro.sync import ConventionalBarrier, ThriftyBarrier

CONFIG_NAMES = ("baseline", "thrifty-halt", "oracle-halt", "thrifty", "ideal")

CONFIG_SHORT = {
    "baseline": "B",
    "thrifty-halt": "H",
    "oracle-halt": "O",
    "thrifty": "T",
    "ideal": "I",
}

LIVE_CONFIGS = ("baseline", "thrifty-halt", "thrifty")
DERIVED_CONFIGS = ("oracle-halt", "ideal")

#: Sleep-state menus of the derived (perfect-prediction) configurations.
ORACLE_STATES = {
    "oracle-halt": (SLEEP1_HALT,),
    "ideal": DEFAULT_SLEEP_STATES,
}


def thrifty_config_for(name, **overrides):
    """The :class:`~repro.config.ThriftyConfig` of a live configuration."""
    if name == "thrifty":
        return ThriftyConfig(**overrides)
    if name == "thrifty-halt":
        overrides.setdefault("sleep_states", (SLEEP1_HALT,))
        return ThriftyConfig(**overrides)
    raise ConfigError("{!r} has no thrifty config".format(name))


def barrier_factory_for(name, **overrides):
    """Barrier factory for a live configuration (see WorkloadRunner)."""
    if name == "baseline":
        def factory(system, domain, n_threads, pc, trace):
            return ConventionalBarrier(
                system, domain, n_threads, pc, trace=trace
            )
        return factory
    if name in ("thrifty", "thrifty-halt"):
        config = thrifty_config_for(name, **overrides)

        def factory(system, domain, n_threads, pc, trace):
            return ThriftyBarrier(
                system, domain, n_threads, pc, trace=trace, config=config
            )
        return factory
    raise ConfigError(
        "{!r} is not a live configuration; derive it from baseline".format(
            name
        )
    )
