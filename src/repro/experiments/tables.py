"""Tables 1, 2, and 3 of the paper.

Table 1 is a configuration echo plus *measured validation*: probe
transactions through the simulated machine must reproduce the published
round-trip latencies. Table 2 re-measures barrier imbalance per
application on the Baseline. Table 3 echoes the sleep states and grounds
them in watts via the TDPmax microbenchmark.
"""

from dataclasses import dataclass

from repro.config import DEFAULT_SLEEP_STATES, MachineConfig
from repro.energy.tdp import calibrate_tdp_max
from repro.energy.wattch import WattchModel
from repro.experiments.runner import DEFAULT_SEED, _run_live
from repro.machine import System
from repro.workloads.splash2 import (
    SPLASH2_NAMES,
    TABLE2_IMBALANCE,
    TABLE2_PROBLEM_SIZE,
)


@dataclass
class Table1Validation:
    """Measured latencies from probe transactions."""

    l1_round_trip_ns: int
    l2_round_trip_ns: int
    memory_access_ns: int
    network_one_hop_ns: int
    network_diameter_ns: int


def _probe_latencies(system):
    """Measure L1/L2 round trips with real transactions."""
    sim = system.sim
    memsys = system.memsys
    samples = {}

    def probe(node):
        addr = node.private_addr(0)
        yield from node.load(addr)  # install in both levels
        started = sim.now
        yield from node.load(addr)  # L1 hit
        samples["l1"] = sim.now - started
        # Evict the line from the L1 set (2-way) with two conflicting
        # lines; it remains in the larger L2.
        n_l1_sets = system.config.l1.n_sets
        line_bytes = system.config.line_bytes
        for way in (1, 2):
            yield from node.load(
                node.private_addr(way * n_l1_sets * line_bytes)
            )
        started = sim.now
        yield from node.load(addr)  # L2 hit
        samples["l2"] = sim.now - started

    system.spawn_thread(0, probe(system.nodes[0]))
    system.run()
    return samples, memsys


def table1_rows(machine_config=None):
    """Configuration echo + measured probe latencies.

    Returns ``(rows, Table1Validation)`` where rows mirror Table 1's
    (parameter, value) layout.
    """
    config = machine_config or MachineConfig()
    system = System(config)
    samples, memsys = _probe_latencies(system)
    network = memsys.network
    validation = Table1Validation(
        l1_round_trip_ns=samples["l1"],
        l2_round_trip_ns=samples["l2"],
        memory_access_ns=memsys.memory_access_ns,
        network_one_hop_ns=network.latency_ns(0, 1),
        network_diameter_ns=network.latency_ns(0, config.n_nodes - 1),
    )
    rows = [
        ("Processor", "{} MHz, 6-issue dynamic".format(config.cpu_freq_mhz)),
        ("L1 cache", "{} kB, {} B lines, {}-way, RT {} ns".format(
            config.l1.size_bytes // 1024, config.l1.line_bytes,
            config.l1.ways, config.l1.round_trip_ns)),
        ("L2 cache", "{} kB, {} B lines, {}-way, RT {} ns".format(
            config.l2.size_bytes // 1024, config.l2.line_bytes,
            config.l2.ways, config.l2.round_trip_ns)),
        ("Memory bus", "{} MHz, split trans., {} B wide".format(
            config.bus_freq_mhz, config.bus_width_bytes)),
        ("Main memory", "interleaved, {} ns row miss".format(
            config.memory_row_miss_ns)),
        ("Network", "hypercube, wormhole"),
        ("Router", "{} MHz, pipelined".format(
            config.network.router_freq_mhz)),
        ("Pin-to-pin latency", "{} ns".format(config.network.pin_to_pin_ns)),
        ("Endpoint (un)marshaling", "{} ns".format(
            config.network.marshal_ns)),
        ("System size", "{} nodes".format(config.n_nodes)),
    ]
    return rows, validation


def table2_rows(threads=64, seed=DEFAULT_SEED, apps=None):
    """Re-measure Table 2: barrier imbalance per application.

    Returns rows of (application, problem size, paper %, measured %).
    """
    apps = tuple(apps or SPLASH2_NAMES)
    rows = []
    for app in apps:
        run = _run_live(app, "baseline", threads, seed, None, {})
        rows.append(
            (
                app,
                TABLE2_PROBLEM_SIZE[app],
                100.0 * TABLE2_IMBALANCE[app],
                100.0 * run.barrier_imbalance(),
            )
        )
    return rows


def table3_rows():
    """Table 3 plus the TDP-grounded absolute powers of our model.

    Returns rows of (state, savings %, latency us, snoop?, V-reduction?,
    residency watts) and the calibrated TDPmax.
    """
    model = WattchModel()
    tdp = calibrate_tdp_max(model).tdp_max_watts
    rows = []
    for state in DEFAULT_SLEEP_STATES:
        rows.append(
            (
                state.name,
                100.0 * state.power_savings,
                state.transition_latency_ns / 1_000.0,
                "Yes" if state.snoops else "No",
                "Yes" if state.voltage_reduction else "No",
                state.residency_power(tdp),
            )
        )
    return rows, tdp
