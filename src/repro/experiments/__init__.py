"""The evaluation harness: every table and figure of the paper.

* :mod:`repro.experiments.configs` — the five configurations of
  Section 5.1 (Baseline, Thrifty-Halt, Oracle-Halt, Thrifty, Ideal);
* :mod:`repro.experiments.runner` — runs (application x configuration)
  cells; oracle configurations are derived exactly from the Baseline
  run (see :mod:`repro.sync.oracle`);
* :mod:`repro.experiments.metrics` — normalization and the headline
  aggregates of Section 5.1;
* :mod:`repro.experiments.tables` — Tables 1, 2, 3;
* :mod:`repro.experiments.figures` — Figures 3, 5, 6;
* :mod:`repro.experiments.report` — plain-text rendering;
* :mod:`repro.experiments.parallel` — the process-pool engine fanning
  cells over workers with deterministic ordering and fault isolation;
* :mod:`repro.experiments.cache` — the content-addressed on-disk
  result cache that makes warm re-runs free;
* :mod:`repro.experiments.journal` — the durable append-only run
  journal that makes killed campaigns resumable;
* :mod:`repro.experiments.watchdog` — the hung-worker heartbeat
  watchdog (kill and requeue on stale beats);
* :mod:`repro.experiments.preemption` — SIGTERM/SIGINT handling that
  turns preemption into a graceful, resumable stop.
"""

from repro.experiments.cache import ResultCache, content_key
from repro.experiments.configs import (
    CONFIG_NAMES,
    CONFIG_SHORT,
    DERIVED_CONFIGS,
    LIVE_CONFIGS,
)
from repro.experiments.journal import RunJournal, spec_hash
from repro.experiments.parallel import (
    CellFailure,
    ExperimentCell,
    ExperimentEngine,
)
from repro.experiments.preemption import EXIT_RESUMABLE, PreemptionGuard
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_matrix,
)
from repro.experiments.watchdog import HeartbeatMonitor, WatchdogPolicy

__all__ = [
    "CONFIG_NAMES",
    "CONFIG_SHORT",
    "CellFailure",
    "DERIVED_CONFIGS",
    "EXIT_RESUMABLE",
    "ExperimentCell",
    "ExperimentEngine",
    "ExperimentResult",
    "HeartbeatMonitor",
    "LIVE_CONFIGS",
    "PreemptionGuard",
    "ResultCache",
    "RunJournal",
    "WatchdogPolicy",
    "content_key",
    "run_experiment",
    "run_matrix",
    "spec_hash",
]
