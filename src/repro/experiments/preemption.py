"""Graceful preemption: turn SIGTERM/SIGINT into a resumable stop.

Production schedulers preempt with SIGTERM and humans with Ctrl-C;
either way a campaign should stop *cleanly*: no new dispatch, in-flight
workers drained (or killed once the drain deadline passes), journal and
telemetry flushed, and a distinct "resumable" exit status so the caller
knows ``--resume`` will pick up exactly where it stopped.

:class:`PreemptionGuard` is the cooperative half: installed as a
context manager, the **first** signal merely sets :attr:`requested` —
the campaign notices at its next check point (between cells serially,
between poll rounds in parallel) and shuts down gracefully. A
**second** signal means "now": the original handlers are restored and
:class:`KeyboardInterrupt` is raised immediately.

Anything with a truthy/falsy ``requested`` attribute satisfies the
engine's preemption protocol, so tests drive deterministic interrupts
with a plain stub instead of real signals.
"""

import signal
from dataclasses import dataclass, field

#: Process exit status for a gracefully preempted, resumable campaign
#: (0 = clean, 1 = violation/failure, 2 = usage error).
EXIT_RESUMABLE = 3

#: Seconds the engine keeps draining in-flight workers after a
#: preemption request before killing the survivors.
DEFAULT_DRAIN_DEADLINE_S = 5.0


@dataclass
class PreemptionGuard:
    """Latches the first SIGTERM/SIGINT; escalates on the second.

    ``signals`` accumulates the names of delivered signals (the journal
    records the first as the interruption reason). Use as::

        with PreemptionGuard() as guard:
            engine = ExperimentEngine(..., preemption=guard)
            ...

    Without :meth:`install` (or outside the ``with`` block) the guard
    is a plain flag object — handlers are only ever swapped while
    installed, and always restored.
    """

    drain_deadline_s: float = DEFAULT_DRAIN_DEADLINE_S
    requested: bool = False
    signals: list = field(default_factory=list)
    _previous: dict = field(default_factory=dict, repr=False)

    def _handle(self, signum, frame):
        name = signal.Signals(signum).name
        self.signals.append(name)
        if self.requested:
            # Second signal: the operator means it. Put the default
            # disposition back and die the classic way.
            self.uninstall()
            raise KeyboardInterrupt(name)
        self.requested = True

    @property
    def reason(self):
        """What asked us to stop ('SIGTERM', 'SIGINT', or 'request')."""
        return self.signals[0] if self.signals else "request"

    def install(self, signums=(signal.SIGTERM, signal.SIGINT)):
        """Install latching handlers; no-op for already-held signals."""
        for signum in signums:
            if signum in self._previous:
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):
                # Not the main thread (or an unsupported signal):
                # cooperative checks still work, signals just won't
                # reach us. Degrade silently.
                pass
        return self

    def uninstall(self):
        """Restore every handler this guard displaced."""
        while self._previous:
            signum, previous = self._previous.popitem()
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass

    def __enter__(self):
        return self.install()

    def __exit__(self, exc_type, exc, tb):
        self.uninstall()
        return False
