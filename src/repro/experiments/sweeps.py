"""Parameter sweeps beyond the paper's fixed 64-processor point.

The paper evaluates a single machine size; a natural question for a
user adopting the thrifty barrier is how its benefit scales with the
processor count (imbalance — and hence savings — grows with P for
straggler-dominated codes) and with the sleep-state transition
latencies (future processors may enter deep states faster).
"""

from dataclasses import dataclass, replace
from typing import List

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.experiments.metrics import energy_savings, slowdown
from repro.experiments.runner import DEFAULT_SEED, run_app


@dataclass
class ScalingPoint:
    """Measurements of one (app, thread-count) cell."""

    app: str
    threads: int
    imbalance: float
    thrifty_energy_savings: float
    thrifty_slowdown: float
    ideal_energy_savings: float


_SCALING_CONFIGS = ("baseline", "thrifty", "ideal")


def _scaling_point(app, threads, results):
    baseline = results["baseline"]
    return ScalingPoint(
        app=app,
        threads=threads,
        imbalance=baseline.barrier_imbalance,
        thrifty_energy_savings=energy_savings(
            results["thrifty"], baseline
        ),
        thrifty_slowdown=slowdown(results["thrifty"], baseline),
        ideal_energy_savings=energy_savings(
            results["ideal"], baseline
        ),
    )


def thread_scaling(
    app, thread_counts=(8, 16, 32, 64), seed=DEFAULT_SEED,
    workers=1, cache=None,
) -> List[ScalingPoint]:
    """Run one application across machine sizes.

    Each point uses a machine with exactly ``threads`` nodes (the
    paper's dedicated mode). ``workers``/``cache`` fan the
    (size x configuration) cells out through the parallel engine;
    the defaults keep the classic serial loop.
    """
    thread_counts = tuple(thread_counts)
    for threads in thread_counts:
        if threads < 2 or threads & (threads - 1):
            raise ConfigError(
                "thread counts must be powers of two >= 2 (hypercube)"
            )
    if workers == 1 and cache is None:
        return [
            _scaling_point(
                app, threads,
                run_app(
                    app, threads=threads, seed=seed,
                    machine_config=MachineConfig(n_nodes=threads),
                    configs=_SCALING_CONFIGS,
                ),
            )
            for threads in thread_counts
        ]
    from repro.experiments.parallel import ExperimentCell, ExperimentEngine

    engine = ExperimentEngine(workers=workers, cache=cache, strict=True)
    cells = [
        ExperimentCell.make(
            app, config, threads=threads, seed=seed,
            machine_config=MachineConfig(n_nodes=threads),
        )
        for threads in thread_counts
        for config in _SCALING_CONFIGS
    ]
    flat = engine.run_cells(cells)
    points = []
    for position, threads in enumerate(thread_counts):
        chunk = flat[
            position * len(_SCALING_CONFIGS):
            (position + 1) * len(_SCALING_CONFIGS)
        ]
        points.append(
            _scaling_point(app, threads, dict(zip(_SCALING_CONFIGS, chunk)))
        )
    return points


def scaled_states(states, latency_factor):
    """A sleep-state table with transition latencies scaled by
    ``latency_factor`` (e.g. 0.5 = a future CPU entering states twice
    as fast)."""
    if latency_factor <= 0:
        raise ConfigError("latency factor must be positive")
    return tuple(
        replace(
            state,
            transition_latency_ns=max(
                1, int(state.transition_latency_ns * latency_factor)
            ),
        )
        for state in states
    )


def latency_scaling(
    app, factors=(0.25, 0.5, 1.0, 2.0), threads=64, seed=DEFAULT_SEED,
    workers=1, cache=None,
):
    """Thrifty savings as a function of transition-latency scaling.

    Returns ``[(factor, energy_savings, slowdown)]``. As with
    :func:`thread_scaling`, ``workers``/``cache`` route the cells
    through the parallel engine.
    """
    from repro.config import DEFAULT_SLEEP_STATES
    from repro.experiments.parallel import ExperimentCell, ExperimentEngine

    factors = tuple(factors)
    engine = ExperimentEngine(workers=workers, cache=cache, strict=True)
    cells = [ExperimentCell.make(app, "baseline", threads=threads, seed=seed)]
    cells.extend(
        ExperimentCell.make(
            app, "thrifty", threads=threads, seed=seed,
            sleep_states=scaled_states(DEFAULT_SLEEP_STATES, factor),
        )
        for factor in factors
    )
    flat = engine.run_cells(cells)
    baseline = flat[0]
    return [
        (
            factor,
            energy_savings(result, baseline),
            slowdown(result, baseline),
        )
        for factor, result in zip(factors, flat[1:])
    ]
