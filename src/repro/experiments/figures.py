"""Data series for the paper's figures.

Figures 1, 2, and 4 are schematics (implemented as code and covered by
tests); Figure 3 and the two results figures (5, 6) are regenerated
here as row dictionaries that the report module renders and the
benchmark harness prints.
"""

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.experiments.metrics import (
    SEGMENTS,
    normalized_breakdown,
    normalized_total,
)
from repro.experiments.runner import DEFAULT_SEED, _run_live

#: The thread Figure 3 observes ("a randomly picked thread, the same
#: one in all twelve barrier instances"). Fixed for reproducibility.
FIGURE3_THREAD = 17

#: Loop iterations shown in Figure 3 ("four consecutive iterations");
#: we skip iteration 0, the conventional warm-up.
FIGURE3_ITERATIONS = (1, 2, 3, 4)


@dataclass
class Figure3Row:
    """One bar of Figure 3: one barrier instance seen by one thread."""

    iteration: int
    barrier: str
    barrier_index: int
    bit_norm: float
    compute_norm: float
    bst_norm: float


def figure3_rows(
    threads=64, seed=DEFAULT_SEED, thread_id=FIGURE3_THREAD,
    iterations=FIGURE3_ITERATIONS,
):
    """Regenerate Figure 3 from a Baseline FMM run.

    Per instance, from the observing thread's perspective: BIT is the
    gap between consecutive releases, BST its own stall, Compute the
    difference. All normalized to the mean BIT across every instance of
    the run.
    """
    run = _run_live("fmm", "baseline", threads, seed, None, {})
    records = run.trace.released_instances()
    if not records:
        raise ConfigError("FMM run produced no released barriers")
    n_phases = 3  # fmm.b1, fmm.b2, fmm.b3 per loop iteration
    releases = [record.release_ts for record in records]
    bits = [
        releases[i] - (releases[i - 1] if i else 0)
        for i in range(len(records))
    ]
    mean_bit = sum(bits) / len(bits)
    rows: List[Figure3Row] = []
    for iteration in iterations:
        for phase in range(n_phases):
            index = iteration * n_phases + phase
            if index >= len(records):
                raise ConfigError(
                    "iteration {} exceeds the run length".format(iteration)
                )
            record = records[index]
            stall = record.stall_ns(thread_id) or 0
            bit = bits[index]
            rows.append(
                Figure3Row(
                    iteration=iteration,
                    barrier=record.pc,
                    barrier_index=phase + 1,
                    bit_norm=bit / mean_bit,
                    compute_norm=(bit - stall) / mean_bit,
                    bst_norm=stall / mean_bit,
                )
            )
    return rows


def figure5_rows(matrix):
    """Normalized energy bars: one row per (app, config), with the four
    stacked segments as percentages of the app's Baseline energy."""
    return _result_rows(matrix, kind="energy")


def figure6_rows(matrix):
    """Normalized execution-time bars, same layout as Figure 5."""
    return _result_rows(matrix, kind="time")


def _result_rows(matrix, kind):
    rows = []
    for app, by_config in matrix.items():
        baseline = by_config.get("baseline")
        if baseline is None:
            raise ConfigError(
                "matrix for {!r} lacks a baseline run".format(app)
            )
        for config, result in by_config.items():
            breakdown = normalized_breakdown(result, baseline, kind)
            row = {
                "app": app,
                "config": config,
                "total": normalized_total(result, baseline, kind),
            }
            if kind == "time":
                # The bar height the paper plots is wall-clock execution
                # time; the segments are aggregate CPU-time shares.
                row["wall"] = (
                    100.0
                    * result.execution_time_ns
                    / baseline.execution_time_ns
                )
            for segment in SEGMENTS:
                row[segment] = breakdown[segment]
            rows.append(row)
    return rows
