"""Hung-worker watchdog: heartbeats, staleness policy, supervision.

The engine's per-cell *timeout* bounds a cell that is running but too
slow — a busy loop, a pathological input. It cannot catch a worker
that stopped *executing* entirely: wedged in a native call, SIGSTOPped,
swapped to death, or frozen by a cgroup. Such a worker posts nothing,
so the timeout eventually fires — but only after the full per-cell
budget, and with no signal distinguishing "slow" from "dead".

The watchdog closes that gap. Each worker runs a tiny daemon thread
that posts a **heartbeat** onto its result queue every
``beat_interval_s``; the supervisor notes beat arrival times in a
:class:`HeartbeatMonitor` and, when a worker's beats go stale
(``stale_after_s`` without one), kills it and requeues its unfinished
cells through the engine's normal retry machinery —
:class:`~repro.experiments.parallel.RetryBackoff` delays, attempt
accounting, and exclusion as ``failed-permanent`` once a cell has
struck out ``retries + 1`` times.

A beat thread is pure liveness: it beats as long as the interpreter
schedules threads. That is exactly the right signal — the failure
modes above freeze the whole process, beat thread included, while a
pure-Python infinite loop (which still beats) stays the per-cell
timeout's job.
"""

import threading
import time
from dataclasses import dataclass

from repro.errors import ConfigError

#: Queue index reserved for heartbeat messages (never a real cell).
BEAT_INDEX = -1

#: Message status tag for heartbeats (cells use "ok"/"error").
BEAT = "beat"


@dataclass(frozen=True)
class WatchdogPolicy:
    """When workers beat and when the supervisor declares them dead.

    ``stale_after_s`` must comfortably exceed ``beat_interval_s``:
    queue polling runs at the engine's poll cadence, so a healthy
    worker's beats can be observed a poll or two late. The default
    tenfold margin keeps false stalls out of loaded CI machines.
    """

    beat_interval_s: float = 0.1
    stale_after_s: float = 1.0

    def __post_init__(self):
        if self.beat_interval_s <= 0:
            raise ConfigError("beat interval must be positive")
        if self.stale_after_s <= self.beat_interval_s:
            raise ConfigError(
                "stale_after_s ({}) must exceed beat_interval_s ({})".format(
                    self.stale_after_s, self.beat_interval_s
                )
            )

    @classmethod
    def coerce(cls, value):
        """Normalize the engine's ``watchdog=`` argument.

        ``None``/``False`` → no watchdog; ``True`` → defaults; a number
        → that beat interval with the default tenfold staleness margin;
        a policy passes through.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, (int, float)):
            return cls(
                beat_interval_s=float(value),
                stale_after_s=10.0 * float(value),
            )
        raise ConfigError(
            "watchdog must be None, True, a beat interval in seconds, or "
            "a WatchdogPolicy; got {!r}".format(value)
        )


class HeartbeatMonitor:
    """Supervisor-side beat bookkeeping, clock-injectable for tests.

    Workers are tracked by an opaque id (the engine uses the worker
    process's pid). The monitor only *observes*; killing and requeueing
    stay with the engine, which owns the processes.
    """

    def __init__(self, policy, clock=time.monotonic):
        self.policy = policy
        self._clock = clock
        self._last_beat = {}
        #: Total stall declarations over this monitor's lifetime.
        self.stalls = 0

    def register(self, worker):
        """Start tracking a worker; registration counts as a beat (a
        freshly forked worker has had no chance to beat yet)."""
        self._last_beat[worker] = self._clock()

    def beat(self, worker):
        self._last_beat[worker] = self._clock()

    def forget(self, worker):
        self._last_beat.pop(worker, None)

    def staleness(self, worker):
        """Seconds since the worker's last beat (0.0 if untracked)."""
        last = self._last_beat.get(worker)
        if last is None:
            return 0.0
        return max(0.0, self._clock() - last)

    def is_stale(self, worker):
        return self.staleness(worker) >= self.policy.stale_after_s

    def workers(self):
        """Every worker currently tracked, in registration-stable
        sorted order."""
        return tuple(sorted(self._last_beat, key=repr))

    def stale_workers(self):
        """The tracked workers whose beats have gone stale right now —
        the set a supervising pool should kill and replace."""
        return tuple(w for w in self.workers() if self.is_stale(w))

    def declare_stall(self, worker):
        """Record one stall verdict and stop tracking the worker."""
        self.stalls += 1
        self.forget(worker)


def start_beat_thread(out_queue, interval_s):
    """Worker-side heartbeat: post ``(BEAT_INDEX, BEAT, n)`` onto the
    result queue every ``interval_s`` until the returned event is set.

    The thread is a daemon, so a worker that finishes its chunk exits
    without joining it; the supervisor ignores beats from workers it
    has already retired.
    """
    stop = threading.Event()

    def loop():
        count = 0
        while not stop.wait(interval_s):
            count += 1
            try:
                out_queue.put((BEAT_INDEX, BEAT, count))
            except Exception:
                return  # queue torn down; the worker is exiting anyway

    thread = threading.Thread(target=loop, daemon=True, name="heartbeat")
    thread.start()
    return stop
