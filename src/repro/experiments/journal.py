"""Durable append-only run journal for crash-safe campaigns.

A long sweep or chaos campaign dies to preemption, OOM kills, and hung
workers in production; everything not yet on disk is lost. The journal
makes every campaign restartable:

* a **run directory** (``<root>/<run_id>/``) holds an atomically
  written ``spec.json`` (the campaign's full parameter set plus its
  canonical hash), an append-only ``journal.jsonl`` of per-cell
  lifecycle records, an atomically replaced ``checkpoint.json``
  progress snapshot, and a ``results/`` payload store for campaigns
  whose outputs are not content-addressed elsewhere (chaos reports);
* every journal line is flushed and fsynced before the append returns,
  so a record survives an immediate SIGKILL of the writer;
* replay tolerates a torn tail: a truncated final line (the crash
  happened mid-append) is ignored, never an error;
* ``spec.json``, ``checkpoint.json``, and every payload are written
  with the tmp-file + ``os.replace`` idiom (:func:`atomic_write_bytes`),
  so readers only ever observe complete files.

Resume (``repro <artifact> --resume <run_id>``, ``repro chaos
--resume``) opens the journal, verifies the new invocation's spec hash
against the recorded one (a resumed run must be the *same* campaign),
and reconstructs which cells already completed; the engine then skips
them via the result cache / payload store, byte-identically to an
uninterrupted run.
"""

import hashlib
import json
import os
import pickle
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.experiments.cache import default_cache_dir

#: Environment variable overriding the default journal root.
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

_SPEC_FILE = "spec.json"
_JOURNAL_FILE = "journal.jsonl"
_CHECKPOINT_FILE = "checkpoint.json"
_RESULTS_DIR = "results"

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Journal record kinds, for reference and validation in tests.
RECORD_KINDS = (
    "dispatched",
    "completed",
    "failed",
    "failed-permanent",
    "worker-stalled",
    "checkpoint",
    "interrupted",
    "cancelled",
    "resumed",
    "finished",
)


def default_journal_root():
    """``$REPRO_JOURNAL_DIR`` if set, else ``<cache dir>/runs``."""
    env = os.environ.get(JOURNAL_DIR_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "runs"


def list_run_ids(root=None):
    """Run ids of every journal under ``root``, sorted.

    A directory counts as a journal when it holds a ``spec.json``; the
    campaign service uses this on startup to find in-flight runs a
    killed server left behind.
    """
    root = Path(root) if root else default_journal_root()
    if not root.is_dir():
        return []
    return sorted(
        entry.name
        for entry in root.iterdir()
        if (entry / _SPEC_FILE).is_file() and _RUN_ID_RE.match(entry.name)
    )


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    Readers never observe a partial file: they see either the old
    content or the new content. With ``fsync`` (the default) the data
    is forced to disk before the rename, so even a crash straddling the
    replace leaves a complete file behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path, text, fsync=True):
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def spec_hash(spec):
    """Canonical hash of a campaign spec (a JSON-serializable dict).

    Two invocations describe the same campaign exactly when their spec
    hashes match; resume refuses to continue a journal under a
    different spec.
    """
    text = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_id_for(spec):
    """Deterministic default run id: ``run-<spec-hash prefix>``."""
    return "run-" + spec_hash(spec)[:12]


@dataclass
class JournalState:
    """The reconstructed state of a run after :meth:`RunJournal.replay`.

    ``completed`` maps cell id to its last ``completed`` record,
    ``failed_permanent`` to its ``failed-permanent`` record (cleared if
    a later attempt — e.g. after a resume with more retries —
    completed). Counters summarize the record stream.
    """

    spec: dict = field(default_factory=dict)
    spec_hash: str = ""
    completed: dict = field(default_factory=dict)
    failed_permanent: dict = field(default_factory=dict)
    dispatches: int = 0
    stalls: int = 0
    interruptions: int = 0
    cancellations: int = 0
    resumes: int = 0
    checkpoints: int = 0
    finished: bool = False
    torn_tail: bool = False

    @property
    def completed_ids(self):
        return set(self.completed)


class RunJournal:
    """One campaign's durable on-disk record.

    Use :meth:`create` for a fresh run and :meth:`open` to resume an
    existing one; the constructor itself only binds paths.
    """

    def __init__(self, run_id, root=None):
        if not _RUN_ID_RE.match(run_id):
            raise ConfigError(
                "run id must be 1-64 chars of letters, digits, '.', '_', "
                "or '-' (got {!r})".format(run_id)
            )
        self.run_id = run_id
        self.root = Path(root) if root else default_journal_root()
        self.run_dir = self.root / run_id
        self._seq = 0

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def create(cls, spec, run_id=None, root=None):
        """Start a fresh journaled run; refuses to clobber an existing
        journal (resume that instead)."""
        journal = cls(run_id or run_id_for(spec), root=root)
        if journal.exists():
            raise ConfigError(
                "journal for run {!r} already exists under {}; resume it "
                "or choose another --run-id".format(
                    journal.run_id, journal.root
                )
            )
        journal.run_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            journal.run_dir / _SPEC_FILE,
            json.dumps(
                {"spec": spec, "spec_hash": spec_hash(spec)},
                sort_keys=True, indent=2,
            ) + "\n",
        )
        return journal

    @classmethod
    def open(cls, run_id, root=None):
        """Bind to an existing journal; raises if there is none."""
        journal = cls(run_id, root=root)
        if not journal.exists():
            raise ConfigError(
                "no journal for run {!r} under {}".format(
                    run_id, journal.root
                )
            )
        return journal

    def exists(self):
        return (self.run_dir / _SPEC_FILE).is_file()

    def spec(self):
        """The recorded spec document ``{"spec": ..., "spec_hash": ...}``."""
        with open(self.run_dir / _SPEC_FILE, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def verify_spec(self, spec):
        """Refuse to resume under a different campaign spec."""
        recorded = self.spec()
        if spec_hash(spec) != recorded["spec_hash"]:
            raise ConfigError(
                "run {!r} was journaled with a different campaign spec "
                "(recorded hash {}, invocation hash {}); resume must use "
                "identical apps/configs/threads/seed".format(
                    self.run_id,
                    recorded["spec_hash"][:12],
                    spec_hash(spec)[:12],
                )
            )
        return recorded["spec"]

    # ------------------------------------------------------------------
    # append-only record stream

    def append(self, record, **fields):
        """Durably append one record line (flush + fsync before return)."""
        if record not in RECORD_KINDS:
            raise ConfigError(
                "unknown journal record kind {!r}; choose from {}".format(
                    record, ", ".join(RECORD_KINDS)
                )
            )
        self._seq += 1
        body = {"record": record, "seq": self._seq,
                "t": round(time.time(), 3)}
        body.update(fields)
        line = json.dumps(body, sort_keys=True, separators=(",", ":"))
        self.run_dir.mkdir(parents=True, exist_ok=True)
        with open(self.run_dir / _JOURNAL_FILE, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # Per-cell lifecycle -------------------------------------------------

    def record_dispatched(self, cell_id, index=None, attempt=1, key=None):
        self.append(
            "dispatched", cell=cell_id, index=index, attempt=attempt,
            key=key,
        )

    def record_completed(self, cell_id, index=None, key=None, cached=False):
        self.append(
            "completed", cell=cell_id, index=index, key=key, cached=cached,
        )

    def record_failed(self, cell_id, index=None, kind="error", message="",
                      attempt=1):
        self.append(
            "failed", cell=cell_id, index=index, kind=kind,
            message=message, attempt=attempt,
        )

    def record_failed_permanent(self, cell_id, index=None, kind="error",
                                message="", attempts=1, retry_delays=()):
        """A cell exhausted every retry; its full backoff history rides
        along so post-mortems can see the schedule it was given."""
        self.append(
            "failed-permanent", cell=cell_id, index=index, kind=kind,
            message=message, attempts=attempts,
            retry_delays=list(retry_delays),
        )

    def record_worker_stalled(self, worker, cells, stale_s):
        self.append(
            "worker-stalled", worker=worker, cells=list(cells),
            stale_s=round(stale_s, 3),
        )

    def record_interrupted(self, reason, completed, total):
        self.append(
            "interrupted", reason=reason, completed=completed, total=total,
        )

    def record_cancelled(self, reason, completed, total):
        """The campaign was cancelled *deliberately* (as opposed to
        ``interrupted``, which marks a preempted-but-resumable stop):
        a restarted server must not resume it."""
        self.append(
            "cancelled", reason=reason, completed=completed, total=total,
        )

    def record_resumed(self, completed, remaining):
        self.append("resumed", completed=completed, remaining=remaining)

    def record_finished(self, completed, failed):
        self.append("finished", completed=completed, failed=failed)

    # ------------------------------------------------------------------
    # checkpoint snapshot

    def checkpoint(self, completed, total, tracer=None):
        """Atomically replace ``checkpoint.json`` and journal the event.

        With a ``tracer`` (enabled), a
        :class:`~repro.telemetry.events.CheckpointWritten` event is
        emitted so campaign observability rides the same stream as
        everything else.
        """
        atomic_write_text(
            self.run_dir / _CHECKPOINT_FILE,
            json.dumps(
                {"run_id": self.run_id, "completed": completed,
                 "total": total},
                sort_keys=True, indent=2,
            ) + "\n",
        )
        self.append("checkpoint", completed=completed, total=total)
        if tracer is not None and tracer.enabled:
            from repro.telemetry.events import CheckpointWritten

            tracer.emit(CheckpointWritten(
                ts=0, run_id=self.run_id, completed=completed, total=total,
            ))

    def read_checkpoint(self):
        """The last checkpoint snapshot, or ``None`` if never written."""
        path = self.run_dir / _CHECKPOINT_FILE
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    # payload store (campaigns without a content-addressed cache)

    def _payload_path(self, cell_id):
        digest = hashlib.sha256(cell_id.encode("utf-8")).hexdigest()
        return self.run_dir / _RESULTS_DIR / (digest + ".pkl")

    def store_payload(self, cell_id, payload):
        """Atomically persist one cell's output under the run."""
        atomic_write_bytes(
            self._payload_path(cell_id),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def load_payload(self, cell_id, default=None):
        """Load a persisted cell output; corruption is a miss, like the
        result cache, so a torn write can only cost a re-run."""
        path = self._payload_path(cell_id)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return default
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return default

    # ------------------------------------------------------------------
    # replay

    def replay(self):
        """Reconstruct a :class:`JournalState` from the record stream.

        Crash-consistent: a truncated final line is skipped and flagged
        (``torn_tail``); the writer fsyncs every append, so anything
        before the tail is complete.
        """
        state = JournalState()
        try:
            document = self.spec()
            state.spec = document.get("spec", {})
            state.spec_hash = document.get("spec_hash", "")
        except (OSError, ValueError):
            pass
        path = self.run_dir / _JOURNAL_FILE
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
        except OSError:
            return state
        for position, line in enumerate(lines):
            if not line:
                continue
            try:
                body = json.loads(line)
            except ValueError:
                # Only the final (torn) line may be malformed; anything
                # earlier was fsynced whole before the next append began.
                state.torn_tail = True
                break
            kind = body.get("record")
            cell = body.get("cell")
            if kind == "dispatched":
                state.dispatches += 1
            elif kind == "completed" and cell is not None:
                state.completed[cell] = body
                state.failed_permanent.pop(cell, None)
            elif kind == "failed-permanent" and cell is not None:
                state.failed_permanent[cell] = body
            elif kind == "worker-stalled":
                state.stalls += 1
            elif kind == "interrupted":
                state.interruptions += 1
            elif kind == "cancelled":
                state.cancellations += 1
            elif kind == "resumed":
                state.resumes += 1
            elif kind == "checkpoint":
                state.checkpoints += 1
            elif kind == "finished":
                state.finished = True
            self._seq = max(self._seq, body.get("seq", 0))
        return state

    def __repr__(self):
        return "RunJournal({!r} at {})".format(self.run_id, self.run_dir)
