"""Durable append-only run journal for crash-safe campaigns.

A long sweep or chaos campaign dies to preemption, OOM kills, and hung
workers in production; everything not yet on disk is lost. The journal
makes every campaign restartable:

* a **run directory** (``<root>/<run_id>/``) holds an atomically
  written ``spec.json`` (the campaign's full parameter set plus its
  canonical hash), an append-only ``journal.jsonl`` of per-cell
  lifecycle records, an atomically replaced ``checkpoint.json``
  progress snapshot, and a ``results/`` payload store for campaigns
  whose outputs are not content-addressed elsewhere (chaos reports);
* every journal line is flushed and fsynced before the append returns,
  so a record survives an immediate SIGKILL of the writer;
* replay tolerates a torn tail: a truncated final line (the crash
  happened mid-append) is ignored, never an error;
* ``spec.json``, ``checkpoint.json``, and every payload are written
  with the tmp-file + ``os.replace`` idiom (:func:`atomic_write_bytes`),
  so readers only ever observe complete files.

Every durability-critical syscall routes through the storage fault
seams of :mod:`repro.faults.storage`, so the claims above are testable
against injected ENOSPC, EIO, torn writes, and crash-at-fsync points.
Writes *degrade gracefully*: a full or failing disk costs the record
(counted in :attr:`RunJournal.write_errors`, surfaced as a
``storage.fault`` telemetry event and a one-line warning), never the
campaign — on resume an unrecorded cell simply re-runs. Reads that
find corruption (:meth:`RunJournal.read_checkpoint`,
:meth:`RunJournal.load_payload`) are counted in
:attr:`RunJournal.corrupt_reads` and warned about once, because a
climbing corrupt-read count is how an operator learns a disk is going
bad; ``repro fsck`` audits and repairs the same tree offline.

Resume (``repro <artifact> --resume <run_id>``, ``repro chaos
--resume``) opens the journal, verifies the new invocation's spec hash
against the recorded one (a resumed run must be the *same* campaign),
and reconstructs which cells already completed; the engine then skips
them via the result cache / payload store, byte-identically to an
uninterrupted run.
"""

import hashlib
import json
import os
import pickle
import re
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.experiments.cache import default_cache_dir
from repro.faults.storage import (
    append_line_durable,
    atomic_write_bytes,
    atomic_write_text,
)

__all__ = [
    "JOURNAL_DIR_ENV",
    "JournalState",
    "RECORD_KINDS",
    "RunJournal",
    "atomic_write_bytes",
    "atomic_write_text",
    "default_journal_root",
    "list_run_ids",
    "run_id_for",
    "spec_hash",
]

#: Environment variable overriding the default journal root.
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

_SPEC_FILE = "spec.json"
_JOURNAL_FILE = "journal.jsonl"
_CHECKPOINT_FILE = "checkpoint.json"
_RESULTS_DIR = "results"

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Journal record kinds, for reference and validation in tests.
RECORD_KINDS = (
    "dispatched",
    "completed",
    "failed",
    "failed-permanent",
    "worker-stalled",
    "checkpoint",
    "interrupted",
    "cancelled",
    "resumed",
    "finished",
)


def default_journal_root():
    """``$REPRO_JOURNAL_DIR`` if set, else ``<cache dir>/runs``."""
    env = os.environ.get(JOURNAL_DIR_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "runs"


def list_run_ids(root=None):
    """Run ids of every journal under ``root``, sorted.

    A directory counts as a journal when it holds a ``spec.json``; the
    campaign service uses this on startup to find in-flight runs a
    killed server left behind.
    """
    root = Path(root) if root else default_journal_root()
    if not root.is_dir():
        return []
    return sorted(
        entry.name
        for entry in root.iterdir()
        if (entry / _SPEC_FILE).is_file() and _RUN_ID_RE.match(entry.name)
    )


def spec_hash(spec):
    """Canonical hash of a campaign spec (a JSON-serializable dict).

    Two invocations describe the same campaign exactly when their spec
    hashes match; resume refuses to continue a journal under a
    different spec.
    """
    text = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def run_id_for(spec):
    """Deterministic default run id: ``run-<spec-hash prefix>``."""
    return "run-" + spec_hash(spec)[:12]


@dataclass
class JournalState:
    """The reconstructed state of a run after :meth:`RunJournal.replay`.

    ``completed`` maps cell id to its last ``completed`` record,
    ``failed_permanent`` to its ``failed-permanent`` record (cleared if
    a later attempt — e.g. after a resume with more retries —
    completed). Counters summarize the record stream.
    """

    spec: dict = field(default_factory=dict)
    spec_hash: str = ""
    completed: dict = field(default_factory=dict)
    failed_permanent: dict = field(default_factory=dict)
    dispatches: int = 0
    stalls: int = 0
    interruptions: int = 0
    cancellations: int = 0
    resumes: int = 0
    checkpoints: int = 0
    finished: bool = False
    torn_tail: bool = False

    @property
    def completed_ids(self):
        return set(self.completed)


class RunJournal:
    """One campaign's durable on-disk record.

    Use :meth:`create` for a fresh run and :meth:`open` to resume an
    existing one; the constructor itself only binds paths.
    """

    def __init__(self, run_id, root=None):
        if not _RUN_ID_RE.match(run_id):
            raise ConfigError(
                "run id must be 1-64 chars of letters, digits, '.', '_', "
                "or '-' (got {!r})".format(run_id)
            )
        self.run_id = run_id
        self.root = Path(root) if root else default_journal_root()
        self.run_dir = self.root / run_id
        self._seq = 0
        #: Optional tracer receiving ``storage.fault`` events.
        self.tracer = None
        #: Durable appends/snapshots lost to a failing disk (degraded,
        #: not raised: losing a record costs a re-run, never the run).
        self.write_errors = 0
        #: Reads that found corruption where a record should have been.
        self.corrupt_reads = 0
        self._warned_write = False
        self._warned_read = False

    # ------------------------------------------------------------------
    # storage-fault accounting

    def _emit_storage_fault(self, op, path, exc):
        if self.tracer is not None and self.tracer.enabled:
            from repro.telemetry.events import StorageFault

            self.tracer.emit(StorageFault(
                ts=0, op=op, path=str(path),
                error="{}: {}".format(type(exc).__name__, exc),
            ))

    def _note_write_error(self, op, path, exc):
        """A durable write failed: degrade (count + warn), don't raise."""
        self.write_errors += 1
        self._emit_storage_fault(op, path, exc)
        if not self._warned_write:
            self._warned_write = True
            warnings.warn(
                "journal {!r}: {} failed ({}); degrading — the record "
                "is lost and its cell will re-run on resume".format(
                    self.run_id, op, exc
                ),
                RuntimeWarning, stacklevel=3,
            )

    def _note_corrupt_read(self, what, path, exc):
        """A read found corruption: count it and warn the operator."""
        self.corrupt_reads += 1
        self._emit_storage_fault("corrupt-read", path, exc)
        if not self._warned_read:
            self._warned_read = True
            warnings.warn(
                "journal {!r}: corrupt {} at {} ({}); treating as "
                "missing — a climbing corrupt-read count usually means "
                "a disk is going bad (run `repro fsck`)".format(
                    self.run_id, what, path, exc
                ),
                RuntimeWarning, stacklevel=3,
            )

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def create(cls, spec, run_id=None, root=None):
        """Start a fresh journaled run; refuses to clobber an existing
        journal (resume that instead)."""
        journal = cls(run_id or run_id_for(spec), root=root)
        if journal.exists():
            raise ConfigError(
                "journal for run {!r} already exists under {}; resume it "
                "or choose another --run-id".format(
                    journal.run_id, journal.root
                )
            )
        journal.run_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            journal.run_dir / _SPEC_FILE,
            json.dumps(
                {"spec": spec, "spec_hash": spec_hash(spec)},
                sort_keys=True, indent=2,
            ) + "\n",
        )
        return journal

    @classmethod
    def open(cls, run_id, root=None):
        """Bind to an existing journal; raises if there is none."""
        journal = cls(run_id, root=root)
        if not journal.exists():
            raise ConfigError(
                "no journal for run {!r} under {}".format(
                    run_id, journal.root
                )
            )
        return journal

    def exists(self):
        return (self.run_dir / _SPEC_FILE).is_file()

    def spec(self):
        """The recorded spec document ``{"spec": ..., "spec_hash": ...}``."""
        with open(self.run_dir / _SPEC_FILE, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def verify_spec(self, spec):
        """Refuse to resume under a different campaign spec."""
        recorded = self.spec()
        if spec_hash(spec) != recorded["spec_hash"]:
            raise ConfigError(
                "run {!r} was journaled with a different campaign spec "
                "(recorded hash {}, invocation hash {}); resume must use "
                "identical apps/configs/threads/seed".format(
                    self.run_id,
                    recorded["spec_hash"][:12],
                    spec_hash(spec)[:12],
                )
            )
        return recorded["spec"]

    # ------------------------------------------------------------------
    # append-only record stream

    def append(self, record, **fields):
        """Durably append one record line (write + fsync before return).

        Returns True when the record reached the disk. A failing write
        (ENOSPC, EIO — injected or real) is *degraded*: counted in
        :attr:`write_errors`, warned about once, and False returned,
        because losing one journal record costs at worst a re-run of
        its cell on resume, while raising would kill the campaign the
        journal exists to protect.
        """
        if record not in RECORD_KINDS:
            raise ConfigError(
                "unknown journal record kind {!r}; choose from {}".format(
                    record, ", ".join(RECORD_KINDS)
                )
            )
        self._seq += 1
        body = {"record": record, "seq": self._seq,
                "t": round(time.time(), 3)}
        body.update(fields)
        line = json.dumps(body, sort_keys=True, separators=(",", ":"))
        path = self.run_dir / _JOURNAL_FILE
        try:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            append_line_durable(path, (line + "\n").encode("utf-8"))
        except OSError as exc:
            self._note_write_error("journal-append", path, exc)
            return False
        return True

    # Per-cell lifecycle -------------------------------------------------

    def record_dispatched(self, cell_id, index=None, attempt=1, key=None):
        self.append(
            "dispatched", cell=cell_id, index=index, attempt=attempt,
            key=key,
        )

    def record_completed(self, cell_id, index=None, key=None, cached=False):
        self.append(
            "completed", cell=cell_id, index=index, key=key, cached=cached,
        )

    def record_failed(self, cell_id, index=None, kind="error", message="",
                      attempt=1):
        self.append(
            "failed", cell=cell_id, index=index, kind=kind,
            message=message, attempt=attempt,
        )

    def record_failed_permanent(self, cell_id, index=None, kind="error",
                                message="", attempts=1, retry_delays=()):
        """A cell exhausted every retry; its full backoff history rides
        along so post-mortems can see the schedule it was given."""
        self.append(
            "failed-permanent", cell=cell_id, index=index, kind=kind,
            message=message, attempts=attempts,
            retry_delays=list(retry_delays),
        )

    def record_worker_stalled(self, worker, cells, stale_s):
        self.append(
            "worker-stalled", worker=worker, cells=list(cells),
            stale_s=round(stale_s, 3),
        )

    def record_interrupted(self, reason, completed, total):
        self.append(
            "interrupted", reason=reason, completed=completed, total=total,
        )

    def record_cancelled(self, reason, completed, total):
        """The campaign was cancelled *deliberately* (as opposed to
        ``interrupted``, which marks a preempted-but-resumable stop):
        a restarted server must not resume it."""
        self.append(
            "cancelled", reason=reason, completed=completed, total=total,
        )

    def record_resumed(self, completed, remaining):
        self.append("resumed", completed=completed, remaining=remaining)

    def record_finished(self, completed, failed):
        self.append("finished", completed=completed, failed=failed)

    # ------------------------------------------------------------------
    # checkpoint snapshot

    def checkpoint(self, completed, total, tracer=None):
        """Atomically replace ``checkpoint.json`` and journal the event.

        With a ``tracer`` (enabled), a
        :class:`~repro.telemetry.events.CheckpointWritten` event is
        emitted so campaign observability rides the same stream as
        everything else.

        A failing disk degrades like :meth:`append`: the snapshot is
        derived data (replay reconstructs it from the record stream),
        so losing it costs nothing but a slower resume.
        """
        path = self.run_dir / _CHECKPOINT_FILE
        try:
            atomic_write_text(
                path,
                json.dumps(
                    {"run_id": self.run_id, "completed": completed,
                     "total": total},
                    sort_keys=True, indent=2,
                ) + "\n",
            )
        except OSError as exc:
            self._note_write_error("checkpoint", path, exc)
        self.append("checkpoint", completed=completed, total=total)
        if tracer is not None and tracer.enabled:
            from repro.telemetry.events import CheckpointWritten

            tracer.emit(CheckpointWritten(
                ts=0, run_id=self.run_id, completed=completed, total=total,
            ))

    def read_checkpoint(self):
        """The last checkpoint snapshot, or ``None`` if never written.

        A checkpoint that exists but cannot be parsed is *corruption*,
        not absence — it is counted in :attr:`corrupt_reads` and warned
        about, instead of being silently swallowed.
        """
        path = self.run_dir / _CHECKPOINT_FILE
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            self._note_corrupt_read("checkpoint", path, exc)
            return None

    # ------------------------------------------------------------------
    # payload store (campaigns without a content-addressed cache)

    def _payload_path(self, cell_id):
        digest = hashlib.sha256(cell_id.encode("utf-8")).hexdigest()
        return self.run_dir / _RESULTS_DIR / (digest + ".pkl")

    def store_payload(self, cell_id, payload):
        """Atomically persist one cell's output under the run.

        Returns True on success. A failing disk degrades: the payload
        is simply absent, so resume re-runs the cell (the atomic-write
        idiom guarantees no partial file is ever visible).
        """
        path = self._payload_path(cell_id)
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            atomic_write_bytes(path, data)
        except OSError as exc:
            self._note_write_error("payload-store", path, exc)
            return False
        return True

    def load_payload(self, cell_id, default=None):
        """Load a persisted cell output; corruption is a miss, like the
        result cache, so a torn write can only cost a re-run."""
        path = self._payload_path(cell_id)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return default
        except Exception as exc:
            self._note_corrupt_read("payload", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return default

    # ------------------------------------------------------------------
    # replay

    def replay(self):
        """Reconstruct a :class:`JournalState` from the record stream.

        Crash-consistent: a truncated final line is skipped and flagged
        (``torn_tail``); the writer fsyncs every append, so anything
        before the tail is complete.
        """
        state = JournalState()
        try:
            document = self.spec()
            state.spec = document.get("spec", {})
            state.spec_hash = document.get("spec_hash", "")
        except (OSError, ValueError):
            pass
        path = self.run_dir / _JOURNAL_FILE
        try:
            with open(path, "rb") as fh:
                lines = fh.read().split(b"\n")
        except OSError:
            return state
        for line in lines:
            if not line:
                continue
            # Bytes, decoded per line: a torn tail may hold arbitrary
            # binary garbage, which must flag the tail, not blow up the
            # whole-file decode.
            try:
                body = json.loads(line.decode("utf-8"))
                if not isinstance(body, dict):
                    raise ValueError("record line is not a JSON object")
            except (ValueError, UnicodeDecodeError):
                # Only the final (torn) line may be malformed; anything
                # earlier was fsynced whole before the next append began.
                state.torn_tail = True
                break
            kind = body.get("record")
            cell = body.get("cell")
            if kind == "dispatched":
                state.dispatches += 1
            elif kind == "completed" and cell is not None:
                state.completed[cell] = body
                state.failed_permanent.pop(cell, None)
            elif kind == "failed-permanent" and cell is not None:
                state.failed_permanent[cell] = body
            elif kind == "worker-stalled":
                state.stalls += 1
            elif kind == "interrupted":
                state.interruptions += 1
            elif kind == "cancelled":
                state.cancellations += 1
            elif kind == "resumed":
                state.resumes += 1
            elif kind == "checkpoint":
                state.checkpoints += 1
            elif kind == "finished":
                state.finished = True
            self._seq = max(self._seq, body.get("seq", 0))
        return state

    def __repr__(self):
        return "RunJournal({!r} at {})".format(self.run_id, self.run_dir)
