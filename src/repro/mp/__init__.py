"""Message-passing environment (paper Sections 2 and 7).

The paper notes the thrifty idea "is conceptually viable in other
environments such as message-passing machines" and lists that transfer
as future work. This package carries it out on the same simulated
hardware:

* :mod:`repro.mp.endpoint` — per-rank message endpoints over the
  hypercube network (tagged send/receive, FIFO matching, an interrupt
  line the NIC raises on arrival);
* :mod:`repro.mp.barrier` — a flat gather/broadcast barrier in two
  flavours: spin-waiting (conventional) and thrifty. With no shared
  memory, the root measures the barrier interval time on its local
  clock and **piggybacks it on the release broadcast**; every rank
  trains a local predictor from the piggybacked values and sleeps
  through its predicted stall, woken by the NIC interrupt (external)
  or its countdown timer (internal) — the same hybrid structure as the
  shared-memory thrifty barrier.
"""

from repro.mp.barrier import MpBarrier, ThriftyMpBarrier
from repro.mp.endpoint import MessageEndpoint, make_endpoints

__all__ = [
    "MessageEndpoint",
    "MpBarrier",
    "ThriftyMpBarrier",
    "make_endpoints",
]
