"""Message-passing barriers: conventional and thrifty.

Flat gather/broadcast: every non-root rank sends an ARRIVE message to
rank 0; once the root has all of them it broadcasts RELEASE. The
conventional variant spin-waits on the receive (a polling runtime).

The thrifty variant transplants Section 3 to message passing:

* there is no shared BIT location, so the root measures the barrier
  interval time on its local clock and piggybacks it on the RELEASE
  message;
* each rank keeps a local BRTS and a local PC-indexed predictor trained
  from the piggybacked BITs — the induction of Section 3.2.1 carries
  over, with message receipt standing in for flag detection;
* an early rank that predicts enough slack sleeps after posting its
  ARRIVE; the NIC's arrival interrupt is the external wake-up, the
  countdown timer the internal one;
* the overprediction cut-off and the underprediction filter apply
  unchanged.
"""

from dataclasses import dataclass, field

from repro.config import ThriftyConfig
from repro.energy.states import select_sleep_state
from repro.errors import SimulationError
from repro.predict.last_value import LastValuePredictor
from repro.predict.thresholds import is_overpredicted, should_update_predictor
from repro.sim.events import AnyOf

ARRIVE = "mp.arrive"
RELEASE = "mp.release"


@dataclass
class MpStats:
    instances: int = 0
    sleeps: int = 0
    sleeps_by_state: dict = field(default_factory=dict)
    spin_waits: int = 0
    timer_wakes: int = 0
    interrupt_wakes: int = 0
    cutoff_disables: int = 0
    filtered_updates: int = 0


class MpBarrier:
    """Conventional flat barrier: gather at the root, broadcast back."""

    def __init__(self, system, endpoints, pc="mp.b"):
        if not endpoints:
            raise SimulationError("need at least one rank")
        self.system = system
        self.sim = system.sim
        self.endpoints = endpoints
        self.n_ranks = len(endpoints)
        self.pc = pc
        self.stats = MpStats()
        self._tag_arrive = "{}:{}".format(ARRIVE, pc)
        self._tag_release = "{}:{}".format(RELEASE, pc)
        #: Local per-rank release timestamps (each rank's own clock).
        self._release_ts = [0] * self.n_ranks

    def release_timestamp(self, rank):
        return self._release_ts[rank]

    def wait(self, rank):
        """Pass the barrier from ``rank`` (generator)."""
        endpoint = self.endpoints[rank]
        if rank == 0:
            yield from self._root_path(endpoint)
        else:
            yield from self._nonroot_path(endpoint, rank)
        self._release_ts[rank] = self.sim.now
        return self.sim.now

    # -- the root gathers and broadcasts --------------------------------

    def _measure_bit(self):
        """Root-side BIT to piggyback; None in the conventional case."""
        return None

    def _root_path(self, endpoint):
        for _ in range(self.n_ranks - 1):
            self.stats.spin_waits += 1
            yield from endpoint.recv(self._tag_arrive, spin=True)
        self.stats.instances += 1
        bit = self._measure_bit()
        for rank in range(1, self.n_ranks):
            yield from endpoint.send(
                self.endpoints, rank, self._tag_release, payload=bit,
                size_bytes=16,
            )

    # -- non-root ranks check in and wait --------------------------------

    def _nonroot_path(self, endpoint, rank):
        yield from endpoint.send(
            self.endpoints, 0, self._tag_arrive, payload=rank,
            size_bytes=16,
        )
        self.stats.spin_waits += 1
        yield from endpoint.recv(self._tag_release, spin=True)


class ThriftyMpBarrier(MpBarrier):
    """The thrifty barrier transplanted to message passing."""

    def __init__(self, system, endpoints, pc="mp.tb", config=None):
        super().__init__(system, endpoints, pc=pc)
        self.config = config or ThriftyConfig()
        #: Per-rank predictors: no shared memory, so knowledge is local,
        #: fed by the piggybacked BITs.
        self.predictors = [LastValuePredictor() for _ in endpoints]
        #: Per-rank local BRTS (Section 3.2.1 induction).
        self._brts = [0] * self.n_ranks

    # -- root --------------------------------------------------------------

    def _measure_bit(self):
        bit = self.sim.now - self._brts[0]
        self._train(0, bit)
        self._brts[0] += bit
        return bit

    # -- non-root ------------------------------------------------------------

    def _nonroot_path(self, endpoint, rank):
        yield from endpoint.send(
            self.endpoints, 0, self._tag_arrive, payload=rank,
            size_bytes=16,
        )
        wake_ts = None
        predictor = self.predictors[rank]
        if not predictor.is_disabled(self.pc, rank):
            predicted_bit = predictor.predict(self.pc)
            if predicted_bit is not None:
                est_wake = self._brts[rank] + predicted_bit
                est_stall = est_wake - self.sim.now
                # Prototype restriction, as in the thrifty lock: only
                # snooping states, keeping the flush machinery out of
                # the NIC path.
                snoozable = tuple(
                    s for s in self.config.sleep_states if s.snoops
                )
                state = (
                    select_sleep_state(
                        snoozable, est_stall,
                        flush_ns=0,
                        conditional=self.config.conditional_sleep,
                    )
                    if snoozable
                    else None
                )
                if state is not None:
                    wake_ts = yield from self._sleep(
                        endpoint, state, est_wake
                    )
        if endpoint.pending(self._tag_release):
            payload = yield from endpoint.recv(
                self._tag_release, spin=False
            )
        else:
            self.stats.spin_waits += 1
            payload = yield from endpoint.recv(
                self._tag_release, spin=True
            )
        self._absorb_release(rank, payload, wake_ts)

    def _sleep(self, endpoint, state, est_wake):
        cpu = endpoint.node.cpu
        wake_sources = []
        external = None
        if self.config.use_external_wakeup:
            external = endpoint.arm_interrupt()
            wake_sources.append(external)
        if self.config.use_internal_wakeup:
            delay = max(
                0, est_wake - self.sim.now - state.transition_latency_ns
            )
            wake_sources.append(self.sim.timeout(delay))
        wake = AnyOf(self.sim, wake_sources)
        yield from cpu.sleep(state, wake)
        if external is not None and wake.value is external:
            self.stats.interrupt_wakes += 1
        else:
            self.stats.timer_wakes += 1
        self.stats.sleeps += 1
        self.stats.sleeps_by_state[state.name] = (
            self.stats.sleeps_by_state.get(state.name, 0) + 1
        )
        return self.sim.now

    # -- shared bookkeeping ---------------------------------------------------

    def _train(self, rank, bit):
        predictor = self.predictors[rank]
        if should_update_predictor(
            predictor.peek(self.pc), bit,
            factor=self.config.underprediction_factor,
        ):
            predictor.update(self.pc, bit)
        else:
            predictor.note_filtered_update()
            self.stats.filtered_updates += 1

    def _absorb_release(self, rank, payload, wake_ts):
        if payload is None:
            raise SimulationError("release lost its piggybacked BIT")
        bit = payload
        self._train(rank, bit)
        self._brts[rank] += bit
        if wake_ts is not None and is_overpredicted(
            wake_ts, self._brts[rank], bit,
            threshold=self.config.overprediction_threshold,
        ):
            self.predictors[rank].disable(self.pc, rank)
            self.stats.cutoff_disables += 1
