"""Per-rank message endpoints over the simulated network.

A minimal MPI-like layer: tagged point-to-point messages with FIFO
matching per (source-agnostic) tag, delivery latency from the hypercube
model, a small injection/extraction CPU cost, and an *interrupt line*
that observers (the thrifty MP barrier's sleep logic) can arm to be
woken on any arrival — the NIC-interrupt analog of the cache
controller's flag monitor.
"""

from collections import deque
import operator

from repro.energy.accounting import Category
from repro.errors import SimulationError

#: CPU cost to marshal/inject or extract one message.
INJECT_NS = 200
EXTRACT_NS = 200


class MessageEndpoint:
    """One rank's NIC: tagged queues plus an arrival interrupt."""

    def __init__(self, system, rank):
        if not 0 <= rank < system.n_nodes:
            raise SimulationError("rank {} out of range".format(rank))
        self.system = system
        self.sim = system.sim
        self.rank = rank
        self.node = system.nodes[rank]
        self._queues = {}     # tag -> deque of payloads
        self._waiters = {}    # tag -> deque of events
        self._interrupts = []
        self.stats_sent = 0
        self.stats_received = 0

    # -- sending -------------------------------------------------------

    def send(self, peers, dst_rank, tag, payload=None, size_bytes=64):
        """Send to ``dst_rank``; returns after local injection.

        Delivery happens asynchronously after the wire latency; the
        injection cost is charged to this rank's Compute.
        """
        destination = peers[dst_rank]
        self.stats_sent += 1
        yield from self.node.cpu.mem_op_as(
            Category.COMPUTE, _busy(self.sim, INJECT_NS)
        )
        network = self.system.memsys.network
        network.send(
            self.rank, dst_rank,
            destination._deliver, tag, payload,
            size_bytes=size_bytes,
        )

    def _deliver(self, tag, payload):
        """Called by the network at arrival time."""
        waiters = self._waiters.get(tag)
        if waiters:
            waiters.popleft().succeed(payload)
        else:
            self._queues.setdefault(tag, deque()).append(payload)
        interrupts, self._interrupts = self._interrupts, []
        for event in interrupts:
            if not event.triggered:
                event.succeed(tag)

    # -- receiving -----------------------------------------------------

    def try_recv(self, tag):
        """Non-blocking: ``(True, payload)`` or ``(False, None)``."""
        queue = self._queues.get(tag)
        if queue:
            return True, queue.popleft()
        return False, None

    def recv(self, tag, spin=True):
        """Receive one message with the given tag (generator).

        With ``spin=True`` the waiting time is charged as Spin (the
        polling receive loop of a conventional runtime); with
        ``spin=False`` nothing is charged (the caller accounts for the
        wait itself, e.g. as sleep residency).
        """
        ready, payload = self.try_recv(tag)
        if not ready:
            ticket = self.sim.event()
            self._waiters.setdefault(tag, deque()).append(ticket)
            if spin:
                payload = None
                started = self.sim.now
                value = yield ticket
                self.node.cpu.account.add(
                    Category.SPIN,
                    self.sim.now - started,
                    power_watts=self.node.cpu.power.spin_watts,
                )
                payload = value
            else:
                payload = yield ticket
        self.stats_received += 1
        yield from self.node.cpu.mem_op_as(
            Category.COMPUTE, _busy(self.sim, EXTRACT_NS)
        )
        return payload

    def arm_interrupt(self):
        """An event the NIC succeeds on the *next* arrival (any tag)."""
        event = self.sim.event()
        self._interrupts.append(event)
        return event

    def pending(self, tag):
        """Queued (unreceived) message count for a tag."""
        return len(self._queues.get(tag, ()))


def make_endpoints(system, n_ranks=None):
    """One endpoint per rank on the first ``n_ranks`` nodes."""
    n_ranks = n_ranks or system.n_nodes
    return [MessageEndpoint(system, rank) for rank in range(n_ranks)]


def _busy(sim, duration_ns):
    yield operator.index(duration_ns)
    return None
