"""Hypercube topology.

A ``d``-dimensional hypercube connects ``2**d`` nodes; nodes are adjacent
when their identifiers differ in exactly one bit, and the minimal hop
count between two nodes is the Hamming distance of their identifiers.
"""

from repro.errors import ConfigError


class Hypercube:
    """The node graph of the modeled machine (Table 1: 64 nodes)."""

    def __init__(self, n_nodes):
        if n_nodes < 1 or n_nodes & (n_nodes - 1):
            raise ConfigError(
                "hypercube size must be a power of two, got {}".format(n_nodes)
            )
        self.n_nodes = n_nodes
        self.dimension = n_nodes.bit_length() - 1

    def check_node(self, node):
        """Validate a node identifier, returning it."""
        if not 0 <= node < self.n_nodes:
            raise ConfigError(
                "node {} outside 0..{}".format(node, self.n_nodes - 1)
            )
        return node

    def neighbors(self, node):
        """The ``dimension`` nodes adjacent to ``node``."""
        self.check_node(node)
        return [node ^ (1 << bit) for bit in range(self.dimension)]

    def hops(self, src, dst):
        """Minimal hop count (Hamming distance) between two nodes."""
        self.check_node(src)
        self.check_node(dst)
        return bin(src ^ dst).count("1")

    @property
    def diameter(self):
        """Maximum hop count between any two nodes."""
        return self.dimension

    def average_distance(self):
        """Mean hop count over distinct ordered node pairs.

        Each address bit differs in half of all ordered pairs, giving a
        pair-sum of ``d * n^2 / 2``; excluding the ``n`` zero-distance
        pairs yields ``d/2 * n/(n-1)``.
        """
        if self.n_nodes == 1:
            return 0.0
        return self.dimension / 2 * self.n_nodes / (self.n_nodes - 1)

    def __repr__(self):
        return "Hypercube(n_nodes={}, dimension={})".format(
            self.n_nodes, self.dimension
        )
