"""Hypercube interconnect (Table 1: wormhole-routed, 250 MHz routers).

:mod:`repro.interconnect.topology` gives the graph structure,
:mod:`repro.interconnect.routing` the deterministic e-cube paths, and
:mod:`repro.interconnect.network` the timing model used by coherence
transactions.
"""

from repro.interconnect.network import Network
from repro.interconnect.routing import ecube_path
from repro.interconnect.topology import Hypercube

__all__ = ["Hypercube", "Network", "ecube_path"]
