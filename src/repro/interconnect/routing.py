"""Deterministic e-cube (dimension-order) routing.

Wormhole networks like the one in Table 1 typically route dimension by
dimension, correcting address bits from least- to most-significant. The
path length always equals the Hamming distance, so the timing model only
needs hop counts; the explicit paths are used by tests and by the
link-utilization statistics.
"""


def ecube_path(src, dst, dimension):
    """The node sequence visited from ``src`` to ``dst``, inclusive.

    Bits are corrected in increasing dimension order, the classic
    deadlock-free e-cube rule.
    """
    path = [src]
    current = src
    for bit in range(dimension):
        mask = 1 << bit
        if (current ^ dst) & mask:
            current ^= mask
            path.append(current)
    return path


def links_used(src, dst, dimension):
    """The directed links traversed by the e-cube path."""
    path = ecube_path(src, dst, dimension)
    return list(zip(path[:-1], path[1:]))
