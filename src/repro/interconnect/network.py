"""Timing model of the wormhole hypercube network.

Table 1 gives a 16 ns pin-to-pin hop latency, 16 ns of (un)marshaling at
each endpoint, and pipelined 250 MHz routers with a 16-byte datapath.
With wormhole switching the head flit pays the full hop path while the
body streams behind it, so a message of ``size`` bytes delivers after::

    2 * marshal + hops * pin_to_pin + serialization(size)

where serialization is the extra flits behind the head at the router
clock. Node-local "messages" (a node talking to its own directory) skip
the network entirely.

Contention is not modeled (a documented simplification — the paper's
barrier traffic is latency-, not bandwidth-bound); link-load statistics
are still collected so tests and reports can observe hot links.
"""

import math
from collections import Counter

from repro.errors import ConfigError
from repro.interconnect.routing import links_used
from repro.interconnect.topology import Hypercube


class NetworkStats:
    """Counters a :class:`Network` maintains for reporting and tests."""

    def __init__(self):
        self.messages = 0
        self.total_bytes = 0
        self.total_hops = 0
        self.link_loads = Counter()

    def record(self, hops, size_bytes, links):
        self.messages += 1
        self.total_bytes += size_bytes
        self.total_hops += hops
        for link in links:
            self.link_loads[link] += 1

    @property
    def mean_hops(self):
        if self.messages == 0:
            return 0.0
        return self.total_hops / self.messages


class Network:
    """Latency model bound to a :class:`~repro.sim.Simulator`."""

    def __init__(self, sim, topology, config, track_links=False):
        if not isinstance(topology, Hypercube):
            raise ConfigError("Network requires a Hypercube topology")
        self.sim = sim
        self.topology = topology
        self.config = config
        self.flit_bytes = 16
        # 250 MHz -> 4 ns per router cycle; one flit advances per cycle.
        self.flit_cycle_ns = max(1, int(round(1_000 / config.router_freq_mhz)))
        self._track_links = track_links or config.model_contention
        self._model_contention = config.model_contention
        self._link_busy_until = {}
        # Packed (src, dst, size) int key -> (hops, links, uncontended
        # latency). Pure function of the topology and config, so
        # memoizing it is safe; the per-message statistics and
        # contention walk stay live. The packed key (src and dst below
        # 4096 nodes, size below 8192 bytes) avoids a tuple allocation
        # per message.
        self._route_cache = {}
        self.stats = NetworkStats()

    def latency_ns(self, src, dst, size_bytes=16):
        """Uncontended one-way delivery latency (the base estimate)."""
        if size_bytes <= 0:
            raise ConfigError("message size must be positive")
        if src == dst:
            return 0
        hops = self.topology.hops(src, dst)
        body_flits = max(0, math.ceil(size_bytes / self.flit_bytes) - 1)
        return (
            2 * self.config.marshal_ns
            + hops * self.config.pin_to_pin_ns
            + body_flits * self.flit_cycle_ns
        )

    def _occupancy_ns(self, size_bytes):
        """How long a wormhole message holds each channel it crosses."""
        flits = max(1, math.ceil(size_bytes / self.flit_bytes))
        return flits * self.flit_cycle_ns

    def _contended_latency_ns(self, links, size_bytes):
        """Walk the e-cube path, queueing behind busy links.

        Mutates the per-link reservations, so call exactly once per
        message. The head flit waits for each channel to free, then
        advances one hop; the channel stays held for the message's
        serialization time (wormhole: the worm occupies the channel).
        """
        occupancy = self._occupancy_ns(size_bytes)
        head_time = self.sim.now + self.config.marshal_ns
        for link in links:
            free_at = self._link_busy_until.get(link, 0)
            start = max(head_time, free_at)
            self._link_busy_until[link] = start + occupancy
            head_time = start + self.config.pin_to_pin_ns
        body_flits = max(0, math.ceil(size_bytes / self.flit_bytes) - 1)
        arrival = (
            head_time
            + self.config.marshal_ns
            + body_flits * self.flit_cycle_ns
        )
        return arrival - self.sim.now

    def _delivery_latency(self, src, dst, size_bytes):
        """Latency for one concrete message; records statistics."""
        if size_bytes <= 0:
            raise ConfigError("message size must be positive")
        if src == dst:
            return 0
        key = ((src << 12) | dst) << 13 | size_bytes
        route = self._route_cache.get(key)
        if route is None:
            links = (
                links_used(src, dst, self.topology.dimension)
                if self._track_links
                else ()
            )
            route = (
                self.topology.hops(src, dst),
                links,
                self.latency_ns(src, dst, size_bytes),
            )
            self._route_cache[key] = route
        hops, links, base_latency = route
        self.stats.record(hops, size_bytes, links)
        if self._model_contention:
            return self._contended_latency_ns(links, size_bytes)
        return base_latency

    def delivery_ns(self, src, dst, size_bytes=16):
        """Latency of one concrete message in ns; records statistics.

        Processes that just wait out the wire should ``yield`` this int
        directly; use :meth:`transfer` only when the delivery must be an
        :class:`~repro.sim.events.Event` (e.g. raced in an ``AnyOf``).
        Each call models one message, so call exactly once per message.
        """
        # Warm-route fast path with the statistics update unrolled; the
        # cold path (and all validation) lives in _delivery_latency.
        route = self._route_cache.get(((src << 12) | dst) << 13 | size_bytes)
        if route is None:
            return self._delivery_latency(src, dst, size_bytes)
        hops, links, base_latency = route
        stats = self.stats
        stats.messages += 1
        stats.total_bytes += size_bytes
        stats.total_hops += hops
        if links:
            link_loads = stats.link_loads
            for link in links:
                link_loads[link] += 1
        if self._model_contention:
            return self._contended_latency_ns(links, size_bytes)
        return base_latency

    def transfer(self, src, dst, size_bytes=16):
        """An event that succeeds when the message arrives at ``dst``."""
        return self.sim.timeout(self._delivery_latency(src, dst, size_bytes))

    def send(self, src, dst, handler, *args, size_bytes=16):
        """Deliver ``handler(*args)`` at ``dst`` after the wire latency."""
        return self.sim.schedule(
            self._delivery_latency(src, dst, size_bytes), handler, *args
        )
