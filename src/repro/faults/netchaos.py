"""In-process TCP chaos proxy for hostile-network testing.

The serve layer (:mod:`repro.serve`) is exercised in CI over loopback
sockets that never delay, drop, or corrupt a byte — which proves
nothing about the retry/reconnect behaviour the clients claim. This
module puts a deliberately unreliable hop between a client and the
real server:

    with ChaosProxy("127.0.0.1", server_port, plan) as proxy:
        client = ServeClient(host="127.0.0.1", port=proxy.port)
        ...

:class:`ChaosProxy` is a tiny threaded TCP forwarder. For every
accepted connection it opens one upstream connection and pumps bytes
both ways; the fault plan applies to the **upstream → client**
direction only (responses), because that is the direction the
self-healing client logic must survive — mangling requests would test
the server's parser instead, which `tests/test_serve_http.py` already
does directly.

Determinism: like every fault layer in this repo, faults are decided
by seeded RNG, not wall-clock races. Each accepted connection gets its
own ``random.Random`` seeded from ``(plan.seed, connection index)``,
so the fault sequence a connection experiences depends only on the
plan and its accept order — never on thread scheduling within the
connection.

Fault kinds (:data:`NET_FAULT_KINDS`):

* ``delay`` — hold a response chunk for ``delay_s`` before relaying;
* ``truncate`` — relay a prefix of a chunk, then close both sockets
  (the mid-response cut an fsynced server dying looks like);
* ``corrupt`` — flip one byte of a chunk before relaying;
* ``drop`` — close the connection the moment it is accepted (the
  connection-refused-after-accept a dying load balancer produces).
"""

import random
import socket
import threading
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "NET_FAULT_KINDS",
    "ChaosProxy",
    "NetChaosPlan",
]

#: Network fault kinds a plan may inject.
NET_FAULT_KINDS = ("delay", "truncate", "corrupt", "drop")

_CHUNK = 65536
_ACCEPT_POLL_S = 0.05


def _check_probability(name, value):
    if not 0.0 <= value <= 1.0:
        raise ConfigError(
            "{} must be in [0, 1], got {!r}".format(name, value)
        )


@dataclass(frozen=True)
class NetChaosPlan:
    """Seeded declarative recipe of network faults.

    Probabilities are per *relayed chunk* (``truncate``/``corrupt``/
    ``delay``) or per *accepted connection* (``drop``). The default
    plan is a no-op, so a proxy with ``NetChaosPlan()`` is a plain
    forwarder — useful as a test control.
    """

    name: str = "net-chaos"
    seed: int = 0
    drop_probability: float = 0.0
    delay_probability: float = 0.0
    delay_s: float = 0.05
    truncate_probability: float = 0.0
    corrupt_probability: float = 0.0

    def __post_init__(self):
        _check_probability("drop_probability", self.drop_probability)
        _check_probability("delay_probability", self.delay_probability)
        _check_probability("truncate_probability", self.truncate_probability)
        _check_probability("corrupt_probability", self.corrupt_probability)
        if self.delay_s < 0:
            raise ConfigError(
                "delay_s must be non-negative, got {!r}".format(self.delay_s)
            )

    @property
    def is_noop(self):
        return (
            self.drop_probability == 0.0
            and self.delay_probability == 0.0
            and self.truncate_probability == 0.0
            and self.corrupt_probability == 0.0
        )

    def describe(self):
        active = []
        for field_name in (
            "drop_probability", "delay_probability",
            "truncate_probability", "corrupt_probability",
        ):
            value = getattr(self, field_name)
            if value:
                active.append("{}={}".format(field_name, value))
        return "{}(seed={}{}{})".format(
            self.name, self.seed, ", " if active else "",
            ", ".join(active),
        )


class ChaosProxy:
    """A threaded TCP forwarder that injects a :class:`NetChaosPlan`.

    Listens on ``127.0.0.1:<port>`` (``port=0`` picks a free one, read
    it back from :attr:`port`) and forwards every connection to
    ``upstream_host:upstream_port``. Use as a context manager or call
    :meth:`start`/:meth:`stop`.

    Counters (:attr:`connections`, :attr:`faults`, a per-kind
    :attr:`fault_counts`) let tests assert the chaos actually happened
    — a resilience test whose proxy injected nothing proves nothing.
    """

    def __init__(self, upstream_host, upstream_port, plan=None, port=0):
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan or NetChaosPlan()
        self._requested_port = port
        self.port = None
        self.connections = 0
        self.faults = 0
        self.fault_counts = {kind: 0 for kind in NET_FAULT_KINDS}
        self._lock = threading.Lock()
        self._listener = None
        self._accept_thread = None
        self._stop = threading.Event()
        self._conn_threads = []

    # ------------------------------------------------------------------
    # lifecycle

    def start(self):
        if self._listener is not None:
            raise ConfigError("proxy already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", self._requested_port))
        listener.listen(32)
        listener.settimeout(_ACCEPT_POLL_S)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in self._conn_threads:
            thread.join(timeout=2.0)
        self._listener = None
        self._accept_thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # accounting

    def _count_fault(self, kind):
        with self._lock:
            self.faults += 1
            self.fault_counts[kind] += 1

    # ------------------------------------------------------------------
    # forwarding

    def _accept_loop(self):
        index = 0
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self.connections += 1
            rng = random.Random(
                "netchaos:{}:{}".format(self.plan.seed, index)
            )
            index += 1
            thread = threading.Thread(
                target=self._handle, args=(client, rng),
                name="chaos-proxy-conn", daemon=True,
            )
            thread.start()
            self._conn_threads.append(thread)

    def _handle(self, client, rng):
        plan = self.plan
        if rng.random() < plan.drop_probability:
            self._count_fault("drop")
            _close(client)
            return
        upstream = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            upstream.connect(self.upstream)
        except OSError:
            _close(client)
            return
        # Requests relay verbatim; responses pass through the mangler.
        # The request pump runs on its own thread, the response pump on
        # this one, so a half-closed direction never deadlocks the other.
        forward = threading.Thread(
            target=self._pump_clean, args=(client, upstream),
            name="chaos-proxy-request", daemon=True,
        )
        forward.start()
        self._pump_faulted(upstream, client, rng)
        forward.join(timeout=2.0)
        _close(client)
        _close(upstream)

    def _pump_clean(self, source, sink):
        while True:
            try:
                data = source.recv(_CHUNK)
            except OSError:
                break
            if not data:
                break
            try:
                sink.sendall(data)
            except OSError:
                break
        # Propagate EOF so the server sees the end of the request body.
        try:
            sink.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def _pump_faulted(self, source, sink, rng):
        plan = self.plan
        while True:
            try:
                data = source.recv(_CHUNK)
            except OSError:
                return
            if not data:
                try:
                    sink.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            # One roll per chunk, cumulative thresholds, so the RNG
            # consumption (and thus the fault sequence) is fixed per
            # connection regardless of timing.
            roll = rng.random()
            threshold = plan.truncate_probability
            if roll < threshold:
                cut = rng.randrange(0, len(data))
                self._count_fault("truncate")
                if cut:
                    try:
                        sink.sendall(data[:cut])
                    except OSError:
                        pass
                return  # caller closes both sockets: mid-response cut
            threshold += plan.corrupt_probability
            if roll < threshold:
                position = rng.randrange(0, len(data))
                mangled = bytearray(data)
                mangled[position] ^= 0xFF
                data = bytes(mangled)
                self._count_fault("corrupt")
            threshold += plan.delay_probability
            if roll < threshold:
                self._count_fault("delay")
                # A real slow link stalls the bytes, not the process:
                # waiting on the stop event keeps shutdown prompt.
                self._stop.wait(plan.delay_s)
            try:
                sink.sendall(data)
            except OSError:
                return


def _close(sock):
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
