"""Turn a :class:`~repro.faults.plan.FaultPlan` into live perturbation.

The :class:`FaultInjector` is the single mutable object behind every
injection seam. Each seam owns its own named RNG stream
(``random.Random("fault:<seed>:<seam>")`` — string seeds hash through
SHA-512, so streams are stable across processes and Python runs), which
keeps the streams independent: adding opportunities at one seam never
shifts the draws of another.

Installation is one attribute: :func:`install_fault_plan` sets
``system.sim.fault_injector``, and the instrumented seams in
:mod:`repro.coherence.controller` and :mod:`repro.machine.cpu` consult
it with a single ``is None`` check. With no injector installed those
paths are byte-for-byte the pre-existing behaviour — the whole
subsystem costs one attribute load per seam when unused.
"""

import random

from repro.telemetry.events import FaultInjected
from repro.telemetry.tracer import NULL_TRACER
from repro.workloads.perturb import inject_preemptions

#: Fault kinds recorded by :meth:`FaultInjector.counts` and the
#: ``fault.kind[...]`` counters.
FAULT_KINDS = (
    "timer_drift",
    "timer_loss",
    "invalidation_delay",
    "invalidation_drop",
    "transition_jitter",
    "spurious_wake",
    "stall",
)


class FaultInjector:
    """Executes one plan against one simulator.

    Created per run (per :class:`~repro.sim.core.Simulator`); the seeded
    streams plus the simulator's deterministic callback order make the
    injected fault sequence — and therefore the entire perturbed run —
    reproducible bit-for-bit.
    """

    def __init__(self, plan, sim, telemetry=None):
        self.plan = plan
        self.sim = sim
        self.telemetry = telemetry if telemetry is not None else NULL_TRACER
        self.counts = {}
        self._streams = {}

    def _stream(self, seam):
        rng = self._streams.get(seam)
        if rng is None:
            rng = random.Random(
                "fault:{}:{}".format(self.plan.seed, seam)
            )
            self._streams[seam] = rng
        return rng

    def _record(self, fault, target, magnitude_ns):
        self.counts[fault] = self.counts.get(fault, 0) + 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(FaultInjected(
                ts=self.sim.now, fault=fault, target=target,
                magnitude_ns=magnitude_ns,
            ))

    @property
    def total_injected(self):
        return sum(self.counts.values())

    # -- seams (called from the instrumented layers) ----------------------

    def on_wake_timer(self, node_id, delay_ns):
        """Perturb one countdown-timer arming.

        Returns ``(delay_ns, lost)``. A lost timer never fires — the
        hybrid wake-up's external signal (or the residual spin) must
        cover, which is exactly the redundancy Section 3.3.2 argues for.
        """
        plan = self.plan
        rng = self._stream("timer")
        if (
            plan.timer_loss_probability
            and rng.random() < plan.timer_loss_probability
        ):
            self._record("timer_loss", node_id, delay_ns)
            return delay_ns, True
        if (
            plan.timer_drift_probability
            and rng.random() < plan.timer_drift_probability
        ):
            drift = rng.randint(
                -plan.timer_drift_max_ns, plan.timer_drift_max_ns
            )
            drifted = max(0, delay_ns + drift)
            self._record("timer_drift", node_id, drifted - delay_ns)
            return drifted, False
        return delay_ns, False

    def on_monitor_fire(self, node_id, line_addr):
        """Perturb one flag-monitor wake-up delivery.

        Returns the extra delivery delay in ns (0 = deliver now). A
        "drop" is modeled as drop-then-redeliver: the wake-up goes
        missing for ``invalidation_redeliver_ns`` and then arrives, so
        liveness is delayed, never lost.
        """
        plan = self.plan
        rng = self._stream("invalidation")
        if (
            plan.invalidation_drop_probability
            and rng.random() < plan.invalidation_drop_probability
        ):
            delay = plan.invalidation_redeliver_ns
            self._record("invalidation_drop", node_id, delay)
            return delay
        if (
            plan.invalidation_delay_probability
            and rng.random() < plan.invalidation_delay_probability
        ):
            delay = rng.randint(0, plan.invalidation_delay_max_ns)
            if delay:
                self._record("invalidation_delay", node_id, delay)
            return delay
        return 0

    def on_transition(self, node_id, state_name):
        """Extra latency for one sleep-state transition ramp (ns)."""
        plan = self.plan
        rng = self._stream("transition")
        if (
            plan.transition_jitter_probability
            and rng.random() < plan.transition_jitter_probability
        ):
            extra = rng.randint(0, plan.transition_jitter_max_ns)
            if extra:
                self._record("transition_jitter", node_id, extra)
            return extra
        return 0

    def on_sleep_entry(self, node_id, wake_event):
        """Maybe schedule a spurious wake-up for this sleep.

        The stray signal succeeds the composite wake event directly
        with the value ``"fault:spurious"`` — distinguishable from both
        legitimate sources, and guarded so it never double-triggers an
        event a real wake-up already won.
        """
        plan = self.plan
        rng = self._stream("spurious")
        if not (
            plan.spurious_wake_probability
            and rng.random() < plan.spurious_wake_probability
        ):
            return
        delay = rng.randint(0, plan.spurious_wake_max_ns)

        def fire():
            if not wake_event.triggered:
                self._record("spurious_wake", node_id, delay)
                wake_event.succeed("fault:spurious")

        self.sim.schedule(delay, fire)

    def perturb_hook(self):
        """The straggler seam, as a ``WorkloadRunner`` perturb hook.

        Returns None when the plan has no stall component; otherwise a
        callable composing :func:`~repro.workloads.perturb.
        inject_preemptions` with a seed drawn from the stall stream,
        recording every injected stall.
        """
        plan = self.plan
        if plan.stall_probability <= 0 or plan.stall_duration_ns <= 0:
            return None
        seed = self._stream("stall").randrange(2**32)

        def perturb(instances):
            perturbed, events = inject_preemptions(
                instances,
                probability=plan.stall_probability,
                duration_ns=plan.stall_duration_ns,
                seed=seed,
            )
            for _index, thread, duration_ns in events:
                self._record("stall", thread, duration_ns)
            return perturbed

        return perturb


def install_fault_plan(system, plan, telemetry=None):
    """Wire a plan into a built :class:`~repro.machine.System`.

    Returns the installed :class:`FaultInjector` (or None for a no-op
    plan, leaving the simulator untouched).
    """
    if plan is None or plan.is_noop:
        return None
    injector = FaultInjector(
        plan, system.sim,
        telemetry=telemetry if telemetry is not None else system.telemetry,
    )
    system.sim.fault_injector = injector
    return injector
