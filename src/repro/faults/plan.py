"""Declarative, seeded fault plans.

A :class:`FaultPlan` names the adversarial timing behaviour one chaos
run subjects the simulated machine to. It is pure data — probabilities
and magnitudes per injection seam plus one seed — so a plan can travel
(into reports, across processes) and two runs with the same
``(seed, plan, configuration)`` triple are bit-identical, event stream
included. The seams mirror the thrifty barrier's own robustness
arguments (Sections 3.3-3.4 of the paper):

* **wake timer** — drift (the countdown fires early or late) and loss
  (the countdown never fires; the hybrid wake-up's external signal must
  cover);
* **barrier-flag invalidation** — the external wake-up is delayed, or
  dropped and redelivered later (a lost-then-retried coherence message);
* **sleep transitions** — entering/leaving a sleep state takes longer
  than the Table 3 latency (voltage-ramp jitter);
* **spurious wake-ups** — a sleeping CPU is woken by neither wake
  source (stray interrupt); the residual spin of Section 3.3.1 must
  absorb it;
* **stragglers** — OS context-switch/preemption stalls lengthen random
  compute phases (Section 3.4.2), composed from
  :func:`repro.workloads.perturb.inject_preemptions` with the
  context-switch cost model of :mod:`repro.machine.timeshare`.

Every fault is *recoverable by construction*: timers may be lost but
invalidations are always eventually delivered, so a correct barrier
still reaches every release — chaos costs energy and lateness, never
forward progress. The invariant watchdog
(:mod:`repro.faults.invariants`) holds runs to exactly that.
"""

import random
from dataclasses import dataclass, fields

from repro.errors import ConfigError
from repro.machine.timeshare import DEFAULT_CONTEXT_SWITCH_NS

#: Default redelivery latency for a dropped flag invalidation: the wake
#: signal goes missing long enough to matter, never forever.
DEFAULT_REDELIVER_NS = 100_000

#: Default straggler stall: a scheduling quantum's worth of context
#: switches (Section 3.4.2 models page faults / daemons at ~ms scale;
#: the default stays one order below so small tests remain fast).
DEFAULT_STALL_NS = 20 * DEFAULT_CONTEXT_SWITCH_NS

_PROBABILITY_FIELDS = (
    "timer_drift_probability",
    "timer_loss_probability",
    "invalidation_delay_probability",
    "invalidation_drop_probability",
    "transition_jitter_probability",
    "spurious_wake_probability",
    "stall_probability",
)

_MAGNITUDE_FIELDS = (
    "timer_drift_max_ns",
    "invalidation_delay_max_ns",
    "invalidation_redeliver_ns",
    "transition_jitter_max_ns",
    "spurious_wake_max_ns",
    "stall_duration_ns",
)


@dataclass(frozen=True)
class FaultPlan:
    """One seeded recipe of timing faults (see the module docstring).

    All probabilities are per *opportunity* (per armed timer, per
    monitor fire, per transition, per sleep, per barrier instance), all
    magnitudes in integer nanoseconds. The all-zero default plan is a
    no-op: installing it perturbs nothing.
    """

    name: str = "chaos"
    seed: int = 0
    # -- wake-timer seam (cache controller countdown, Section 3.3.2) --
    timer_drift_probability: float = 0.0
    timer_drift_max_ns: int = 25_000
    timer_loss_probability: float = 0.0
    # -- barrier-flag invalidation seam (external wake-up, 3.3.1) -----
    invalidation_delay_probability: float = 0.0
    invalidation_delay_max_ns: int = 25_000
    invalidation_drop_probability: float = 0.0
    invalidation_redeliver_ns: int = DEFAULT_REDELIVER_NS
    # -- sleep-state transition seam (Table 3 latencies) --------------
    transition_jitter_probability: float = 0.0
    transition_jitter_max_ns: int = 10_000
    # -- spurious wake-up seam (residual spin, 3.3.1) -----------------
    spurious_wake_probability: float = 0.0
    spurious_wake_max_ns: int = 50_000
    # -- straggler seam (context switches / preemption, 3.4.2) --------
    stall_probability: float = 0.0
    stall_duration_ns: int = DEFAULT_STALL_NS

    def __post_init__(self):
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    "{} must be in [0, 1], got {}".format(name, value)
                )
        for name in _MAGNITUDE_FIELDS:
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(
                    "{} must be non-negative, got {}".format(name, value)
                )
        if self.invalidation_drop_probability > 0 and (
            self.invalidation_redeliver_ns <= 0
        ):
            raise ConfigError(
                "dropped invalidations must be redelivered: set "
                "invalidation_redeliver_ns > 0 (liveness would be lost)"
            )

    @property
    def is_noop(self):
        """True when no seam can ever fire (the all-zero plan)."""
        return all(
            getattr(self, name) == 0.0 for name in _PROBABILITY_FIELDS
        )

    def describe(self):
        """Compact one-line summary of the active seams."""
        active = [
            "{}={:g}".format(name.replace("_probability", ""), value)
            for name in _PROBABILITY_FIELDS
            if (value := getattr(self, name)) > 0
        ]
        return "{}(seed={}, {})".format(
            self.name, self.seed, ", ".join(active) or "noop"
        )

    @classmethod
    def sample(cls, seed, name=None, intensity=1.0):
        """Draw a randomized-but-deterministic plan from ``seed``.

        ``intensity`` scales every probability (1.0 keeps each seam
        below ~25% per opportunity, aggressive but recoverable). The
        same seed always yields the same plan — the campaign suite
        relies on this for reproducible chaos.
        """
        if intensity < 0:
            raise ConfigError("intensity must be non-negative")
        rng = random.Random("fault-plan:{}".format(seed))

        def probability(ceiling):
            return min(1.0, round(rng.uniform(0.0, ceiling) * intensity, 4))

        return cls(
            name=name or "plan-{}".format(seed),
            seed=seed,
            timer_drift_probability=probability(0.25),
            timer_drift_max_ns=rng.randint(1_000, 50_000),
            timer_loss_probability=probability(0.15),
            invalidation_delay_probability=probability(0.25),
            invalidation_delay_max_ns=rng.randint(1_000, 50_000),
            invalidation_drop_probability=probability(0.10),
            invalidation_redeliver_ns=rng.randint(20_000, 200_000),
            transition_jitter_probability=probability(0.25),
            transition_jitter_max_ns=rng.randint(500, 20_000),
            spurious_wake_probability=probability(0.20),
            spurious_wake_max_ns=rng.randint(5_000, 100_000),
            stall_probability=probability(0.15),
            stall_duration_ns=rng.randint(
                DEFAULT_CONTEXT_SWITCH_NS, 40 * DEFAULT_CONTEXT_SWITCH_NS
            ),
        )

    def as_dict(self):
        """Field dict (report/JSON-friendly)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
