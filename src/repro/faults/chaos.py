"""Seeded chaos campaigns across the paper's five configurations.

A campaign is a matrix of (application, configuration, fault plan)
cells. Each cell runs one live simulation with the plan installed (the
derived oracle configurations replay their perturbed Baseline), audits
the full telemetry stream with the
:class:`~repro.faults.invariants.InvariantChecker`, and reports what
chaos cost: injected-fault counts, late wake-ups, and the energy and
execution-time deltas against the same cell run clean. The thrifty
configurations run with graceful degradation enabled
(:data:`DEGRADED_THRIFTY`) so disabled predictors fall back to
spin-then-sleep and re-enable after probation.

Everything is seeded: the same ``(plans, apps, configs, threads,
seed)`` produce byte-identical reports, which is what lets the chaos
CI smoke job diff against a clean baseline.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.experiments.configs import (
    CONFIG_NAMES,
    DERIVED_CONFIGS,
    LIVE_CONFIGS,
)
from repro.experiments.runner import (
    DEFAULT_SEED,
    _derived_result,
    _live_result,
    _run_live,
)
from repro.faults.injector import FAULT_KINDS
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.telemetry.tracer import Tracer

#: Liveness deadline for campaign cells: a departure more than 10 ms of
#: simulated time after its release is a violation. Generous against
#: the worst recoverable injection (a dropped invalidation redelivered
#: at ≤200 µs plus a Sleep3 wake) yet far below any real hang.
DEFAULT_DEADLINE_NS = 10_000_000

#: Thrifty-policy overrides active during chaos: a cut-off (thread, PC)
#: falls back to spin-then-sleep and is re-enabled after eight
#: consecutive safe episodes. Clean (delta-reference) runs use the same
#: overrides so deltas isolate the injected faults.
DEGRADED_THRIFTY = {
    "probation_episodes": 8,
    "fallback_spin_then_sleep": True,
}

#: Apps exercised when the caller does not choose (small but distinct
#: imbalance profiles).
DEFAULT_APPS = ("fmm",)


def sample_plans(count, seed=0, intensity=1.0):
    """``count`` deterministic plans fanned out from one campaign seed."""
    if count < 1:
        raise ConfigError("a campaign needs at least one plan")
    return [
        FaultPlan.sample(seed + 7919 * index, intensity=intensity)
        for index in range(count)
    ]


def _overrides_for(config):
    return dict(DEGRADED_THRIFTY) if config in (
        "thrifty", "thrifty-halt"
    ) else {}


@dataclass
class ChaosCellReport:
    """One (app, config, plan) chaos run, audited."""

    app: str
    config: str
    plan: FaultPlan
    threads: int
    violations: tuple
    injected: dict
    late_wakes: int
    releases: int
    execution_time_ns: int
    energy_joules: float
    #: Deltas vs. the clean run of the same cell (None without one).
    energy_delta: object = None
    time_delta_ns: object = None

    @property
    def ok(self):
        return not self.violations

    @property
    def total_injected(self):
        return sum(self.injected.values())


@dataclass
class ChaosCampaignReport:
    """A full campaign: every cell plus roll-up properties.

    ``interrupted`` marks a campaign stopped by preemption before every
    planned cell ran — :attr:`cells` then holds the partial results
    (never discarded), ``planned`` what a full run would contain, and
    ``run_id`` (when journaled) what to pass to ``--resume``.
    ``resumed_cells`` counts cells restored from the journal's payload
    store instead of re-simulated. ``stopped_early`` marks a
    ``fail_fast`` campaign that stopped at its first violating cell.
    """

    cells: list = field(default_factory=list)
    deadline_ns: int = DEFAULT_DEADLINE_NS
    planned: int = 0
    interrupted: bool = False
    run_id: str = ""
    resumed_cells: int = 0
    stopped_early: bool = False

    @property
    def violations(self):
        return tuple(
            violation for cell in self.cells for violation in cell.violations
        )

    @property
    def ok(self):
        return not self.violations

    @property
    def total_injected(self):
        return sum(cell.total_injected for cell in self.cells)

    @property
    def total_late_wakes(self):
        return sum(cell.late_wakes for cell in self.cells)


def run_chaos_cell(
    app, config, plan, threads=16, seed=DEFAULT_SEED,
    machine_config=None, deadline_ns=DEFAULT_DEADLINE_NS, clean=None,
):
    """Run and audit one chaos cell; returns a :class:`ChaosCellReport`.

    ``clean`` is an optional :class:`~repro.experiments.runner.
    ExperimentResult` of the same cell without a plan, used for the
    energy/time deltas.
    """
    if config not in CONFIG_NAMES:
        raise ConfigError(
            "unknown configuration {!r}; choose from {}".format(
                config, ", ".join(CONFIG_NAMES)
            )
        )
    tracer = Tracer()
    overrides = _overrides_for(config)
    if config in LIVE_CONFIGS:
        run = _run_live(
            app, config, threads, seed, machine_config, overrides,
            telemetry=tracer, fault_plan=plan,
        )
        result = _live_result(app, config, run)
    else:
        run = _run_live(
            app, "baseline", threads, seed, machine_config, {},
            telemetry=tracer, fault_plan=plan,
        )
        result = _derived_result(app, config, run)
    checker = InvariantChecker(deadline_ns=deadline_ns)
    violations = checker.audit(
        tracer.events, accounts=run.accounts, tracer=tracer,
    )
    counters = tracer.metrics.snapshot().get("counters", {})
    injected = {
        kind: counters["fault.kind[{}]".format(kind)]
        for kind in FAULT_KINDS
        if "fault.kind[{}]".format(kind) in counters
    }
    report = ChaosCellReport(
        app=app,
        config=config,
        plan=plan,
        threads=threads,
        violations=tuple(violations),
        injected=injected,
        late_wakes=counters.get("wake.late", 0),
        releases=counters.get("barrier.releases", 0),
        execution_time_ns=result.execution_time_ns,
        energy_joules=result.energy_joules,
    )
    if clean is not None:
        report.energy_delta = result.energy_joules - clean.energy_joules
        report.time_delta_ns = (
            result.execution_time_ns - clean.execution_time_ns
        )
    return report


def _clean_result(app, config, threads, seed, machine_config):
    """The unperturbed reference cell (same degradation overrides)."""
    if config in LIVE_CONFIGS:
        run = _run_live(
            app, config, threads, seed, machine_config,
            _overrides_for(config),
        )
        return _live_result(app, config, run)
    run = _run_live(app, "baseline", threads, seed, machine_config, {})
    return _derived_result(app, config, run)


def run_chaos_campaign(
    plans, apps=DEFAULT_APPS, configs=CONFIG_NAMES, threads=16,
    seed=DEFAULT_SEED, machine_config=None,
    deadline_ns=DEFAULT_DEADLINE_NS, journal=None, preemption=None,
    fail_fast=False,
):
    """Sweep plans × apps × configs; returns a
    :class:`ChaosCampaignReport`. Clean reference runs are shared per
    (app, config).

    Crash safety: with a ``journal``
    (:class:`~repro.experiments.journal.RunJournal`), every finished
    cell's report — and each shared clean reference — is atomically
    persisted in the journal's payload store, so a resumed campaign
    restores them instead of re-simulating; results are byte-identical
    either way (the cells are seeded). With ``preemption`` (anything
    exposing ``requested``), a SIGTERM/SIGINT between cells — or a
    raw ``KeyboardInterrupt`` mid-cell — ends the campaign gracefully:
    the partial report is *returned*, never discarded, flagged
    ``interrupted`` so the CLI can exit with the resumable status.

    ``fail_fast`` stops the sweep at the first violating cell (restored
    or freshly run) and flags the report ``stopped_early`` — the
    violating cell is the last in :attr:`~ChaosCampaignReport.cells`.
    """
    configs = tuple(configs)
    unknown = [c for c in configs if c not in CONFIG_NAMES]
    if unknown:
        raise ConfigError(
            "unknown configuration(s) {}; choose from {}".format(
                ", ".join(map(repr, unknown)), ", ".join(CONFIG_NAMES)
            )
        )
    apps = tuple(apps)
    report = ChaosCampaignReport(
        deadline_ns=deadline_ns,
        planned=len(apps) * len(configs) * len(plans),
    )
    if journal is not None:
        report.run_id = journal.run_id
    state = journal.replay() if journal is not None else None
    clean_cache = {}

    def preempted():
        return preemption is not None and bool(
            getattr(preemption, "requested", False)
        )

    def clean_for(app, config):
        key = (app, config)
        if key not in clean_cache:
            cell_id = "clean/{}/{}".format(app, config)
            clean = (
                journal.load_payload(cell_id)
                if journal is not None else None
            )
            if clean is None:
                clean = _clean_result(
                    app, config, threads, seed, machine_config
                )
                if journal is not None:
                    journal.store_payload(cell_id, clean)
            clean_cache[key] = clean
        return clean_cache[key]

    def mark_interrupted(reason):
        report.interrupted = True
        if journal is not None:
            journal.record_interrupted(
                reason, len(report.cells), report.planned
            )

    try:
        for app in apps:
            for config in configs:
                for plan_index, plan in enumerate(plans):
                    if preempted():
                        mark_interrupted(
                            getattr(preemption, "reason", "request")
                        )
                        return report
                    cell_id = "{}/{}/plan{}".format(app, config, plan_index)
                    if state is not None and cell_id in state.completed:
                        restored = journal.load_payload(cell_id)
                        if restored is not None:
                            report.cells.append(restored)
                            report.resumed_cells += 1
                            if fail_fast and restored.violations:
                                report.stopped_early = True
                                return report
                            continue
                    if journal is not None:
                        journal.record_dispatched(cell_id)
                    cell = run_chaos_cell(
                        app, config, plan, threads=threads, seed=seed,
                        machine_config=machine_config,
                        deadline_ns=deadline_ns,
                        clean=clean_for(app, config),
                    )
                    if journal is not None:
                        journal.store_payload(cell_id, cell)
                        journal.record_completed(cell_id)
                    report.cells.append(cell)
                    if fail_fast and cell.violations:
                        report.stopped_early = True
                        return report
    except KeyboardInterrupt:
        # A raw Ctrl-C mid-simulation (no guard installed, or the
        # operator pressed it twice): still report what finished.
        mark_interrupted("SIGINT")
        return report
    if journal is not None:
        journal.record_finished(completed=len(report.cells), failed=0)
    return report


def chaos_report_as_dict(report):
    """JSON-friendly form of a campaign report (``repro chaos --json``).

    Every violation is embedded via
    :meth:`~repro.faults.invariants.InvariantViolation.as_dict`, so the
    report carries the offending event window — first/last stream index
    plus timestamps — pointing straight into the cell's trace export.
    """
    return {
        "kind": "chaos-campaign",
        "deadline_ns": report.deadline_ns,
        "planned": report.planned,
        "interrupted": report.interrupted,
        "stopped_early": report.stopped_early,
        "run_id": report.run_id,
        "resumed_cells": report.resumed_cells,
        "ok": report.ok,
        "total_injected": report.total_injected,
        "total_late_wakes": report.total_late_wakes,
        "cells": [
            {
                "app": cell.app,
                "config": cell.config,
                "plan": cell.plan.as_dict(),
                "threads": cell.threads,
                "injected": dict(cell.injected),
                "late_wakes": cell.late_wakes,
                "releases": cell.releases,
                "execution_time_ns": cell.execution_time_ns,
                "energy_joules": cell.energy_joules,
                "energy_delta": cell.energy_delta,
                "time_delta_ns": cell.time_delta_ns,
                "violations": [
                    violation.as_dict() for violation in cell.violations
                ],
            }
            for cell in report.cells
        ],
    }


def render_chaos_report(report):
    """Human-readable campaign summary (the ``repro chaos`` output)."""
    from repro.experiments.report import render_table

    rows = []
    for cell in report.cells:
        energy_delta = (
            "{:+.2%}".format(
                cell.energy_delta
                / (cell.energy_joules - cell.energy_delta)
            )
            if cell.energy_delta is not None
            and cell.energy_joules != cell.energy_delta
            else "-"
        )
        time_delta = (
            "{:+,} ns".format(cell.time_delta_ns)
            if cell.time_delta_ns is not None else "-"
        )
        rows.append((
            cell.app,
            cell.config,
            cell.plan.name,
            cell.total_injected,
            cell.releases,
            cell.late_wakes,
            len(cell.violations),
            energy_delta,
            time_delta,
        ))
    lines = [render_table(
        (
            "App", "Config", "Plan", "Faults", "Releases", "Late",
            "Violations", "dE", "dT",
        ),
        rows,
        title="Chaos campaign ({} cells, deadline {:,} ns)".format(
            len(report.cells), report.deadline_ns
        ),
    )]
    for violation in report.violations:
        lines.append("VIOLATION " + violation.describe())
    if report.resumed_cells:
        lines.append(
            "{} cell(s) restored from the run journal (not re-run)".format(
                report.resumed_cells
            )
        )
    if report.stopped_early:
        lines.append(
            "STOPPED EARLY (--fail-fast): {} of {} planned cell(s) ran "
            "before the first violation".format(
                len(report.cells), report.planned
            )
        )
    if report.interrupted:
        lines.append(
            "INTERRUPTED (resumable): {} of {} planned cell(s) finished "
            "before preemption; partial results above".format(
                len(report.cells), report.planned
            )
        )
    lines.append(
        "{}: {} fault(s) injected, {} late wake-up(s), "
        "{} invariant violation(s)".format(
            "OK" if report.ok else "FAILED",
            report.total_injected,
            report.total_late_wakes,
            len(report.violations),
        )
    )
    return "\n".join(lines)
