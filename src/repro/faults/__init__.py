"""Deterministic fault injection and invariant checking.

Three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the seeded declarative
  recipe of timing faults;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which executes
  a plan against one simulator through the narrow seams in the
  coherence controller and CPU sleep path (no-ops when absent);
* :mod:`repro.faults.invariants` — :class:`InvariantChecker`, the
  post-run watchdog holding any run (faulted or not) to barrier
  safety/liveness, monotonic time, and energy conservation;
* :mod:`repro.faults.storage` — :class:`StorageFaultInjector`, the
  same idea aimed at the repo's own durability layer: seeded ENOSPC /
  EIO / torn-write / crash-at-fsync injection behind the I/O shim the
  journal and result cache write through;
* :mod:`repro.faults.netchaos` — :class:`ChaosProxy`, an in-process
  TCP forwarder injecting delays, drops, truncation, and corruption
  between a serve client and its server.

:mod:`repro.faults.chaos` (imported lazily — it pulls in the
experiment harness) sweeps sampled plans across the paper's five
configurations; the CLI surfaces it as ``repro chaos``.
"""

from repro.faults.injector import FAULT_KINDS, FaultInjector, install_fault_plan
from repro.faults.netchaos import NET_FAULT_KINDS, ChaosProxy, NetChaosPlan
from repro.faults.storage import (
    STORAGE_FAULT_KINDS,
    SimulatedCrash,
    StorageFaultInjector,
    StorageFaultPlan,
    install_storage_faults,
    storage_faults,
    uninstall_storage_faults,
)
from repro.faults.invariants import (
    BARRIER_LIVENESS,
    BARRIER_SAFETY,
    ENERGY_CONSERVATION,
    INVARIANTS,
    MONOTONIC_TIME,
    InvariantChecker,
    InvariantError,
    InvariantViolation,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "BARRIER_LIVENESS",
    "BARRIER_SAFETY",
    "ChaosProxy",
    "ENERGY_CONSERVATION",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "INVARIANTS",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "MONOTONIC_TIME",
    "NET_FAULT_KINDS",
    "NetChaosPlan",
    "STORAGE_FAULT_KINDS",
    "SimulatedCrash",
    "StorageFaultInjector",
    "StorageFaultPlan",
    "install_fault_plan",
    "install_storage_faults",
    "storage_faults",
    "uninstall_storage_faults",
]
