"""Seeded filesystem fault injection and the durable-I/O shim.

The crash-safety story of PRs 4-7 rests on three storage idioms:
fsynced journal appends, tmp-file + ``os.replace`` atomic writes, and
corruption-tolerant reads. Until now those idioms were only ever
exercised on a healthy filesystem — the durability claims were real
but untested against the failures that actually visit production
disks: ``ENOSPC``, ``EIO``, short/torn writes, and a process dying
mid-``fsync``.

This module closes that gap with two layers:

* a **shim** — :func:`shim_write`, :func:`shim_fsync`,
  :func:`shim_replace` and the durable primitives
  :func:`append_line_durable` / :func:`atomic_write_bytes` built on
  them. The journal and the result cache route every
  durability-critical syscall through these seams. With no injector
  installed each seam is a single ``is None`` test in front of the
  real ``os`` call, so the disabled path costs nothing measurable
  (``benchmarks/bench_journal_overhead.py`` holds it to <2% of a
  journal append);
* a **seeded injector** — :class:`StorageFaultPlan` (pure data, like
  :class:`~repro.faults.plan.FaultPlan`) plus
  :class:`StorageFaultInjector`, which executes the plan against the
  shim deterministically: the same ``(seed, plan)`` against the same
  operation sequence injects the same faults at the same points. That
  determinism is what lets CI kill a campaign with a seeded
  ENOSPC/torn-write/crash plan, repair it with ``repro fsck``, resume
  it, and byte-compare against a fault-free run.

Faults modeled
--------------

``enospc``
    ``os.write`` raises ``OSError(ENOSPC)``. With
    ``fill_after_bytes`` set, the injector behaves like a disk with
    that many free bytes: writes succeed until the horizon, then the
    final write lands a *prefix* (the classic disk-full tear) and
    every later write fails.
``torn-write``
    Only a seeded prefix of the data reaches the file before the
    write raises — the on-disk state a power cut or full disk leaves
    behind mid-append.
``eio``
    A write, fsync, or rename raises ``OSError(EIO)`` — the
    going-bad-disk case the corrupt-read counters exist for.
``crash-fsync``
    The Nth fsync raises :class:`SimulatedCrash` **instead of**
    syncing. It derives from ``BaseException`` so no graceful
    ``except OSError`` degrade path can absorb it: it unwinds the
    process like a kill, leaving whatever the previous faults left on
    disk for ``repro fsck`` to find.

Activation is explicit (:func:`install_storage_faults` /
:class:`storage_faults`) or via the ``REPRO_STORAGE_FAULTS``
environment variable holding the plan as JSON
(:func:`install_from_env`) — the hook the CLI uses so a *subprocess*
campaign can run under a fault plan in CI.
"""

import errno
import json
import os
import random
import tempfile
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import ConfigError

#: Environment variable holding a JSON-encoded :class:`StorageFaultPlan`.
STORAGE_FAULTS_ENV = "REPRO_STORAGE_FAULTS"

#: Injectable storage fault kinds, for reference and validation.
STORAGE_FAULT_KINDS = ("enospc", "torn-write", "eio", "crash-fsync")

_PROBABILITY_FIELDS = (
    "enospc_probability",
    "torn_write_probability",
    "eio_probability",
)


class SimulatedCrash(BaseException):
    """The process "died" at an injected crash point.

    Deliberately a ``BaseException``: the graceful-degradation paths
    catch ``OSError`` (a full disk must not kill a campaign), and a
    simulated crash must not be degradable — it has to unwind the
    whole process the way SIGKILL would, leaving the on-disk state
    exactly as the preceding faults tore it.
    """


@dataclass(frozen=True)
class StorageFaultPlan:
    """One seeded recipe of storage faults (see the module docstring).

    Probabilities are per *operation* (per shim write / fsync /
    rename); ``crash_at_fsync`` counts fsyncs (0 disables);
    ``fill_after_bytes`` is the simulated free-space horizon in bytes
    (0 = unlimited). The all-zero default plan is a no-op.
    """

    name: str = "storage-chaos"
    seed: int = 0
    enospc_probability: float = 0.0
    torn_write_probability: float = 0.0
    eio_probability: float = 0.0
    crash_at_fsync: int = 0
    fill_after_bytes: int = 0

    def __post_init__(self):
        for field_name in _PROBABILITY_FIELDS:
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    "{} must be in [0, 1], got {}".format(field_name, value)
                )
        if self.crash_at_fsync < 0:
            raise ConfigError(
                "crash_at_fsync must be non-negative (0 disables), got "
                "{}".format(self.crash_at_fsync)
            )
        if self.fill_after_bytes < 0:
            raise ConfigError(
                "fill_after_bytes must be non-negative (0 = unlimited), "
                "got {}".format(self.fill_after_bytes)
            )

    @property
    def is_noop(self):
        """True when no fault can ever fire (the all-zero plan)."""
        return (
            all(getattr(self, f) == 0.0 for f in _PROBABILITY_FIELDS)
            and self.crash_at_fsync == 0
            and self.fill_after_bytes == 0
        )

    def describe(self):
        """Compact one-line summary of the active fault sources."""
        active = [
            "{}={:g}".format(f.replace("_probability", ""), value)
            for f in _PROBABILITY_FIELDS
            if (value := getattr(self, f)) > 0
        ]
        if self.crash_at_fsync:
            active.append("crash_at_fsync={}".format(self.crash_at_fsync))
        if self.fill_after_bytes:
            active.append("fill_after_bytes={}".format(self.fill_after_bytes))
        return "{}(seed={}, {})".format(
            self.name, self.seed, ", ".join(active) or "noop"
        )

    def as_dict(self):
        """Field dict (JSON/env-var friendly)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, document):
        """Build a plan from a (possibly partial) field dict."""
        if not isinstance(document, dict):
            raise ConfigError(
                "storage fault plan must be a JSON object, got "
                "{!r}".format(document)
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise ConfigError(
                "unknown storage fault plan field(s) {}; allowed: "
                "{}".format(", ".join(unknown), ", ".join(sorted(known)))
            )
        return cls(**document)


class StorageFaultInjector:
    """Executes a :class:`StorageFaultPlan` at the shim seams.

    Deterministic: one RNG draw per operation (plus one for a tear
    position when a tear fires), seeded from the plan alone, so a
    fixed plan against a fixed operation sequence always injects the
    same faults. Counters record what actually happened
    (:attr:`injected` maps fault kind to count).
    """

    def __init__(self, plan):
        if not isinstance(plan, StorageFaultPlan):
            plan = StorageFaultPlan.from_dict(plan)
        self.plan = plan
        self._rng = random.Random("storage-faults:{}".format(plan.seed))
        self.writes = 0
        self.fsyncs = 0
        self.replaces = 0
        self.bytes_written = 0
        self.injected = {kind: 0 for kind in STORAGE_FAULT_KINDS}

    def _inject(self, kind, code, message):
        self.injected[kind] += 1
        raise OSError(code, "injected {}: {}".format(kind, message))

    # -- the three seams ----------------------------------------------

    def write(self, fd, data):
        """``os.write`` with seeded ENOSPC / torn-write / EIO faults."""
        self.writes += 1
        plan = self.plan
        if plan.fill_after_bytes:
            room = plan.fill_after_bytes - self.bytes_written
            if room < len(data):
                # The disk "fills" mid-write: a prefix lands, the rest
                # does not — the canonical torn append.
                if room > 0:
                    self.bytes_written += _write_all(fd, data[:room])
                self._inject(
                    "enospc", errno.ENOSPC,
                    "disk full after {} bytes".format(plan.fill_after_bytes),
                )
        roll = self._rng.random()
        threshold = plan.torn_write_probability
        if roll < threshold:
            cut = self._rng.randrange(0, max(1, len(data)))
            if cut:
                self.bytes_written += _write_all(fd, data[:cut])
            self._inject(
                "torn-write", errno.ENOSPC,
                "{} of {} bytes written".format(cut, len(data)),
            )
        threshold += plan.enospc_probability
        if roll < threshold:
            self._inject("enospc", errno.ENOSPC, "no space left on device")
        threshold += plan.eio_probability
        if roll < threshold:
            self._inject("eio", errno.EIO, "write error")
        written = _write_all(fd, data)
        self.bytes_written += written
        return written

    def fsync(self, fd):
        """``os.fsync`` with the crash point and seeded EIO."""
        self.fsyncs += 1
        plan = self.plan
        if plan.crash_at_fsync and self.fsyncs >= plan.crash_at_fsync:
            self.injected["crash-fsync"] += 1
            raise SimulatedCrash(
                "injected crash at fsync #{}".format(self.fsyncs)
            )
        if self._rng.random() < plan.eio_probability:
            self._inject("eio", errno.EIO, "fsync error")
        os.fsync(fd)

    def replace(self, src, dst):
        """``os.replace`` with seeded EIO (a failing rename)."""
        self.replaces += 1
        if self._rng.random() < self.plan.eio_probability:
            self._inject("eio", errno.EIO, "rename error")
        os.replace(src, dst)

    def stats(self):
        return {
            "writes": self.writes,
            "fsyncs": self.fsyncs,
            "replaces": self.replaces,
            "bytes_written": self.bytes_written,
            "injected": dict(self.injected),
        }

    def __repr__(self):
        return "StorageFaultInjector({})".format(self.plan.describe())


# ---------------------------------------------------------------------
# the shim

#: The active injector, or None (the fast path).
_INJECTOR = None


def _write_all(fd, data):
    """``os.write`` the whole buffer (it may write short)."""
    view = memoryview(data)
    total = 0
    while view:
        written = os.write(fd, view)
        total += written
        view = view[written:]
    return total


def install_storage_faults(plan):
    """Install a plan (or prebuilt injector) at the shim; returns the
    injector so callers can read its counters afterwards."""
    global _INJECTOR
    if isinstance(plan, StorageFaultInjector):
        _INJECTOR = plan
    else:
        _INJECTOR = StorageFaultInjector(plan)
    return _INJECTOR


def uninstall_storage_faults():
    """Remove the active injector (restores the pass-through path)."""
    global _INJECTOR
    _INJECTOR = None


def active_storage_injector():
    """The installed :class:`StorageFaultInjector`, or None."""
    return _INJECTOR


class storage_faults:
    """Context manager scoping a fault plan to a ``with`` block::

        with storage_faults(StorageFaultPlan(seed=7, eio_probability=1.0)):
            cache.put(key, value)   # degrades, counted
    """

    def __init__(self, plan):
        self.injector = (
            plan if isinstance(plan, StorageFaultInjector)
            else StorageFaultInjector(plan)
        )

    def __enter__(self):
        install_storage_faults(self.injector)
        return self.injector

    def __exit__(self, *exc_info):
        uninstall_storage_faults()
        return False


def install_from_env(environ=None):
    """Install the plan named by ``$REPRO_STORAGE_FAULTS``, if any.

    The variable holds the plan as a JSON object (the format
    :meth:`StorageFaultPlan.as_dict` produces). Returns the installed
    injector, or None when the variable is unset/empty. A malformed
    value is a :class:`~repro.errors.ConfigError` — silently running
    *without* the faults a CI job asked for would make the job pass
    vacuously.
    """
    raw = (environ or os.environ).get(STORAGE_FAULTS_ENV, "").strip()
    if not raw:
        return None
    try:
        document = json.loads(raw)
    except ValueError as exc:
        raise ConfigError(
            "${} is not valid JSON: {}".format(STORAGE_FAULTS_ENV, exc)
        )
    return install_storage_faults(StorageFaultPlan.from_dict(document))


def shim_write(fd, data):
    """``os.write`` (whole buffer), through the active injector."""
    injector = _INJECTOR
    if injector is None:
        return _write_all(fd, data)
    return injector.write(fd, data)


def shim_fsync(fd):
    """``os.fsync``, through the active injector."""
    injector = _INJECTOR
    if injector is None:
        os.fsync(fd)
    else:
        injector.fsync(fd)


def shim_replace(src, dst):
    """``os.replace``, through the active injector."""
    injector = _INJECTOR
    if injector is None:
        os.replace(src, dst)
    else:
        injector.replace(src, dst)


# ---------------------------------------------------------------------
# durable primitives built on the seams (shared by journal and cache)

def append_line_durable(path, data, fsync=True):
    """Append ``data`` to ``path`` and (by default) fsync it.

    Unbuffered ``O_APPEND`` writes, so an injected tear leaves exactly
    the prefix the fault model says it should — no stdlib buffer
    flushing extra bytes behind the injector's back.
    """
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        shim_write(fd, data)
        if fsync:
            shim_fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    Readers never observe a partial file: they see either the old
    content or the new content. With ``fsync`` (the default) the data
    is forced to disk before the rename, so even a crash straddling
    the replace leaves a complete file behind. Every syscall goes
    through the fault seams, so an injected ENOSPC/EIO surfaces as an
    ``OSError`` with the tmp file already cleaned up.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        try:
            shim_write(fd, data)
            if fsync:
                shim_fsync(fd)
        finally:
            os.close(fd)
        shim_replace(tmp_name, path)
    except SimulatedCrash:
        # A real crash runs no cleanup: leave the tmp file as the
        # debris ``repro fsck`` exists to sweep up.
        raise
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path, text, fsync=True):
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
