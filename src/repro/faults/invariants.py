"""Barrier safety/liveness and accounting invariants, checked post-run.

The checker consumes the typed telemetry event stream — the same one
the Perfetto export reads — and holds it to the properties that must
survive *any* fault plan:

* **monotonic-time** — each thread's event timestamps never decrease
  in emission order (the discrete-event clock only moves forward).
  Per-thread, not global: check-in events deliberately carry the
  backdated *arrival* timestamp and are emitted once the check-in RMW
  completes, so another thread's events may legitimately interleave
  with later timestamps;
* **barrier-safety** — no thread departs barrier instance N before
  that instance's release (separation-logic style: departure implies
  the release was observed);
* **barrier-liveness** — every check-in is eventually released and the
  thread departs, within an optional simulated-time deadline after the
  release (bounds late wake-ups under chaos);
* **energy-conservation** — per CPU, the sum of the per-category
  accounting spans equals that thread's wall time (its last event
  timestamp): no simulated nanosecond is double-charged or dropped.

Violations are structured :class:`InvariantViolation` records carrying
the offending event window, and :meth:`InvariantChecker.assert_ok`
raises them as one :class:`InvariantError`.
"""

from dataclasses import dataclass, field, replace

from repro.errors import ReproError
from repro.telemetry.events import (
    BarrierCheckIn,
    BarrierDepart,
    BarrierRelease,
    InvariantCheck,
)

MONOTONIC_TIME = "monotonic-time"
BARRIER_SAFETY = "barrier-safety"
BARRIER_LIVENESS = "barrier-liveness"
ENERGY_CONSERVATION = "energy-conservation"

#: All invariant names, in reporting order.
INVARIANTS = (
    MONOTONIC_TIME,
    BARRIER_SAFETY,
    BARRIER_LIVENESS,
    ENERGY_CONSERVATION,
)

#: Most events attached to one violation's window.
_WINDOW_LIMIT = 16


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with the events that witnessed it.

    ``first_index``/``last_index`` locate the witness window in the
    telemetry stream the check ran over (0-based stream positions of
    the window's earliest and latest event), so a JSON report points
    straight at the offending slice of the exported trace. They are
    ``None`` for violations built outside a stream context.
    """

    invariant: str
    message: str
    window: tuple = ()
    first_index: object = None
    last_index: object = None

    def describe(self):
        text = "[{}] {}".format(self.invariant, self.message)
        if self.window:
            text += " (window: {} events, ts {}..{})".format(
                len(self.window), self.window[0].ts, self.window[-1].ts
            )
        return text

    def as_dict(self):
        """JSON-friendly form: message plus the actionable window
        (stream indices and timestamps), never raw event objects."""
        window = tuple(self.window)
        return {
            "invariant": self.invariant,
            "message": self.message,
            "window_events": len(window),
            "window_first_index": getattr(self, "first_index", None),
            "window_last_index": getattr(self, "last_index", None),
            "window_first_ts": window[0].ts if window else None,
            "window_last_ts": window[-1].ts if window else None,
        }


def annotate_window_indices(violations, events):
    """Stamp each violation's window with stream positions.

    ``events`` is the stream the violations were found in; each
    violation's ``first_index``/``last_index`` become the positions of
    its window's earliest/latest event in that stream. Window events
    not present in the stream (defensive) are skipped. Returns new
    (frozen) records; violations without windows pass through
    untouched.
    """
    positions = {id(event): index for index, event in enumerate(events)}
    annotated = []
    for violation in violations:
        indices = sorted(
            positions[id(event)]
            for event in violation.window
            if id(event) in positions
        )
        if not indices:
            annotated.append(violation)
            continue
        annotated.append(replace(
            violation, first_index=indices[0], last_index=indices[-1],
        ))
    return annotated


class InvariantError(ReproError):
    """Raised by :meth:`InvariantChecker.assert_ok`; carries the list."""

    def __init__(self, message, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


def _window(events):
    return tuple(events[:_WINDOW_LIMIT])


@dataclass
class _Instance:
    """Working state for one (pc, sequence) barrier episode."""

    pc: str
    sequence: int
    check_ins: dict = field(default_factory=dict)   # thread -> event
    departs: dict = field(default_factory=dict)     # thread -> event
    release: object = None
    events: list = field(default_factory=list)


class InvariantChecker:
    """Audits one run's event stream (and optionally its accounts).

    Parameters
    ----------
    deadline_ns:
        Maximum simulated time between an instance's release and any
        participant's departure (the liveness bound). ``None`` disables
        the deadline; releases/departures are still required to exist.
    """

    def __init__(self, deadline_ns=None):
        if deadline_ns is not None and deadline_ns <= 0:
            raise ReproError("deadline_ns must be positive or None")
        self.deadline_ns = deadline_ns

    # -- individual checks -------------------------------------------------

    def _check_monotonic(self, events):
        violations = []
        previous = {}  # thread -> last event
        for position, event in enumerate(events):
            thread = getattr(event, "thread", None)
            if thread is None:
                thread = getattr(event, "target", None)
            last = previous.get(thread)
            if last is not None and event.ts < last.ts:
                violations.append(InvariantViolation(
                    invariant=MONOTONIC_TIME,
                    message=(
                        "thread {}: time went backwards at stream "
                        "position {}: {} after {}".format(
                            thread, position, event.ts, last.ts
                        )
                    ),
                    window=(last, event),
                ))
            previous[thread] = event
        return violations

    def _instances(self, events):
        instances = {}
        for event in events:
            if not isinstance(
                event, (BarrierCheckIn, BarrierRelease, BarrierDepart)
            ):
                continue
            key = (event.pc, event.sequence)
            instance = instances.get(key)
            if instance is None:
                instance = instances[key] = _Instance(
                    pc=event.pc, sequence=event.sequence
                )
            instance.events.append(event)
            if isinstance(event, BarrierCheckIn):
                instance.check_ins.setdefault(event.thread, event)
            elif isinstance(event, BarrierRelease):
                instance.release = event
            else:
                instance.departs.setdefault(event.thread, event)
        return instances

    def _barrier_violations(self, events):
        safety = []
        liveness = []
        instances = self._instances(events)
        for key in sorted(instances):
            instance = instances[key]
            label = "barrier {} instance {}".format(
                instance.pc, instance.sequence
            )
            release = instance.release
            if release is None:
                liveness.append(InvariantViolation(
                    invariant=BARRIER_LIVENESS,
                    message="{}: {} check-in(s) but no release".format(
                        label, len(instance.check_ins)
                    ),
                    window=_window(instance.events),
                ))
                continue
            for thread, depart in sorted(instance.departs.items()):
                if depart.ts < release.ts:
                    safety.append(InvariantViolation(
                        invariant=BARRIER_SAFETY,
                        message=(
                            "{}: thread {} departed at {} before the "
                            "release at {}".format(
                                label, thread, depart.ts, release.ts
                            )
                        ),
                        window=_window(instance.events),
                    ))
                elif (
                    self.deadline_ns is not None
                    and depart.ts - release.ts > self.deadline_ns
                ):
                    liveness.append(InvariantViolation(
                        invariant=BARRIER_LIVENESS,
                        message=(
                            "{}: thread {} departed {} ns after the "
                            "release, beyond the {} ns deadline".format(
                                label, thread, depart.ts - release.ts,
                                self.deadline_ns,
                            )
                        ),
                        window=_window(instance.events),
                    ))
            missing = sorted(
                set(instance.check_ins) - set(instance.departs)
            )
            if missing:
                liveness.append(InvariantViolation(
                    invariant=BARRIER_LIVENESS,
                    message=(
                        "{}: thread(s) {} checked in but never "
                        "departed".format(
                            label, ", ".join(map(str, missing))
                        )
                    ),
                    window=_window(instance.events),
                ))
        return safety, liveness

    def _check_energy(self, events, accounts):
        violations = []
        last_ts = {}
        per_thread = {}
        for event in events:
            thread = getattr(event, "thread", None)
            if thread is None:
                continue
            last_ts[thread] = max(last_ts.get(thread, 0), event.ts)
            per_thread.setdefault(thread, []).append(event)
        for thread in sorted(last_ts):
            if thread >= len(accounts):
                continue
            accounted = accounts[thread].time_ns()
            wall = last_ts[thread]
            if accounted != wall:
                violations.append(InvariantViolation(
                    invariant=ENERGY_CONSERVATION,
                    message=(
                        "cpu {}: accounted spans sum to {} ns but the "
                        "thread's wall time is {} ns (delta {})".format(
                            thread, accounted, wall, accounted - wall
                        )
                    ),
                    window=_window(per_thread[thread][-_WINDOW_LIMIT:]),
                ))
        return violations

    # -- public API --------------------------------------------------------

    def check(self, events, accounts=None):
        """Run every applicable invariant; returns the violation list.

        ``accounts`` is the per-CPU
        :class:`~repro.energy.accounting.EnergyAccount` list (e.g.
        ``RunResult.accounts``); without it the energy-conservation
        check is skipped.
        """
        events = list(events)
        violations = list(self._check_monotonic(events))
        safety, liveness = self._barrier_violations(events)
        violations.extend(safety)
        violations.extend(liveness)
        if accounts is not None:
            violations.extend(self._check_energy(events, accounts))
        return annotate_window_indices(violations, events)

    def audit(self, events, accounts=None, tracer=None):
        """Like :meth:`check`, additionally emitting one
        :class:`~repro.telemetry.events.InvariantCheck` event per
        invariant into ``tracer`` (when enabled), so chaos runs are
        inspectable in the trace export."""
        events = list(events)
        violations = self.check(events, accounts=accounts)
        if tracer is not None and tracer.enabled:
            ts = max((event.ts for event in events), default=0)
            by_name = {}
            for violation in violations:
                by_name[violation.invariant] = (
                    by_name.get(violation.invariant, 0) + 1
                )
            names = INVARIANTS if accounts is not None else tuple(
                name for name in INVARIANTS if name != ENERGY_CONSERVATION
            )
            for name in names:
                count = by_name.get(name, 0)
                tracer.emit(InvariantCheck(
                    ts=ts, invariant=name,
                    passed=count == 0, violations=count,
                ))
        return violations

    def assert_ok(self, events, accounts=None):
        """Raise :class:`InvariantError` if any invariant is violated."""
        violations = self.check(events, accounts=accounts)
        if violations:
            raise InvariantError(
                "{} invariant violation(s): {}".format(
                    len(violations),
                    "; ".join(v.describe() for v in violations[:5]),
                ),
                violations=violations,
            )
        return violations
