"""The tracer the instrumentation points emit into.

The overhead contract: every instrumentation site guards on
:attr:`Tracer.enabled` *before* constructing an event object, so a
disabled tracer costs one attribute load and a branch per site and
allocates nothing. ``benchmarks/bench_telemetry_overhead.py`` enforces
the budget (disabled-tracer runtime within 5% of the untraced
baseline).

:data:`NULL_TRACER` is the shared disabled sentinel wired in wherever
no tracer was requested; its :meth:`~NullTracer.emit` *raises*, turning
any missed ``enabled`` guard into an immediate, loud failure instead of
silent cross-run state pollution.
"""

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.telemetry.metrics import MetricsRegistry


class TelemetryError(ReproError):
    """The telemetry layer was used incorrectly."""


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable, picklable capture of one run's telemetry.

    ``events`` is the full typed event stream in emission order (which
    the deterministic simulator makes reproducible bit-for-bit);
    ``metrics`` is a :meth:`~repro.telemetry.metrics.MetricsRegistry.
    snapshot` dict. Snapshots travel across process boundaries (the
    parallel engine) and in/out of the on-disk result cache.
    """

    events: tuple = ()
    metrics: dict = field(default_factory=dict)

    def registry(self):
        """Rebuild a live :class:`MetricsRegistry` from the snapshot."""
        return MetricsRegistry.from_snapshot(self.metrics)


class Tracer:
    """Collects typed events and derives metrics from them.

    Parameters
    ----------
    enabled:
        The guard flag every instrumentation site checks. A tracer
        created disabled never receives events and never allocates.
    metrics:
        Optional externally owned :class:`MetricsRegistry`; by default
        the tracer owns a fresh one.
    """

    __slots__ = ("enabled", "events", "metrics")

    def __init__(self, enabled=True, metrics=None):
        self.enabled = enabled
        self.events = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def emit(self, event):
        """Append one event and fold it into the metrics registry."""
        self.events.append(event)
        event.record(self.metrics)

    def snapshot(self):
        """Freeze the stream and metrics into a :class:`TelemetrySnapshot`."""
        return TelemetrySnapshot(
            events=tuple(self.events), metrics=self.metrics.snapshot()
        )

    def clear(self):
        self.events.clear()
        self.metrics = MetricsRegistry()

    def __repr__(self):
        return "Tracer(enabled={}, {} events)".format(
            self.enabled, len(self.events)
        )


class NullTracer(Tracer):
    """The disabled sentinel: emitting into it is a bug, and raises."""

    __slots__ = ()

    def __init__(self):
        super().__init__(enabled=False)

    def emit(self, event):
        raise TelemetryError(
            "emit() on the disabled NULL_TRACER — an instrumentation "
            "site is missing its `if tracer.enabled` guard "
            "(event: {!r})".format(event)
        )


#: Shared disabled tracer; the default wherever telemetry is optional.
NULL_TRACER = NullTracer()


def collect_run_metrics(tracer, system, run=None):
    """Harvest end-of-run counters the hot paths keep as plain ints.

    The simulator and the cache controllers count unconditionally
    (integer adds, cheaper than any guard), so their totals are folded
    into the registry once, here, instead of per event. ``run`` is an
    optional :class:`~repro.workloads.generator.RunResult` contributing
    the predictor-table statistics.
    """
    if not tracer.enabled:
        return
    metrics = tracer.metrics
    sim = system.sim
    metrics.counter("sim.callbacks_executed").inc(sim.executed)
    metrics.counter("sim.cancelled_skips").inc(sim.skipped_cancelled)
    metrics.gauge("sim.execution_time_ns").set(sim.now)
    metrics.counter("coherence.monitor_fires").inc(
        sum(node.controller.stats_monitor_fires for node in system.nodes)
    )
    metrics.counter("coherence.flushed_lines").inc(
        sum(node.controller.stats_flushed_lines for node in system.nodes)
    )
    if run is not None and run.predictor is not None:
        stats = run.predictor.stats
        metrics.counter("predictor.table.predictions").inc(stats.predictions)
        metrics.counter("predictor.table.cold_misses").inc(stats.cold_misses)
        metrics.counter("predictor.table.updates").inc(stats.updates)
        metrics.counter("predictor.table.disables").inc(stats.disables)
