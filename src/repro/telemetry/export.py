"""Exporters: Chrome trace-event JSON and CSV metric dumps.

The Chrome trace export produces the JSON object format
(``{"traceEvents": [...]}``) that Perfetto and ``chrome://tracing``
load directly: one row per simulated thread, complete ("X") events for
barrier-wait and sleep-state spans, instant ("i") events for wake-ups,
releases, and predictor actions. Timestamps are emitted in
microseconds (the trace-event unit) from the simulator's nanosecond
clock.

Serialization is canonical — sorted keys, compact separators — so two
runs that emit identical event streams produce *byte-identical* files;
``tests/test_telemetry_determinism.py`` holds the engine to that across
worker counts and cache round-trips.
"""

import csv
import io
import json

from repro.telemetry.events import (
    BarrierDepart,
    BarrierRelease,
    CampaignCancelled,
    CampaignFinished,
    CampaignSubmitted,
    CellResolved,
    CheckpointWritten,
    FaultInjected,
    InvariantCheck,
    LateWake,
    PredictorDisable,
    PredictorFiltered,
    PredictorHit,
    PredictorReenable,
    PredictorTrain,
    ResumeStarted,
    SleepExit,
    StorageFault,
    WakeUp,
    WorkerJoined,
    WorkerLeft,
    WorkerStalled,
)

_PID = 0


def _us(ts_ns):
    """Nanoseconds to the trace-event microsecond unit."""
    return ts_ns / 1000.0


def _complete(name, cat, tid, start_ns, end_ns, args):
    return {
        "ph": "X",
        "name": name,
        "cat": cat,
        "pid": _PID,
        "tid": tid,
        "ts": _us(start_ns),
        "dur": _us(max(0, end_ns - start_ns)),
        "args": args,
    }


def _instant(name, cat, tid, ts_ns, args):
    return {
        "ph": "i",
        "s": "t",
        "name": name,
        "cat": cat,
        "pid": _PID,
        "tid": tid,
        "ts": _us(ts_ns),
        "args": args,
    }


def chrome_trace_events(events, process_name="repro"):
    """Map a telemetry event stream to trace-event dicts.

    Span start times ride on the *closing* event (``BarrierDepart``
    carries its ``arrived_ts``, ``SleepExit`` its ``entered_ts``), so no
    pairing stack is needed and an interrupted run simply drops its
    open spans.
    """
    rows = []
    threads = sorted({
        event.thread for event in events if hasattr(event, "thread")
    })
    rows.append({
        "ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
        "args": {"name": process_name},
    })
    for tid in threads:
        rows.append({
            "ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
            "args": {"name": "cpu {}".format(tid)},
        })
    for event in events:
        if isinstance(event, BarrierDepart):
            rows.append(_complete(
                "barrier {}".format(event.pc), "barrier", event.thread,
                event.arrived_ts, event.ts,
                {"sequence": event.sequence, "stall_ns": event.stall_ns},
            ))
        elif isinstance(event, SleepExit):
            rows.append(_complete(
                "sleep {}".format(event.state), "sleep", event.thread,
                event.entered_ts, event.ts,
                {
                    "resident_ns": event.resident_ns,
                    "flush_ns": event.flush_ns,
                    "flushed_lines": event.flushed_lines,
                },
            ))
        elif isinstance(event, WakeUp):
            rows.append(_instant(
                "wake:{}".format(event.source), "sleep", event.thread,
                event.ts, {"pc": event.pc, "state": event.state},
            ))
        elif isinstance(event, BarrierRelease):
            rows.append(_instant(
                "release {}".format(event.pc), "barrier", event.thread,
                event.ts,
                {"sequence": event.sequence, "bit_ns": event.bit_ns},
            ))
        elif isinstance(event, LateWake):
            if event.penalty_ns > 0:
                rows.append(_instant(
                    "late wake", "sleep", event.thread, event.ts,
                    {"pc": event.pc, "penalty_ns": event.penalty_ns},
                ))
        elif isinstance(event, PredictorTrain):
            rows.append(_instant(
                "train {}".format(event.pc), "predictor", event.thread,
                event.ts,
                {"bit_ns": event.bit_ns, "predicted_ns": event.predicted_ns},
            ))
        elif isinstance(event, PredictorDisable):
            rows.append(_instant(
                "disable {}".format(event.pc), "predictor", event.thread,
                event.ts, {"pc": event.pc},
            ))
        elif isinstance(event, PredictorFiltered):
            rows.append(_instant(
                "filtered update {}".format(event.pc), "predictor",
                event.thread, event.ts, {"bit_ns": event.bit_ns},
            ))
        elif isinstance(event, PredictorReenable):
            rows.append(_instant(
                "reenable {}".format(event.pc), "predictor",
                event.thread, event.ts, {"pc": event.pc},
            ))
        elif isinstance(event, FaultInjected):
            rows.append(_instant(
                "fault:{}".format(event.fault), "fault", event.target,
                event.ts, {"magnitude_ns": event.magnitude_ns},
            ))
        elif isinstance(event, InvariantCheck):
            rows.append(_instant(
                "invariant:{}".format(event.invariant), "invariant", 0,
                event.ts,
                {"passed": event.passed, "violations": event.violations},
            ))
        elif isinstance(event, CheckpointWritten):
            rows.append(_instant(
                "checkpoint {}".format(event.run_id), "engine", 0,
                event.ts,
                {"completed": event.completed, "total": event.total},
            ))
        elif isinstance(event, WorkerStalled):
            rows.append(_instant(
                "worker stalled", "engine", 0, event.ts,
                {
                    "worker": event.worker,
                    "cells": event.cells,
                    "stale_s": event.stale_s,
                },
            ))
        elif isinstance(event, ResumeStarted):
            rows.append(_instant(
                "resume {}".format(event.run_id), "engine", 0, event.ts,
                {
                    "completed": event.completed,
                    "remaining": event.remaining,
                },
            ))
        elif isinstance(event, CampaignSubmitted):
            rows.append(_instant(
                "campaign {}".format(event.run_id), "serve", 0, event.ts,
                {
                    "cells": event.cells,
                    "cached": event.cached,
                    "deduped": event.deduped,
                },
            ))
        elif isinstance(event, CampaignFinished):
            rows.append(_instant(
                "finished {}".format(event.run_id), "serve", 0, event.ts,
                {"completed": event.completed, "failed": event.failed},
            ))
        elif isinstance(event, CampaignCancelled):
            rows.append(_instant(
                "cancelled {}".format(event.run_id), "serve", 0, event.ts,
                {"completed": event.completed, "total": event.total},
            ))
        elif isinstance(event, CellResolved):
            rows.append(_instant(
                "cell {}".format(event.cell), "serve", 0, event.ts,
                {
                    "run_id": event.run_id,
                    "index": event.index,
                    "cached": event.cached,
                    "failed": event.failed,
                },
            ))
        elif isinstance(event, WorkerJoined):
            rows.append(_instant(
                "worker joined", "serve", 0, event.ts,
                {"worker": event.worker, "pool_size": event.pool_size},
            ))
        elif isinstance(event, WorkerLeft):
            rows.append(_instant(
                "worker left:{}".format(event.reason), "serve", 0,
                event.ts,
                {"worker": event.worker, "pool_size": event.pool_size},
            ))
        elif isinstance(event, StorageFault):
            rows.append(_instant(
                "storage fault:{}".format(event.op), "storage", 0,
                event.ts, {"path": event.path, "error": event.error},
            ))
        elif isinstance(event, PredictorHit):
            # Hits are dense and low-information on a timeline; they are
            # counted in the metrics instead of drawn.
            continue
    return rows


def chrome_trace_json(events, process_name="repro"):
    """The canonical (byte-stable) Chrome trace JSON document."""
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(
            events, process_name=process_name
        ),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(events, path, process_name="repro"):
    """Write the trace JSON; returns the number of trace events."""
    text = chrome_trace_json(events, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count('"ph"')


def metrics_to_rows(snapshot):
    """Flatten a metrics snapshot into ``(type, name, field, value)``
    rows, deterministically ordered."""
    rows = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append(("counter", name, "value", value))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append(("gauge", name, "value", value))
    for name, body in snapshot.get("histograms", {}).items():
        rows.append(("histogram", name, "count", body["count"]))
        rows.append(("histogram", name, "sum", body["sum"]))
        rows.append(("histogram", name, "min", body["min"]))
        rows.append(("histogram", name, "max", body["max"]))
        for bound, bucket in zip(body["bounds"], body["counts"]):
            rows.append(("histogram", name, "le_{}".format(bound), bucket))
        rows.append(("histogram", name, "le_inf", body["counts"][-1]))
    return rows


def metrics_to_csv(snapshot, path=None):
    """Dump a metrics snapshot as CSV; returns the CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(("type", "name", "field", "value"))
    for row in metrics_to_rows(snapshot):
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
