"""Structured tracing and metrics for the simulator.

The telemetry subsystem is the observability layer the per-figure
aggregates are built on: it records *how* the thrifty barrier produced
them — per-thread arrivals, sleep-state selections, hybrid wake-ups,
predictor behaviour — as typed events and deterministic metrics.

* :mod:`repro.telemetry.events` — the typed event records emitted by the
  instrumentation points (and the promoted :class:`SleepRecord`);
* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms with deterministic snapshot/merge semantics;
* :mod:`repro.telemetry.tracer` — the :class:`Tracer` the simulation
  layers emit into, compiled to a no-op when disabled (every
  instrumentation site guards on :attr:`Tracer.enabled` before
  constructing an event, so a disabled run allocates nothing);
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto-
  loadable per-thread timelines) and CSV metric dumps.

Quick start::

    from repro.telemetry import Tracer
    from repro.telemetry.export import write_chrome_trace
    from repro.experiments.runner import run_experiment

    result = run_experiment("fmm", "thrifty", threads=16, telemetry=True)
    write_chrome_trace(result.telemetry.events, "trace.json")
"""

from repro.telemetry.events import (
    BarrierCheckIn,
    BarrierDepart,
    BarrierRelease,
    CampaignCancelled,
    CampaignFinished,
    CampaignSubmitted,
    CellResolved,
    CheckpointWritten,
    FaultInjected,
    InvariantCheck,
    LateWake,
    PredictorDisable,
    PredictorFiltered,
    PredictorHit,
    PredictorReenable,
    PredictorTrain,
    ResumeStarted,
    SleepEnter,
    SleepExit,
    SleepRecord,
    WakeUp,
    WorkerJoined,
    WorkerLeft,
    WorkerStalled,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    TelemetryError,
    TelemetrySnapshot,
    Tracer,
)

__all__ = [
    "BarrierCheckIn",
    "BarrierDepart",
    "BarrierRelease",
    "CampaignCancelled",
    "CampaignFinished",
    "CampaignSubmitted",
    "CellResolved",
    "CheckpointWritten",
    "Counter",
    "FaultInjected",
    "Gauge",
    "Histogram",
    "InvariantCheck",
    "LateWake",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PredictorDisable",
    "PredictorFiltered",
    "PredictorHit",
    "PredictorReenable",
    "PredictorTrain",
    "ResumeStarted",
    "SleepEnter",
    "SleepExit",
    "SleepRecord",
    "TelemetryError",
    "TelemetrySnapshot",
    "Tracer",
    "WakeUp",
    "WorkerJoined",
    "WorkerLeft",
    "WorkerStalled",
]
