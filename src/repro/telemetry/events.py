"""Typed telemetry event records.

Each event is a frozen dataclass carrying the simulated timestamp
(``ts``, in ns) at which it was emitted, plus a class-level ``kind``
string used by the exporters. Events know how to fold themselves into a
:class:`~repro.telemetry.metrics.MetricsRegistry` (:meth:`record`), so
the tracer derives every metric from the same stream the timeline
export consumes — there is one source of truth.

The module is also the home of :class:`SleepRecord`, promoted here from
``repro.sync.trace`` (which keeps a backward-compatible alias): it is
the per-(thread, barrier-instance) sleep summary the oracle accounting
and the metrics layer consume.
"""

from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.telemetry.metrics import (
    ERROR_NS_BOUNDS,
    LATENESS_NS_BOUNDS,
    STALL_NS_BOUNDS,
)


@dataclass
class SleepRecord:
    """One thread's sleep at one barrier instance.

    Promoted from ``repro.sync.trace`` into the telemetry event model;
    ``repro.sync.trace.SleepRecord`` remains as a thin alias.
    """

    state_name: str
    resident_ns: int
    flushed_lines: int
    woke_by: str  # "timer" | "invalidation" | "aborted"
    penalty_ns: int = 0


@dataclass(frozen=True)
class BarrierCheckIn:
    """A thread arrived at a barrier (S1 of Figure 2)."""

    kind: ClassVar[str] = "barrier.check_in"

    ts: int
    thread: int
    pc: str
    sequence: int
    is_last: bool

    def record(self, metrics):
        metrics.counter("barrier.check_ins").inc()
        if self.is_last:
            metrics.counter("barrier.last_arrivals").inc()


@dataclass(frozen=True)
class BarrierRelease:
    """The last thread flipped the flag, releasing one instance."""

    kind: ClassVar[str] = "barrier.release"

    ts: int
    thread: int
    pc: str
    sequence: int
    bit_ns: Optional[int]

    def record(self, metrics):
        metrics.counter("barrier.releases").inc()
        if self.bit_ns is not None:
            metrics.histogram(
                "barrier.bit_ns", bounds=STALL_NS_BOUNDS
            ).observe(self.bit_ns)


@dataclass(frozen=True)
class BarrierDepart:
    """A thread left the barrier; closes its per-thread wait span."""

    kind: ClassVar[str] = "barrier.depart"

    ts: int
    thread: int
    pc: str
    sequence: int
    arrived_ts: int
    stall_ns: int

    def record(self, metrics):
        metrics.counter("barrier.departs").inc()
        metrics.histogram(
            "barrier.stall_ns", bounds=STALL_NS_BOUNDS
        ).observe(self.stall_ns)


@dataclass(frozen=True)
class SleepEnter:
    """The CPU began the sleep sequence (flush, ramp, residency)."""

    kind: ClassVar[str] = "sleep.enter"

    ts: int
    thread: int
    state: str
    flush_lines: int

    def record(self, metrics):
        metrics.counter("sleep.entries").inc()
        metrics.counter("sleep.entries[{}]".format(self.state)).inc()


@dataclass(frozen=True)
class SleepExit:
    """The CPU finished the sleep sequence and is running again."""

    kind: ClassVar[str] = "sleep.exit"

    ts: int
    thread: int
    state: str
    entered_ts: int
    resident_ns: int
    flush_ns: int
    flushed_lines: int

    def record(self, metrics):
        metrics.counter("sleep.residency_ns").inc(self.resident_ns)
        metrics.counter(
            "sleep.residency_ns[{}]".format(self.state)
        ).inc(self.resident_ns)
        if self.flushed_lines:
            metrics.counter("sleep.flushed_lines").inc(self.flushed_lines)


@dataclass(frozen=True)
class WakeUp:
    """A sleeping thread woke; ``source`` is the winning wake signal.

    ``source`` is ``"timer"`` (internal countdown) or ``"invalidation"``
    (external coherence wake-up) — the hybrid wake-up mix of
    Section 3.3.2.
    """

    kind: ClassVar[str] = "sleep.wake"

    ts: int
    thread: int
    pc: str
    source: str
    state: str

    def record(self, metrics):
        metrics.counter("wake.total").inc()
        metrics.counter("wake.source[{}]".format(self.source)).inc()


@dataclass(frozen=True)
class LateWake:
    """A slept thread's wake-up completed after the actual release.

    ``penalty_ns`` is the lateness charged against execution time
    (Section 3.3.3); zero means the wake was on time or early.
    """

    kind: ClassVar[str] = "sleep.late_wake"

    ts: int
    thread: int
    pc: str
    penalty_ns: int

    def record(self, metrics):
        metrics.histogram(
            "wake.lateness_ns", bounds=LATENESS_NS_BOUNDS
        ).observe(self.penalty_ns)
        if self.penalty_ns > 0:
            metrics.counter("wake.late").inc()


@dataclass(frozen=True)
class PredictorHit:
    """A warm prediction was served to an early arriver."""

    kind: ClassVar[str] = "predictor.hit"

    ts: int
    thread: int
    pc: str
    predicted_ns: int
    est_stall_ns: int

    def record(self, metrics):
        metrics.counter("predictor.hits").inc()


@dataclass(frozen=True)
class PredictorTrain:
    """The last arriver trained the predictor with a measured BIT."""

    kind: ClassVar[str] = "predictor.train"

    ts: int
    thread: int
    pc: str
    bit_ns: int
    predicted_ns: Optional[int]

    def record(self, metrics):
        metrics.counter("predictor.updates").inc()
        if self.predicted_ns is not None:
            metrics.histogram(
                "predictor.error_ns", bounds=ERROR_NS_BOUNDS
            ).observe(abs(self.bit_ns - self.predicted_ns))


@dataclass(frozen=True)
class PredictorFiltered:
    """An update was discarded by the underprediction filter (3.4.2)."""

    kind: ClassVar[str] = "predictor.filtered"

    ts: int
    thread: int
    pc: str
    bit_ns: int

    def record(self, metrics):
        metrics.counter("predictor.filtered_updates").inc()


@dataclass(frozen=True)
class PredictorDisable:
    """The overprediction cut-off disabled prediction for a thread."""

    kind: ClassVar[str] = "predictor.disable"

    ts: int
    thread: int
    pc: str

    def record(self, metrics):
        metrics.counter("predictor.disables").inc()


@dataclass(frozen=True)
class PredictorReenable:
    """Probation ended: a disabled (thread, PC) predictor was restored
    after enough consecutive safe episodes (graceful degradation)."""

    kind: ClassVar[str] = "predictor.reenable"

    ts: int
    thread: int
    pc: str

    def record(self, metrics):
        metrics.counter("predictor.reenables").inc()


@dataclass(frozen=True)
class FaultInjected:
    """The fault-injection layer perturbed the machine.

    ``fault`` is the seam kind (``timer_drift``, ``timer_loss``,
    ``invalidation_delay``, ``invalidation_drop``,
    ``transition_jitter``, ``spurious_wake``, ``stall``), ``target``
    the affected node/thread, ``magnitude_ns`` the injected skew (may
    be negative for early timer drift).
    """

    kind: ClassVar[str] = "fault.injected"

    ts: int
    fault: str
    target: int
    magnitude_ns: int

    def record(self, metrics):
        metrics.counter("fault.injected").inc()
        metrics.counter("fault.kind[{}]".format(self.fault)).inc()


@dataclass(frozen=True)
class InvariantCheck:
    """One invariant audit over a finished run's event stream.

    Emitted by :class:`~repro.faults.invariants.InvariantChecker.audit`
    (one event per invariant name), so a chaos run's verdicts ride in
    the same stream its behaviour does.
    """

    kind: ClassVar[str] = "invariant.check"

    ts: int
    invariant: str
    passed: bool
    violations: int

    def record(self, metrics):
        metrics.counter("invariant.checks").inc()
        if self.passed:
            metrics.counter("invariant.passed").inc()
        else:
            metrics.counter(
                "invariant.violations[{}]".format(self.invariant)
            ).inc(self.violations)


@dataclass(frozen=True)
class CheckpointWritten:
    """The run journal atomically replaced its checkpoint snapshot.

    An engine-level (wall-clock) event, not a simulated one: ``ts`` is
    always 0 and ordering is by stream position, so journaled runs stay
    byte-deterministic.
    """

    kind: ClassVar[str] = "engine.checkpoint"

    ts: int
    run_id: str
    completed: int
    total: int

    def record(self, metrics):
        metrics.counter("engine.checkpoints_written").inc()


@dataclass(frozen=True)
class WorkerStalled:
    """The watchdog declared a worker dead: its heartbeats went stale
    for ``stale_s`` seconds and it was killed, its ``cells`` unfinished
    cells requeued through the retry machinery."""

    kind: ClassVar[str] = "engine.worker_stalled"

    ts: int
    worker: int
    cells: int
    stale_s: float

    def record(self, metrics):
        metrics.counter("engine.worker_stalls").inc()


@dataclass(frozen=True)
class ResumeStarted:
    """A journaled campaign resumed: ``completed`` cells were found
    finished in the journal, ``remaining`` are still to run."""

    kind: ClassVar[str] = "engine.resume"

    ts: int
    run_id: str
    completed: int
    remaining: int

    def record(self, metrics):
        metrics.counter("engine.resumes").inc()


@dataclass(frozen=True)
class CampaignSubmitted:
    """The campaign service accepted a submission.

    A wall-clock (engine-level) event like :class:`CheckpointWritten`:
    ``ts`` is 0, ordering is stream position. ``cells`` is the total
    cell count, ``cached`` how many were served from the result cache
    immediately, ``deduped`` how many attached to a cell already
    queued/running for an overlapping campaign.
    """

    kind: ClassVar[str] = "serve.campaign_submitted"

    ts: int
    run_id: str
    cells: int
    cached: int
    deduped: int

    def record(self, metrics):
        metrics.counter("serve.campaigns_submitted").inc()
        metrics.counter("serve.cells_submitted").inc(self.cells)
        metrics.counter("serve.cells_cached").inc(self.cached)
        metrics.counter("serve.cells_deduped").inc(self.deduped)


@dataclass(frozen=True)
class CampaignFinished:
    """Every cell of a served campaign resolved (result or failure)."""

    kind: ClassVar[str] = "serve.campaign_finished"

    ts: int
    run_id: str
    completed: int
    failed: int

    def record(self, metrics):
        metrics.counter("serve.campaigns_finished").inc()
        if self.failed:
            metrics.counter("serve.cell_failures").inc(self.failed)


@dataclass(frozen=True)
class CampaignCancelled:
    """A served campaign was cancelled via the API; its pending cells
    were withdrawn (unless another campaign still needs them)."""

    kind: ClassVar[str] = "serve.campaign_cancelled"

    ts: int
    run_id: str
    completed: int
    total: int

    def record(self, metrics):
        metrics.counter("serve.campaigns_cancelled").inc()


@dataclass(frozen=True)
class CellResolved:
    """One cell of a served campaign produced its result.

    ``cached`` marks results served from the content-addressed cache
    (including dedup hits resolved by an overlapping campaign's
    execution); ``failed`` marks a structured failure record.
    """

    kind: ClassVar[str] = "serve.cell_resolved"

    ts: int
    run_id: str
    cell: str
    index: int
    cached: bool
    failed: bool

    def record(self, metrics):
        metrics.counter("serve.cells_resolved").inc()
        if self.cached:
            metrics.counter("serve.cells_from_cache").inc()
        if self.failed:
            metrics.counter("serve.cells_failed").inc()


@dataclass(frozen=True)
class WorkerJoined:
    """A worker process joined the serve pool (startup or hotplug)."""

    kind: ClassVar[str] = "serve.worker_joined"

    ts: int
    worker: int
    pool_size: int

    def record(self, metrics):
        metrics.counter("serve.workers_joined").inc()


@dataclass(frozen=True)
class WorkerLeft:
    """A worker process left the serve pool.

    ``reason`` is ``"retired"`` (shrunk below it), ``"crashed"`` (died
    mid-cell), or ``"stalled"`` (killed by the heartbeat watchdog).
    """

    kind: ClassVar[str] = "serve.worker_left"

    ts: int
    worker: int
    pool_size: int
    reason: str

    def record(self, metrics):
        metrics.counter("serve.workers_left").inc()
        metrics.counter(
            "serve.worker_left[{}]".format(self.reason)
        ).inc()


@dataclass(frozen=True)
class StorageFault:
    """A durable-storage operation failed and was degraded, not raised.

    ``op`` names the failing seam (``journal-append``, ``checkpoint``,
    ``payload-store``, ``cache-store``, ``corrupt-read``), ``path`` the
    file (or cache key) involved, ``error`` the exception text. A
    wall-clock (engine-level) event like :class:`CheckpointWritten`:
    ``ts`` is 0 and ordering is stream position. A climbing
    ``storage.faults`` counter is an operator's first sign a disk is
    full or failing.
    """

    kind: ClassVar[str] = "storage.fault"

    ts: int
    op: str
    path: str
    error: str

    def record(self, metrics):
        metrics.counter("storage.faults").inc()
        metrics.counter("storage.fault[{}]".format(self.op)).inc()


#: Every event type, in a stable order (used by exporters and tests).
EVENT_TYPES = (
    BarrierCheckIn,
    BarrierRelease,
    BarrierDepart,
    SleepEnter,
    SleepExit,
    WakeUp,
    LateWake,
    PredictorHit,
    PredictorTrain,
    PredictorFiltered,
    PredictorDisable,
    PredictorReenable,
    FaultInjected,
    InvariantCheck,
    CheckpointWritten,
    WorkerStalled,
    ResumeStarted,
    CampaignSubmitted,
    CampaignFinished,
    CampaignCancelled,
    CellResolved,
    WorkerJoined,
    WorkerLeft,
    StorageFault,
)
