"""Counters, gauges, and histograms with deterministic snapshot/merge.

The registry is designed around two constraints the experiment engine
imposes:

* **Determinism** — a snapshot is a plain, JSON-serializable dict whose
  iteration order is sorted by metric name, so two runs that perform
  the same observations produce byte-identical serializations
  regardless of metric creation order.
* **Mergeability** — per-cell snapshots produced in worker processes
  (or loaded from the on-disk result cache) fold into a run-level
  registry with :meth:`MetricsRegistry.merge`: counters add, gauges
  keep the maximum, histograms add bucket counts (their bounds must
  match).
"""

import bisect

from repro.errors import ConfigError

#: Default exponential bucket bounds (ns) for stall/BIT-sized values:
#: 1 us .. 100 ms, one bucket per decade-third.
STALL_NS_BOUNDS = tuple(
    int(round(10 ** (3 + third / 3))) for third in range(0, 16)
)

#: Bounds for prediction error (can be much smaller than a stall).
ERROR_NS_BOUNDS = tuple(
    int(round(10 ** (2 + third / 3))) for third in range(0, 16)
)

#: Bounds for late-wake lateness; dominated by transition latencies.
LATENESS_NS_BOUNDS = tuple(
    int(round(10 ** (2 + third / 3))) for third in range(0, 13)
)


class Counter:
    """A monotonically increasing integer (or float) total."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ConfigError(
                "counter {} cannot decrease (inc {})".format(
                    self.name, amount
                )
            )
        self.value += amount

    def __repr__(self):
        return "Counter({!r}, {})".format(self.name, self.value)


class Gauge:
    """A point-in-time value; merge keeps the maximum."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def __repr__(self):
        return "Gauge({!r}, {})".format(self.name, self.value)


class Histogram:
    """Fixed-bound histogram: counts per bucket plus sum/count/min/max.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last edge, so ``len(counts) == len(bounds)+1``.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, name, bounds):
        bounds = tuple(bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(
                "histogram {} needs strictly increasing bounds".format(name)
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        """Approximate quantile: the upper edge of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def __repr__(self):
        return "Histogram({!r}, n={}, mean={:.3g})".format(
            self.name, self.count, self.mean()
        )


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- accessors ----------------------------------------------------------

    def counter(self, name):
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name, bounds=STALL_NS_BOUNDS):
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        elif metric.bounds != tuple(bounds):
            raise ConfigError(
                "histogram {} re-declared with different bounds".format(name)
            )
        return metric

    def __len__(self):
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self):
        """A plain, sorted, JSON-serializable view of every metric."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "counts": list(self._histograms[name].counts),
                    "sum": self._histograms[name].sum,
                    "count": self._histograms[name].count,
                    "min": self._histograms[name].min,
                    "max": self._histograms[name].max,
                }
                for name in sorted(self._histograms)
            },
        }

    def merge(self, other):
        """Fold another registry or snapshot dict into this one."""
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            gauge = self.gauge(name)
            if value > gauge.value:
                gauge.set(value)
        for name, body in snap.get("histograms", {}).items():
            histogram = self.histogram(name, bounds=tuple(body["bounds"]))
            if histogram.bounds != tuple(body["bounds"]):
                raise ConfigError(
                    "cannot merge histogram {} with different "
                    "bounds".format(name)
                )
            for index, bucket in enumerate(body["counts"]):
                histogram.counts[index] += bucket
            histogram.sum += body["sum"]
            histogram.count += body["count"]
            for attr, pick in (("min", min), ("max", max)):
                incoming = body[attr]
                if incoming is None:
                    continue
                current = getattr(histogram, attr)
                setattr(
                    histogram, attr,
                    incoming if current is None else pick(current, incoming),
                )
        return self

    @classmethod
    def from_snapshot(cls, snapshot):
        return cls().merge(snapshot)

    def __repr__(self):
        return "MetricsRegistry({} metrics)".format(len(self))
