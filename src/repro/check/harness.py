"""One schedule, end to end: build, drive, audit.

:func:`run_schedule` is the explorer's unit of work. It assembles the
same live-cell machinery as
:func:`repro.experiments.runner._run_live` — tracer, system, fault
plan, workload — but threads a :class:`~repro.check.tiebreak.TieBreaker`
into the simulator's choice lane, then audits the run with *every*
oracle: the four :class:`~repro.faults.invariants.InvariantChecker`
invariants plus the :mod:`repro.check.oracles` pair.

A schedule is identified by its realized decision trace (the
``(arity, choice)`` pairs actually consulted); replays pass the bare
decision string back in and get the identical interleaving.
"""

from dataclasses import dataclass, field

from repro.config import MachineConfig
from repro.errors import ConfigError, ReproError
from repro.check.oracles import (
    SCHEDULE_CRASH,
    check_no_lost_wakeup,
    check_release_safety,
)
from repro.check.tiebreak import ScheduleDriver
from repro.experiments.configs import (
    CONFIG_NAMES,
    LIVE_CONFIGS,
    barrier_factory_for,
)
from repro.experiments.runner import DEFAULT_SEED
from repro.faults.chaos import DEFAULT_DEADLINE_NS
from repro.faults.invariants import (
    InvariantChecker,
    InvariantViolation,
    annotate_window_indices,
)
from repro.machine import System
from repro.telemetry.tracer import Tracer
from repro.workloads import WorkloadRunner, get_model


@dataclass
class ScheduleResult:
    """One audited schedule.

    ``decisions``/``arities`` are the *realized* trace — what the
    tie-breaker was actually asked, which both identifies the schedule
    (visited-set hashing) and replays it (feed ``decisions`` back
    through a :class:`~repro.check.tiebreak.ScheduleDriver`).
    """

    app: str
    config: str
    threads: int
    seed: int
    decisions: tuple = ()
    arities: tuple = ()
    violations: tuple = ()
    stuck_threads: tuple = ()
    executed: int = 0
    execution_time_ns: int = 0
    events: list = field(default_factory=list, repr=False)

    @property
    def ok(self):
        return not self.violations

    @property
    def trace(self):
        """Realized ``(arity, choice)`` pairs (the schedule identity)."""
        return tuple(zip(self.arities, self.decisions))


def _explored_config(config):
    """Map a configuration to the live simulation the explorer drives.

    The derived configurations are deterministic post-hoc replays of
    the Baseline run — they contain no scheduling, so exploring them
    means exploring the Baseline simulation they are derived from
    (exactly how chaos audits them).
    """
    if config in LIVE_CONFIGS:
        return config
    if config in CONFIG_NAMES:
        return "baseline"
    raise ConfigError(
        "unknown configuration {!r}; choose from {}".format(
            config, ", ".join(CONFIG_NAMES)
        )
    )


def run_schedule(
    app, config, threads=8, seed=DEFAULT_SEED, decisions=(),
    tie_breaker=None, fault_plan=None, mutant=None, machine_config=None,
    deadline_ns=DEFAULT_DEADLINE_NS,
):
    """Run one interleaving and audit it; returns a
    :class:`ScheduleResult`.

    ``decisions`` is a forced decision prefix (FIFO past its end); pass
    an explicit ``tie_breaker`` instead to use another strategy — the
    realized trace is read back from whichever drives the run.
    ``mutant`` names a :mod:`repro.sync.mutants` variant to run instead
    of the configuration's correct barrier; ``fault_plan`` composes a
    :class:`~repro.faults.plan.FaultPlan` with the exploration (the
    schedule choices happen among whatever events the perturbed machine
    produces). A simulation crash is reported as a ``schedule-crash``
    violation, not raised — a broken schedule is a finding, not an
    error.
    """
    live_config = _explored_config(config)
    if mutant is not None:
        from repro.sync.mutants import mutant_barrier_factory

        factory = mutant_barrier_factory(mutant)
    else:
        factory = barrier_factory_for(live_config)

    chooser = tie_breaker if tie_breaker is not None else ScheduleDriver(
        decisions
    )
    chooser.reset()

    tracer = Tracer()
    system = System(
        machine_config or MachineConfig(n_nodes=threads), telemetry=tracer,
    )
    perturb = None
    if fault_plan is not None and not fault_plan.is_noop:
        from repro.faults.injector import install_fault_plan

        injector = install_fault_plan(system, fault_plan, telemetry=tracer)
        perturb = injector.perturb_hook()
    system.sim.tie_breaker = chooser

    crash = None
    accounts = None
    runner = WorkloadRunner(
        get_model(app),
        system=system,
        n_threads=threads,
        seed=seed,
        barrier_factory=factory,
        perturb=perturb,
    )
    try:
        run = runner.run()
        accounts = run.accounts
    except ReproError as error:
        crash = error

    events = list(tracer.events)
    stuck = tuple(
        process.name for process in system._threads if not process.triggered
    )
    violations = list(
        InvariantChecker(deadline_ns=deadline_ns).check(
            events, accounts=accounts,
        )
    )
    violations.extend(
        check_no_lost_wakeup(events, stuck_threads=stuck, annotate=False)
    )
    violations.extend(
        check_release_safety(events, n_threads=threads, annotate=False)
    )
    if crash is not None:
        violations.append(InvariantViolation(
            invariant=SCHEDULE_CRASH,
            message="simulation raised {}: {}".format(
                type(crash).__name__, crash
            ),
            window=tuple(events[-4:]),
        ))
    violations = annotate_window_indices(violations, events)

    return ScheduleResult(
        app=app,
        config=config,
        threads=threads,
        seed=seed,
        decisions=chooser.decisions,
        arities=chooser.arities,
        violations=tuple(violations),
        stuck_threads=stuck,
        executed=system.sim.executed,
        execution_time_ns=system.sim.now,
        events=events,
    )
