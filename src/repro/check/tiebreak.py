"""Tie-break strategies: the choice-point interface of the explorer.

The simulator consults :meth:`TieBreaker.choose` whenever a timestamp
bucket holds two or more live entries (see
:meth:`repro.sim.core.Simulator._run_choice`). Candidates are presented
in legacy FIFO order, so index 0 always reproduces the unexplored
schedule. Every strategy records the *realized decision trace* — one
``(arity, choice)`` pair per consulted choice point — which is the
schedule's identity: two runs with the same realized trace executed the
same interleaving, which is what the explorer's visited-schedule
hashing and the counterexample artifacts are built on.
"""

import hashlib
import random


class TieBreaker:
    """Base strategy: FIFO (always index 0), with trace recording.

    Subclasses override :meth:`_choose`; :meth:`choose` wraps it with
    the decision-trace bookkeeping so every strategy records the same
    way.
    """

    def __init__(self):
        #: Realized decision trace: ``(arity, choice)`` per choice point.
        self.trace = []

    def reset(self):
        """Forget the recorded trace (reuse across runs)."""
        self.trace = []

    def choose(self, time, candidates):
        choice = self._choose(time, candidates)
        self.trace.append((len(candidates), choice))
        return choice

    def _choose(self, time, candidates):
        return 0

    @property
    def decisions(self):
        """The realized choice indices alone (the decision string)."""
        return tuple(choice for _arity, choice in self.trace)

    @property
    def arities(self):
        """Candidate count at each realized choice point."""
        return tuple(arity for arity, _choice in self.trace)


class FifoTieBreaker(TieBreaker):
    """The default order, explicitly: index 0 at every choice point.

    Driving the choice lane with this strategy reproduces the legacy
    ``(time, seq)`` dispatch exactly — the property the scheduler
    extraction is held to.
    """


class RandomTieBreaker(TieBreaker):
    """A seeded random walk: one uniform choice per choice point."""

    def __init__(self, seed=0):
        super().__init__()
        self.seed = seed
        self._rng = random.Random("check:random:{}".format(seed))

    def reset(self):
        super().reset()
        self._rng = random.Random("check:random:{}".format(self.seed))

    def _choose(self, time, candidates):
        return self._rng.randrange(len(candidates))


class ScheduleDriver(TieBreaker):
    """Replay a decision prefix, then fall back to FIFO.

    Forced decisions are taken modulo the live arity: a decision
    recorded against a wider candidate set still resolves
    deterministically when shrinking or upstream choices narrow the
    bucket. Past the prefix the driver is FIFO, so the empty decision
    string is exactly the default schedule.
    """

    def __init__(self, decisions=()):
        super().__init__()
        self.forced = tuple(int(d) for d in decisions)
        self._position = 0

    def reset(self):
        super().reset()
        self._position = 0

    def _choose(self, time, candidates):
        position = self._position
        self._position = position + 1
        if position < len(self.forced):
            return self.forced[position] % len(candidates)
        return 0


def schedule_key(trace):
    """Hashable identity of one realized decision trace."""
    return tuple(trace)


def schedule_digest(trace):
    """Short stable hex digest of a realized trace (for reports)."""
    text = ";".join("{}:{}".format(a, c) for a, c in trace)
    return hashlib.sha256(text.encode("ascii")).hexdigest()[:16]


def describe_entry(entry):
    """Human label for one bucket entry (witness/debug output)."""
    owner = getattr(entry, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        if name:
            return "resume:{}".format(name)
    fn = getattr(entry, "fn", None)
    if fn is not None:
        return getattr(fn, "__qualname__", repr(fn))
    return getattr(entry, "__qualname__", repr(entry))
