"""Replayable counterexample artifacts.

A caught violation is only worth anything if someone else can watch it
happen. :func:`write_counterexample` serializes everything a replay
needs — cell coordinates, mutant, fault plan, and the *minimized*
decision string — as canonical JSON, alongside a Perfetto-loadable
witness trace of the violating run. :func:`replay_counterexample`
closes the loop: re-run the decisions from the artifact and confirm the
same violations (invariant + message, exactly) fall out. ``repro check
--replay FILE`` exits zero iff they do.
"""

import json
import os

from repro.check.harness import run_schedule
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.faults.storage import atomic_write_text
from repro.telemetry.export import write_chrome_trace

#: Artifact schema marker/version; bump on incompatible change.
ARTIFACT_KIND = "repro-check-counterexample"
ARTIFACT_VERSION = 1


def _violation_dicts(violations):
    return [violation.as_dict() for violation in violations]


def witness_path(path):
    """The Perfetto witness written beside an artifact at ``path``."""
    return os.path.splitext(path)[0] + "-witness.json"


def write_counterexample(path, result, decisions=None, mutant=None,
                         fault_plan=None, shrink_trials=0):
    """Write the artifact (and its witness trace); returns the payload.

    ``result`` is the violating
    :class:`~repro.check.harness.ScheduleResult`; ``decisions``
    defaults to its realized decision string (pass the shrunk string
    when one exists). The witness trace is the violating run's full
    event stream, viewable in Perfetto/chrome://tracing.
    """
    if decisions is None:
        decisions = result.decisions
    payload = {
        "kind": ARTIFACT_KIND,
        "version": ARTIFACT_VERSION,
        "app": result.app,
        "config": result.config,
        "threads": result.threads,
        "seed": result.seed,
        "mutant": mutant,
        "fault_plan": fault_plan.as_dict() if fault_plan else None,
        "decisions": list(decisions),
        "shrink_trials": shrink_trials,
        "violations": _violation_dicts(result.violations),
        "violation_keys": [
            [v.invariant, v.message] for v in result.violations
        ],
    }
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )
    write_chrome_trace(
        result.events, witness_path(path),
        process_name="check:{}:{}".format(result.app, result.config),
    )
    return payload


def load_counterexample(path):
    """Load and validate an artifact; returns the payload dict."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("kind") != ARTIFACT_KIND:
        raise ConfigError(
            "{} is not a {} artifact".format(path, ARTIFACT_KIND)
        )
    if payload.get("version") != ARTIFACT_VERSION:
        raise ConfigError(
            "{} has artifact version {!r}; this build reads {}".format(
                path, payload.get("version"), ARTIFACT_VERSION
            )
        )
    return payload


def replay_counterexample(path):
    """Re-run an artifact's schedule and compare the violations.

    Returns ``(reproduced, result, expected_keys)``: ``reproduced`` is
    True iff the replay's ``(invariant, message)`` list matches the
    artifact's exactly — same bugs, same order, same words.
    """
    payload = load_counterexample(path)
    plan = payload.get("fault_plan")
    fault_plan = FaultPlan(**plan) if plan else None
    result = run_schedule(
        app=payload["app"],
        config=payload["config"],
        threads=payload["threads"],
        seed=payload["seed"],
        decisions=tuple(payload["decisions"]),
        fault_plan=fault_plan,
        mutant=payload.get("mutant"),
    )
    expected = [tuple(key) for key in payload.get("violation_keys", [])]
    observed = [(v.invariant, v.message) for v in result.violations]
    return observed == expected, result, expected
