"""Delta-debug a failing decision string to a minimal counterexample.

The explorer's raw counterexample is a realized decision trace —
often hundreds of decisions, almost all of them the FIFO default that
the :class:`~repro.check.tiebreak.ScheduleDriver` would pick anyway.
Shrinking strips it to the deviations that matter:

1. drop trailing zeros (the FIFO tail is the driver's fallback);
2. binary-search the shortest failing prefix (decisions past the
   fault are noise);
3. zero surviving non-zero decisions one at a time, to a fixpoint.

The predicate re-runs the schedule and asks only "does *some*
violation survive?" — shrinking may legitimately land on a simpler
failure of the same bug. Each candidate costs one simulation, so the
trial budget is bounded and the best-so-far is returned when it runs
out.
"""


def _strip_trailing_zeros(decisions):
    end = len(decisions)
    while end and decisions[end - 1] == 0:
        end -= 1
    return decisions[:end]


def shrink_decisions(decisions, still_fails, max_trials=64):
    """Minimize ``decisions`` while ``still_fails(candidate)`` holds.

    ``still_fails`` takes a candidate decision tuple and returns
    whether the replayed schedule still violates an oracle; it is
    never called on the input itself (the caller just watched it
    fail). Returns ``(minimized, trials_used)``.
    """
    best = _strip_trailing_zeros(tuple(int(d) for d in decisions))
    trials = 0

    def attempt(candidate):
        nonlocal trials, best
        candidate = _strip_trailing_zeros(tuple(candidate))
        if candidate == best or trials >= max_trials:
            return False
        trials += 1
        if still_fails(candidate):
            best = candidate
            return True
        return False

    # Shortest failing prefix, by binary search: if the first half
    # still fails, the fault is within it.
    low, high = 0, len(best)
    while low < high and trials < max_trials:
        mid = (low + high) // 2
        if attempt(best[:mid]):
            high = len(best)
        else:
            low = mid + 1

    # Zero out surviving deviations, one at a time, to a fixpoint.
    changed = True
    while changed and trials < max_trials:
        changed = False
        for position in range(len(best)):
            if best[position] == 0:
                continue
            candidate = list(best)
            candidate[position] = 0
            if attempt(candidate):
                changed = True
                break

    return best, trials
