"""Systematic concurrency testing for the barrier/sleep protocols.

The DES scheduler breaks same-timestamp ties with a fixed FIFO order;
:mod:`repro.check` turns those tie-breaks into *choice points* and
drives the simulator through alternative legal orderings of the same
event set (CHESS-style bounded exploration), checking protocol oracles
on every schedule:

* the existing :class:`~repro.faults.invariants.InvariantChecker`
  (monotonic time, barrier safety/liveness, energy conservation);
* **no-lost-wakeup** — every thread that enters a sleep state at a
  barrier episode is eventually woken in that episode;
* **release-safety** — no thread observes a release before the last
  arrival.

A violation is shrunk (delta debugging on the decision string) to a
minimal counterexample and exported as a replayable artifact: the
decision string plus a Perfetto witness trace. ``repro check`` is the
CLI front end; :mod:`repro.sync.mutants` ships intentionally broken
barriers the explorer must catch.
"""

from repro.check.artifact import (
    load_counterexample,
    replay_counterexample,
    witness_path,
    write_counterexample,
)
from repro.check.explorer import ExplorationReport, explore
from repro.check.harness import ScheduleResult, run_schedule
from repro.check.oracles import (
    NO_LOST_WAKEUP,
    RELEASE_SAFETY,
    check_no_lost_wakeup,
    check_release_safety,
)
from repro.check.shrink import shrink_decisions
from repro.check.tiebreak import (
    FifoTieBreaker,
    RandomTieBreaker,
    ScheduleDriver,
    TieBreaker,
)

__all__ = [
    "ExplorationReport",
    "FifoTieBreaker",
    "NO_LOST_WAKEUP",
    "RELEASE_SAFETY",
    "RandomTieBreaker",
    "ScheduleDriver",
    "ScheduleResult",
    "TieBreaker",
    "check_no_lost_wakeup",
    "check_release_safety",
    "explore",
    "load_counterexample",
    "replay_counterexample",
    "run_schedule",
    "shrink_decisions",
    "witness_path",
    "write_counterexample",
]
