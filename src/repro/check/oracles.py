"""The two protocol oracles beyond the invariant checker.

Both consume the same typed telemetry stream the
:class:`~repro.faults.invariants.InvariantChecker` audits, and report
violations as the same structured
:class:`~repro.faults.invariants.InvariantViolation` records (window
event indices included), so the explorer's reports and counterexample
artifacts are uniform across all oracles.

**no-lost-wakeup** — the thrifty barrier's core hazard (paper
Section 3.3): a thread that commits to a sleep state must be woken in
the same barrier episode. Observationally: every ``SleepEnter`` is
matched by a later ``SleepExit`` of the same thread, and no thread
process is still blocked when the event queue drains (a stuck spinner
never emits another event, so the stream alone cannot distinguish "run
ended" from "thread wedged" — the harness passes the simulator's view
in as ``stuck_threads``).

**release-safety** — no thread observes a release before the last
arrival: a barrier episode's release must come after *all* ``n``
participants checked in (``BarrierCheckIn.ts`` carries the backdated
arrival timestamp, so a release older than any arrival means threads
crossed early).
"""

from repro.faults.invariants import (
    InvariantViolation,
    annotate_window_indices,
    _window,
)
from repro.telemetry.events import (
    BarrierCheckIn,
    BarrierRelease,
    SleepEnter,
    SleepExit,
)

NO_LOST_WAKEUP = "no-lost-wakeup"
RELEASE_SAFETY = "release-safety"

#: Harness-level failure (the simulation raised instead of finishing).
SCHEDULE_CRASH = "schedule-crash"


def check_no_lost_wakeup(events, stuck_threads=(), annotate=True):
    """Violations for sleeps that were never woken.

    ``stuck_threads`` names thread processes still unfinished when the
    event queue drained (a lost wake-up wedges the whole machine: the
    queue empties with the sleeper still blocked).
    """
    events = list(events)
    violations = []
    open_sleeps = {}  # thread -> SleepEnter
    for event in events:
        if isinstance(event, SleepEnter):
            open_sleeps[event.thread] = event
        elif isinstance(event, SleepExit):
            open_sleeps.pop(event.thread, None)
    for thread in sorted(open_sleeps):
        enter = open_sleeps[thread]
        violations.append(InvariantViolation(
            invariant=NO_LOST_WAKEUP,
            message=(
                "thread {} entered sleep state {} at {} and was never "
                "woken (the run drained with the sleep open)".format(
                    thread, enter.state, enter.ts
                )
            ),
            window=(enter,),
        ))
    if stuck_threads:
        violations.append(InvariantViolation(
            invariant=NO_LOST_WAKEUP,
            message=(
                "{} thread(s) still blocked when the event queue "
                "drained: {}".format(
                    len(stuck_threads),
                    ", ".join(str(name) for name in stuck_threads),
                )
            ),
            window=_window(events[-4:]),
        ))
    if annotate:
        violations = annotate_window_indices(violations, events)
    return violations


def check_release_safety(events, n_threads=None, annotate=True):
    """Violations for releases that preceded the last arrival."""
    events = list(events)
    episodes = {}  # (pc, sequence) -> [check_ins], release
    for event in events:
        if isinstance(event, BarrierCheckIn):
            episodes.setdefault(
                (event.pc, event.sequence), ([], [None])
            )[0].append(event)
        elif isinstance(event, BarrierRelease):
            episodes.setdefault(
                (event.pc, event.sequence), ([], [None])
            )[1][0] = event
    violations = []
    for key in sorted(episodes):
        check_ins, (release,) = episodes[key]
        if release is None:
            continue  # liveness territory — the InvariantChecker's job
        label = "barrier {} instance {}".format(*key)
        late = [e for e in check_ins if e.ts > release.ts]
        for event in sorted(late, key=lambda e: (e.ts, e.thread)):
            violations.append(InvariantViolation(
                invariant=RELEASE_SAFETY,
                message=(
                    "{}: released at {} before thread {} arrived at "
                    "{}".format(label, release.ts, event.thread, event.ts)
                ),
                window=_window(sorted(
                    check_ins + [event, release],
                    key=lambda e: e.ts,
                )),
            ))
        arrived = {event.thread for event in check_ins}
        if n_threads is not None and len(arrived) < n_threads and not late:
            violations.append(InvariantViolation(
                invariant=RELEASE_SAFETY,
                message=(
                    "{}: released at {} with only {} of {} arrivals".format(
                        label, release.ts, len(arrived), n_threads
                    )
                ),
                window=_window(check_ins + [release]),
            ))
    if annotate:
        violations = annotate_window_indices(violations, events)
    return violations
