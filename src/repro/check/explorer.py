"""Bounded systematic exploration of same-timestamp orderings.

Two strategies over the :func:`~repro.check.harness.run_schedule`
harness, both deterministic given their seed and budgets:

**dfs** — CHESS-style bounded systematic search. Start from the
default (FIFO) schedule; at every realized choice point up to
``max_depth``, branch into each alternative choice, replaying the
realized prefix and deviating at that point (FIFO tail beyond it).
Branches are visited in deviation-count order — the default schedule,
then every single deviation, then pairs — so a bug reachable by one
flipped tie-break is found within ``sum(arity - 1)`` schedules no
matter where in the prefix it hides. Visited schedules are
deduplicated on the realized decision trace, so prefixes that collapse
to an already-seen interleaving are not re-expanded. Exhaustive within
its bounds — the right tool for shallow races.

**random** — seeded random walks: each schedule draws every tie
uniformly. No depth bound, so it reaches choice points arbitrarily
deep in the run (release fan-outs sit hundreds of decisions in, far
past any affordable DFS horizon) — the right tool for probing the
long tail.

Either way the walk stops at the first violating schedule (unless
``stop_on_violation=False``), whose realized decision string is the raw
counterexample handed to :func:`~repro.check.shrink.shrink_decisions`.
"""

from collections import deque
from dataclasses import dataclass

from repro.check.harness import run_schedule
from repro.check.tiebreak import RandomTieBreaker, schedule_key
from repro.errors import ConfigError

STRATEGIES = ("dfs", "random")


@dataclass
class ExplorationReport:
    """Outcome of one bounded exploration."""

    app: str
    config: str
    threads: int
    seed: int
    strategy: str
    max_schedules: int
    max_depth: int
    mutant: object = None
    #: Schedules actually simulated (≤ ``max_schedules``).
    schedules_run: int = 0
    #: Distinct realized interleavings among them.
    unique_schedules: int = 0
    #: Violating :class:`~repro.check.harness.ScheduleResult` records.
    failures: tuple = ()
    #: True when the budget ran out with branches left unexplored.
    exhausted_budget: bool = False

    @property
    def ok(self):
        return not self.failures

    @property
    def first_failure(self):
        return self.failures[0] if self.failures else None


def explore(
    app, config, threads=8, seed=1, max_schedules=50, max_depth=32,
    strategy="dfs", fault_plan=None, mutant=None, machine_config=None,
    deadline_ns=None, stop_on_violation=True,
):
    """Explore up to ``max_schedules`` interleavings of one cell.

    Deterministic: the same arguments visit the same schedules in the
    same order and return an identical report. ``deadline_ns=None``
    keeps the harness's default liveness deadline.
    """
    if strategy not in STRATEGIES:
        raise ConfigError(
            "unknown strategy {!r}; choose from {}".format(
                strategy, ", ".join(STRATEGIES)
            )
        )
    if max_schedules < 1:
        raise ConfigError("max_schedules must be at least 1")
    if max_depth < 1:
        raise ConfigError("max_depth must be at least 1")

    kwargs = dict(
        app=app, config=config, threads=threads, seed=seed,
        fault_plan=fault_plan, mutant=mutant,
        machine_config=machine_config,
    )
    if deadline_ns is not None:
        kwargs["deadline_ns"] = deadline_ns

    report = ExplorationReport(
        app=app, config=config, threads=threads, seed=seed,
        strategy=strategy, max_schedules=max_schedules,
        max_depth=max_depth, mutant=mutant,
    )
    visited = set()
    failures = []

    def audit(result):
        report.schedules_run += 1
        key = schedule_key(result.trace)
        fresh = key not in visited
        if fresh:
            visited.add(key)
            report.unique_schedules += 1
            if result.violations:
                failures.append(result)
        return fresh

    if strategy == "random":
        for index in range(max_schedules):
            chooser = RandomTieBreaker("{}:{}".format(seed, index))
            result = run_schedule(tie_breaker=chooser, **kwargs)
            audit(result)
            if failures and stop_on_violation:
                break
    else:
        # FIFO frontier of (forced decision prefix, first position not
        # yet expanded), seeded with the default schedule. Each run
        # enqueues one deviation per (position, alternative) it newly
        # realized, so the walk broadens by deviation count: the
        # default schedule first, then every single deviation within
        # ``max_depth``, then pairs, and so on — the CHESS ordering,
        # which finds shallow bugs before the budget drowns in deep
        # branch combinations.
        frontier = deque([((), 0)])
        while frontier:
            if report.schedules_run >= max_schedules:
                report.exhausted_budget = True
                break
            decisions, start = frontier.popleft()
            result = run_schedule(decisions=decisions, **kwargs)
            if not audit(result):
                continue
            if failures and stop_on_violation:
                break
            horizon = min(len(result.decisions), max_depth)
            for position in range(start, horizon):
                arity = result.arities[position]
                taken = result.decisions[position]
                for choice in range(arity):
                    if choice == taken:
                        continue
                    frontier.append((
                        result.decisions[:position] + (choice,),
                        position + 1,
                    ))

    report.failures = tuple(failures)
    return report
