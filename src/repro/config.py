"""Configuration objects mirroring the paper's Tables 1 and 3.

All durations are integer nanoseconds (the simulator's time unit; one cycle
of the nominal 1 GHz CPU clock is 1 ns). Table 3's transition latency is
interpreted as the one-way latency — the paper's wake-up discussion treats
entering and leaving a state as separately costed transitions.
"""

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

NS_PER_US = 1_000
NS_PER_MS = 1_000_000


@dataclass(frozen=True)
class SleepStateConfig:
    """One low-power CPU sleep state (a row of the paper's Table 3).

    Attributes
    ----------
    name:
        Human-readable state name, e.g. ``"Sleep1 (Halt)"``.
    power_savings:
        Fraction of TDPmax saved while resident in the state (0..1).
    transition_latency_ns:
        One-way transition latency (entering or leaving the state).
    snoops:
        Whether the caches can service coherence requests while asleep.
        Non-snooping states force a flush of dirty cached data on entry.
    voltage_reduction:
        Whether the state lowers the supply voltage (reduces leakage).
    """

    name: str
    power_savings: float
    transition_latency_ns: int
    snoops: bool
    voltage_reduction: bool

    def __post_init__(self):
        if not 0.0 < self.power_savings <= 1.0:
            raise ConfigError(
                "power_savings must be in (0, 1]: {}".format(self.power_savings)
            )
        if self.transition_latency_ns < 0:
            raise ConfigError("transition latency must be non-negative")

    @property
    def round_trip_ns(self):
        """Time to enter plus leave the state (minimum useful slack)."""
        return 2 * self.transition_latency_ns

    def residency_power(self, tdp_max_watts):
        """Power drawn while resident in this state, in watts."""
        return (1.0 - self.power_savings) * tdp_max_watts


#: The three states of Table 3, modeled after the Intel Pentium family.
SLEEP1_HALT = SleepStateConfig(
    name="Sleep1 (Halt)",
    power_savings=0.702,
    transition_latency_ns=10 * NS_PER_US,
    snoops=True,
    voltage_reduction=False,
)
SLEEP2 = SleepStateConfig(
    name="Sleep2",
    power_savings=0.792,
    transition_latency_ns=15 * NS_PER_US,
    snoops=False,
    voltage_reduction=False,
)
SLEEP3 = SleepStateConfig(
    name="Sleep3",
    power_savings=0.978,
    transition_latency_ns=35 * NS_PER_US,
    snoops=False,
    voltage_reduction=True,
)

DEFAULT_SLEEP_STATES = (SLEEP1_HALT, SLEEP2, SLEEP3)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    line_bytes: int
    ways: int
    round_trip_ns: int
    freq_mhz: int

    def __post_init__(self):
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigError(
                "cache size {} not divisible into {}-way sets of {}-byte "
                "lines".format(self.size_bytes, self.ways, self.line_bytes)
            )

    @property
    def n_lines(self):
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self):
        return self.n_lines // self.ways


@dataclass(frozen=True)
class NetworkConfig:
    """Hypercube wormhole network parameters (Table 1, bottom)."""

    pin_to_pin_ns: int = 16
    marshal_ns: int = 16
    router_freq_mhz: int = 250
    #: Model per-link occupancy: messages queue behind each other on
    #: shared links (wormhole channels held for the message duration).
    #: Off by default — the paper's barrier traffic is latency-bound —
    #: but available for contention studies.
    model_contention: bool = False


@dataclass(frozen=True)
class MachineConfig:
    """The CC-NUMA machine of the paper's Table 1.

    One processor per node; 64 nodes arranged as a hypercube; release
    consistency with a DASH-style directory protocol.
    """

    n_nodes: int = 64
    cpu_freq_mhz: int = 1_000
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, line_bytes=64, ways=2,
            round_trip_ns=2, freq_mhz=1_000,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=64 * 1024, line_bytes=64, ways=8,
            round_trip_ns=12, freq_mhz=500,
        )
    )
    memory_row_miss_ns: int = 60
    bus_freq_mhz: int = 250
    bus_width_bytes: int = 16
    network: NetworkConfig = field(default_factory=NetworkConfig)
    page_bytes: int = 4 * 1024
    #: When False, memory operations use fixed best-case latencies instead
    #: of full directory-protocol transactions (fast mode for tests).
    detailed_memory: bool = True
    #: Fixed cost to start a deep-sleep cache flush (drain/arbitration).
    flush_base_ns: int = 60
    #: Pipelined write-back cost per dirty line during a flush
    #: (64-byte line over the 16-byte, 250 MHz bus).
    flush_per_line_ns: int = 16
    #: Post-wake compulsory-miss penalty per flushed line, charged to the
    #: next compute phase (Section 5.2: flushes grow the Compute segment).
    #: Refills overlap in the out-of-order core, so the effective cost is
    #: well below the serial memory latency.
    refill_per_line_ns: int = 30

    def __post_init__(self):
        if self.n_nodes < 1 or self.n_nodes & (self.n_nodes - 1):
            raise ConfigError(
                "hypercube requires a power-of-two node count, got {}".format(
                    self.n_nodes
                )
            )
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigError("L1 and L2 must share a line size")

    @property
    def line_bytes(self):
        return self.l1.line_bytes

    def scaled(self, n_nodes):
        """A copy of this configuration with a different node count."""
        return replace(self, n_nodes=n_nodes)


@dataclass(frozen=True)
class EnergyConfig:
    """Knobs of the energy model (paper Section 4.3)."""

    #: Spinloop power as a fraction of regular compute power.
    spin_power_factor: float = 0.85
    #: Nominal supply voltage used by the Wattch-style model.
    supply_voltage: float = 1.5

    def __post_init__(self):
        if not 0.0 < self.spin_power_factor <= 1.0:
            raise ConfigError("spin_power_factor must be in (0, 1]")


@dataclass(frozen=True)
class ThriftyConfig:
    """Policy parameters of the thrifty barrier (paper Section 3).

    The defaults reproduce the configuration evaluated in the paper:
    conditional sleep, all three sleep states, hybrid wake-up, a 10%
    overprediction threshold, and the underprediction filter for
    context-switch/I/O-perturbed intervals.
    """

    sleep_states: tuple = DEFAULT_SLEEP_STATES
    #: Disable prediction for (thread, barrier) after a late wake-up whose
    #: penalty exceeds this fraction of the barrier interval time.
    overprediction_threshold: float = 0.10
    #: Skip the predictor update when the observed BIT exceeds the
    #: predicted BIT by more than this factor (Section 3.4.2).
    underprediction_factor: float = 4.0
    #: Arm the countdown timer in the cache controller (internal wake-up).
    use_internal_wakeup: bool = True
    #: Wake on invalidation of the barrier-flag line (external wake-up).
    use_external_wakeup: bool = True
    #: Require predicted slack to cover the state's round trip before
    #: sleeping (conditional sleep). Unconditional sleep is the strawman
    #: of Section 3.1.
    conditional_sleep: bool = True
    #: Graceful degradation: re-enable a cut-off (thread, barrier)
    #: predictor after this many consecutive safe episodes. 0 keeps the
    #: paper's policy — once disabled, disabled forever.
    probation_episodes: int = 0
    #: Graceful degradation: a disabled (thread, barrier) falls back to
    #: the conventional spin-then-sleep policy (bounded spin, then Halt
    #: on the external wake-up) instead of pure spinning.
    fallback_spin_then_sleep: bool = False
    #: Spin budget of the fallback policy before it executes Halt.
    fallback_spin_threshold_ns: int = 50_000

    def __post_init__(self):
        if not self.sleep_states:
            raise ConfigError("at least one sleep state is required")
        if not self.use_internal_wakeup and not self.use_external_wakeup:
            raise ConfigError("at least one wake-up mechanism is required")
        if self.overprediction_threshold <= 0:
            raise ConfigError("overprediction_threshold must be positive")
        if self.probation_episodes < 0:
            raise ConfigError("probation_episodes must be non-negative")
        if self.fallback_spin_threshold_ns < 0:
            raise ConfigError(
                "fallback_spin_threshold_ns must be non-negative"
            )
        latencies = [s.transition_latency_ns for s in self.sleep_states]
        if latencies != sorted(latencies):
            raise ConfigError(
                "sleep states must be ordered by increasing latency"
            )

    @property
    def deepest_state(self):
        return max(self.sleep_states, key=lambda s: s.power_savings)
