"""Per-CPU energy and time ledgers.

Every simulated CPU keeps an :class:`EnergyAccount`; each state segment
(a contiguous span in one category at one power level) is recorded as it
closes. The four categories are exactly the stacked segments of the
paper's Figures 5 and 6.
"""

import enum

from repro.errors import SimulationError


class Category(enum.Enum):
    """Where a CPU's time (and energy) went."""

    COMPUTE = "compute"
    SPIN = "spin"
    TRANSITION = "transition"
    SLEEP = "sleep"


# Dense per-member index so the hot ledger can be list-backed: dict
# operations keyed by enum members go through the Python-level
# ``Enum.__hash__``, which showed up as a top-ten cost in profiles of
# the accounting path.
for _index, _category in enumerate(Category):
    _category.ledger_index = _index
_N_CATEGORIES = len(Category)

_TIME_KEY = ["energy.time_ns[{}]".format(c.value) for c in Category]
_JOULES_KEY = ["energy.joules[{}]".format(c.value) for c in Category]


class EnergyAccount:
    """Accumulates joules and nanoseconds per :class:`Category`.

    ``telemetry`` is an optional :class:`~repro.telemetry.tracer.Tracer`;
    when enabled, every closed segment also feeds the per-category
    residency counters of its metrics registry (``energy.time_ns[...]``
    / ``energy.joules[...]``). Disabled or absent telemetry costs one
    branch per segment.
    """

    def __init__(self, telemetry=None):
        # Ledgers are list-backed, indexed by Category.ledger_index.
        self._energy_j = [0.0] * _N_CATEGORIES
        self._time_ns = [0] * _N_CATEGORIES
        self._telemetry = telemetry
        # ledger_index -> (time counter, joules counter), resolved
        # lazily on first use so the registry only ever sees categories
        # that were actually charged (snapshots stay unchanged).
        self._counters = [None] * _N_CATEGORIES

    def add(self, category, duration_ns, power_watts=None, energy_joules=None):
        """Record a segment.

        Exactly one of ``power_watts`` (constant-power segment) or
        ``energy_joules`` (precomputed, e.g. a transition ramp) must be
        given.
        """
        if duration_ns < 0:
            raise SimulationError("segment duration must be non-negative")
        if energy_joules is None:
            if power_watts is None:
                raise SimulationError(
                    "pass exactly one of power_watts / energy_joules"
                )
            energy_joules = power_watts * duration_ns * 1e-9
        elif power_watts is not None:
            raise SimulationError(
                "pass exactly one of power_watts / energy_joules"
            )
        if energy_joules < 0:
            raise SimulationError("segment energy must be non-negative")
        index = category.ledger_index
        self._energy_j[index] += energy_joules
        self._time_ns[index] += duration_ns
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled:
            pair = self._counters[index]
            if pair is None:
                metrics = telemetry.metrics
                pair = self._counters[index] = (
                    metrics.counter(_TIME_KEY[index]),
                    metrics.counter(_JOULES_KEY[index]),
                )
            pair[0].inc(duration_ns)
            pair[1].inc(energy_joules)

    def __getstate__(self):
        # The tracer (and its cached counters) are live, run-scoped
        # objects; ledgers travel (into worker-process results, the
        # on-disk cache) without them. The enum-keyed dict shape keeps
        # the pickle format compatible across versions of this class.
        return {
            "_energy_j": {
                c: self._energy_j[c.ledger_index] for c in Category
            },
            "_time_ns": {c: self._time_ns[c.ledger_index] for c in Category},
            "_telemetry": None,
        }

    def __setstate__(self, state):
        self._telemetry = None
        self._counters = [None] * _N_CATEGORIES
        energy, time = state["_energy_j"], state["_time_ns"]
        self._energy_j = [energy[c] for c in Category]
        self._time_ns = [time[c] for c in Category]

    def energy_joules(self, category=None):
        """Energy in one category, or total when ``category`` is None."""
        if category is None:
            return sum(self._energy_j)
        return self._energy_j[category.ledger_index]

    def time_ns(self, category=None):
        """Time in one category, or total when ``category`` is None."""
        if category is None:
            return sum(self._time_ns)
        return self._time_ns[category.ledger_index]

    def merge(self, other):
        """Fold another account into this one (for system-wide totals)."""
        for index in range(_N_CATEGORIES):
            self._energy_j[index] += other._energy_j[index]
            self._time_ns[index] += other._time_ns[index]
        return self

    def energy_breakdown(self):
        """Dict of category name to joules."""
        return {c.value: self._energy_j[c.ledger_index] for c in Category}

    def time_breakdown(self):
        """Dict of category name to nanoseconds."""
        return {c.value: self._time_ns[c.ledger_index] for c in Category}

    def __repr__(self):
        parts = ", ".join(
            "{}={:.3g}J".format(c.value, self._energy_j[c.ledger_index])
            for c in Category
        )
        return "EnergyAccount({})".format(parts)
