"""Per-CPU energy and time ledgers.

Every simulated CPU keeps an :class:`EnergyAccount`; each state segment
(a contiguous span in one category at one power level) is recorded as it
closes. The four categories are exactly the stacked segments of the
paper's Figures 5 and 6.
"""

import enum

from repro.errors import SimulationError


class Category(enum.Enum):
    """Where a CPU's time (and energy) went."""

    COMPUTE = "compute"
    SPIN = "spin"
    TRANSITION = "transition"
    SLEEP = "sleep"


class EnergyAccount:
    """Accumulates joules and nanoseconds per :class:`Category`.

    ``telemetry`` is an optional :class:`~repro.telemetry.tracer.Tracer`;
    when enabled, every closed segment also feeds the per-category
    residency counters of its metrics registry (``energy.time_ns[...]``
    / ``energy.joules[...]``). Disabled or absent telemetry costs one
    branch per segment.
    """

    def __init__(self, telemetry=None):
        self._energy_j = {category: 0.0 for category in Category}
        self._time_ns = {category: 0 for category in Category}
        self._telemetry = telemetry

    def add(self, category, duration_ns, power_watts=None, energy_joules=None):
        """Record a segment.

        Exactly one of ``power_watts`` (constant-power segment) or
        ``energy_joules`` (precomputed, e.g. a transition ramp) must be
        given.
        """
        if duration_ns < 0:
            raise SimulationError("segment duration must be non-negative")
        if (power_watts is None) == (energy_joules is None):
            raise SimulationError(
                "pass exactly one of power_watts / energy_joules"
            )
        if energy_joules is None:
            energy_joules = power_watts * duration_ns * 1e-9
        if energy_joules < 0:
            raise SimulationError("segment energy must be non-negative")
        self._energy_j[category] += energy_joules
        self._time_ns[category] += duration_ns
        telemetry = self._telemetry
        if telemetry is not None and telemetry.enabled:
            metrics = telemetry.metrics
            metrics.counter(
                "energy.time_ns[{}]".format(category.value)
            ).inc(duration_ns)
            metrics.counter(
                "energy.joules[{}]".format(category.value)
            ).inc(energy_joules)

    def __getstate__(self):
        # The tracer is a live, run-scoped object; ledgers travel (into
        # worker-process results, the on-disk cache) without it.
        state = dict(self.__dict__)
        state["_telemetry"] = None
        return state

    def energy_joules(self, category=None):
        """Energy in one category, or total when ``category`` is None."""
        if category is None:
            return sum(self._energy_j.values())
        return self._energy_j[category]

    def time_ns(self, category=None):
        """Time in one category, or total when ``category`` is None."""
        if category is None:
            return sum(self._time_ns.values())
        return self._time_ns[category]

    def merge(self, other):
        """Fold another account into this one (for system-wide totals)."""
        for category in Category:
            self._energy_j[category] += other._energy_j[category]
            self._time_ns[category] += other._time_ns[category]
        return self

    def energy_breakdown(self):
        """Dict of category name to joules."""
        return {c.value: self._energy_j[c] for c in Category}

    def time_breakdown(self):
        """Dict of category name to nanoseconds."""
        return {c.value: self._time_ns[c] for c in Category}

    def __repr__(self):
        parts = ", ".join(
            "{}={:.3g}J".format(c.value, self._energy_j[c]) for c in Category
        )
        return "EnergyAccount({})".format(parts)
