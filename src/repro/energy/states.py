"""Sleep-state selection and transition-energy helpers.

The selection rule is the paper's ``sleep()`` library behaviour
(Section 3.1): scan a table of states for the *deepest* one whose entry
plus exit latency — and, for non-snooping states, the cache-flush
overhead — fits within the estimated stall time. Return nothing if no
state fits (the caller then spins conventionally).
"""

from repro.errors import ConfigError


def select_sleep_state(states, slack_ns, flush_ns=0, conditional=True):
    """Pick the deepest state usable within ``slack_ns`` of stall time.

    Parameters
    ----------
    states:
        Iterable of :class:`~repro.config.SleepStateConfig`, shallow to
        deep (the paper's table scan order).
    slack_ns:
        Predicted barrier stall time ahead of the thread.
    flush_ns:
        Time to flush dirty cached data, charged only to states that
        cannot snoop while asleep.
    conditional:
        When False (the unconditional-sleep strawman of Section 3.1), the
        shallowest state is returned regardless of slack.

    Returns
    -------
    SleepStateConfig or None
    """
    states = list(states)
    if not states:
        raise ConfigError("no sleep states supplied")
    if not conditional:
        return states[0]
    best = None
    for state in states:
        cost = state.round_trip_ns + (0 if state.snoops else flush_ns)
        if cost <= slack_ns:
            if best is None or state.power_savings > best.power_savings:
                best = state
    return best


def ramp_energy(power_from_watts, power_to_watts, duration_ns):
    """Energy of a linear power ramp over ``duration_ns`` (joules).

    The paper assumes power changes linearly along the transition
    latency, so the energy is the trapezoid area.
    """
    if duration_ns < 0:
        raise ConfigError("ramp duration must be non-negative")
    average_watts = 0.5 * (power_from_watts + power_to_watts)
    return average_watts * duration_ns * 1e-9


def sleep_interval_energy(state, tdp_max_watts, resident_ns):
    """Energy while resident in ``state`` for ``resident_ns`` (joules)."""
    if resident_ns < 0:
        raise ConfigError("residency must be non-negative")
    return state.residency_power(tdp_max_watts) * resident_ns * 1e-9
