"""Energy modeling: Wattch-style activity power, sleep states, accounting.

The paper's methodology (Section 4.3) is followed closely:

* active power comes from an activity-based architectural model
  (:mod:`repro.energy.wattch`);
* a worst-case microbenchmark derives TDPmax (:mod:`repro.energy.tdp`);
* sleep-state residency power is the published *ratio* of TDPmax
  (:mod:`repro.config`, Table 3), applied to our calibrated TDPmax;
* transition power ramps linearly between the endpoints;
* the spinloop draws 85% of regular compute power.

Per-CPU consumption is recorded in four categories — Compute, Spin,
Transition, Sleep — exactly the segments of the paper's Figures 5 and 6
(:mod:`repro.energy.accounting`).
"""

from repro.energy.accounting import Category, EnergyAccount
from repro.energy.states import ramp_energy, select_sleep_state
from repro.energy.tdp import calibrate_tdp_max
from repro.energy.wattch import ActivityProfile, WattchModel

__all__ = [
    "ActivityProfile",
    "Category",
    "EnergyAccount",
    "WattchModel",
    "calibrate_tdp_max",
    "ramp_energy",
    "select_sleep_state",
]
