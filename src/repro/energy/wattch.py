"""Wattch-style architectural power model.

Wattch (Brooks, Tiwari, Martonosi; ISCA 2000) estimates dynamic power as
the sum over microarchitectural units of ``C_eff * V^2 * f * activity``.
Absolute accuracy is explicitly *not* the goal (the paper makes the same
caveat); only ratios matter, because every reported number is normalized
to the Baseline configuration.

We model the 6-issue out-of-order CPU of Table 1 as a set of units with
effective-capacitance weights proportioned after Wattch's published
breakdown for an aggressive out-of-order core. Activity factors (0..1)
scale each unit's switching relative to its worst case.
"""

from dataclasses import dataclass, fields

from repro.errors import ConfigError

#: Effective-capacitance weights in nanofarads, proportioned after the
#: classic Wattch breakdown: clock tree dominates, then the dynamic
#: scheduling structures, caches, datapath, and register files.
_UNIT_CAPACITANCE_NF = {
    "clock_tree": 9.0,
    "issue_window": 4.5,
    "rename_rob": 3.0,
    "int_alus": 3.6,
    "fp_units": 3.0,
    "load_store_queue": 2.4,
    "register_files": 2.7,
    "branch_predictor": 1.2,
    "l1_cache": 3.6,
    "l2_cache": 2.4,
    "result_buses": 1.8,
}

#: Fraction of each unit's max power drawn even when idle (conditional
#: clocking keeps some switching; Wattch's "cc3" style residual).
_IDLE_RESIDUAL = 0.10


@dataclass(frozen=True)
class ActivityProfile:
    """Per-unit activity factors in [0, 1].

    ``1.0`` means the unit switches at its worst-case rate every cycle.
    The profile for ordinary computation is produced by
    :meth:`ActivityProfile.typical`; the TDP microbenchmark drives all
    units to their maximum (:meth:`ActivityProfile.worst_case`).
    """

    clock_tree: float = 1.0
    issue_window: float = 0.6
    rename_rob: float = 0.6
    int_alus: float = 0.5
    fp_units: float = 0.3
    load_store_queue: float = 0.4
    register_files: float = 0.5
    branch_predictor: float = 0.4
    l1_cache: float = 0.5
    l2_cache: float = 0.15
    result_buses: float = 0.5

    def __post_init__(self):
        for item in fields(self):
            value = getattr(self, item.name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    "activity {} out of range: {}".format(item.name, value)
                )

    @classmethod
    def worst_case(cls):
        """All units at maximum activity (the TDP microbenchmark target)."""
        return cls(**{item.name: 1.0 for item in fields(cls)})

    @classmethod
    def typical(cls):
        """A representative mixed integer/FP/memory workload."""
        return cls()

    @classmethod
    def spinloop(cls):
        """The barrier spinloop: tight load-compare-branch on a cache hit.

        The loop keeps the front end, one ALU, the L1, and the branch
        predictor busy but idles the FP units, most of the issue window,
        and the L2. The resulting power lands near the paper's measured
        85% of regular computation (the machine-level harness uses the
        calibrated 0.85 factor directly; this profile exists to validate
        that the factor is plausible under the unit model).
        """
        return cls(
            clock_tree=1.0,
            issue_window=0.35,
            rename_rob=0.35,
            int_alus=0.35,
            fp_units=0.0,
            load_store_queue=0.5,
            register_files=0.3,
            branch_predictor=0.7,
            l1_cache=0.6,
            l2_cache=0.0,
            result_buses=0.35,
        )

    def as_dict(self):
        return {item.name: getattr(self, item.name) for item in fields(self)}


class WattchModel:
    """Computes CPU power from an :class:`ActivityProfile`.

    Parameters
    ----------
    cpu_freq_mhz:
        Core clock frequency (Table 1: 1000 MHz).
    supply_voltage:
        Nominal Vdd used in the ``C V^2 f`` product.
    """

    def __init__(self, cpu_freq_mhz=1_000, supply_voltage=1.5):
        if cpu_freq_mhz <= 0:
            raise ConfigError("cpu_freq_mhz must be positive")
        if supply_voltage <= 0:
            raise ConfigError("supply_voltage must be positive")
        self.cpu_freq_hz = cpu_freq_mhz * 1e6
        self.supply_voltage = supply_voltage

    def unit_power(self, unit, activity):
        """Power of one unit (watts) at the given activity factor."""
        try:
            capacitance_nf = _UNIT_CAPACITANCE_NF[unit]
        except KeyError:
            raise ConfigError("unknown unit {!r}".format(unit)) from None
        effective = _IDLE_RESIDUAL + (1.0 - _IDLE_RESIDUAL) * activity
        capacitance_f = capacitance_nf * 1e-9
        return (
            capacitance_f
            * self.supply_voltage ** 2
            * self.cpu_freq_hz
            * effective
        )

    def power(self, profile):
        """Total CPU power in watts for an :class:`ActivityProfile`."""
        return sum(
            self.unit_power(unit, activity)
            for unit, activity in profile.as_dict().items()
        )

    def breakdown(self, profile):
        """Per-unit power in watts, for reporting and tests."""
        return {
            unit: self.unit_power(unit, activity)
            for unit, activity in profile.as_dict().items()
        }
