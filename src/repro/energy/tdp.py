"""TDPmax calibration by microbenchmark (paper Section 4.3).

The paper derives sleep-state powers by (1) microbenchmarking the simulated
processor to estimate its maximum thermal design power, then (2) applying
the TDPmax-relative ratios published in processor datasheets. We do the
same: a synthetic worst-case instruction mix is pushed through a small
issue model to produce per-unit activity factors, which the Wattch model
converts to watts. The highest observed sustained power is TDPmax.
"""

from dataclasses import dataclass

from repro.energy.wattch import ActivityProfile, WattchModel

#: Candidate instruction mixes (fractions of issued instructions that are
#: integer ALU / FP / load-store / branch). The worst case saturates every
#: unit class at once within the 6-wide issue budget of Table 1.
_MICROBENCH_MIXES = (
    {"int": 1.0, "fp": 0.0, "mem": 0.0, "br": 0.0},
    {"int": 0.0, "fp": 1.0, "mem": 0.0, "br": 0.0},
    {"int": 0.4, "fp": 0.2, "mem": 0.3, "br": 0.1},
    {"int": 0.5, "fp": 0.33, "mem": 0.33, "br": 0.17},  # saturating mix
)

_ISSUE_WIDTH = 6
_INT_UNITS = 6
_FP_UNITS = 4
_MEM_PORTS = 2


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the TDPmax microbenchmark sweep."""

    tdp_max_watts: float
    best_mix: dict
    per_mix_watts: dict


def _profile_for_mix(mix):
    """Translate an instruction mix into per-unit activity factors."""
    issued = {
        "int": min(mix["int"] * _ISSUE_WIDTH, _INT_UNITS),
        "fp": min(mix["fp"] * _ISSUE_WIDTH, _FP_UNITS),
        "mem": min(mix["mem"] * _ISSUE_WIDTH, _MEM_PORTS),
        "br": mix["br"] * _ISSUE_WIDTH,
    }
    utilization = min(1.0, sum(issued.values()) / _ISSUE_WIDTH)
    return ActivityProfile(
        clock_tree=1.0,
        issue_window=utilization,
        rename_rob=utilization,
        int_alus=issued["int"] / _INT_UNITS,
        fp_units=issued["fp"] / _FP_UNITS,
        load_store_queue=issued["mem"] / _MEM_PORTS,
        register_files=utilization,
        branch_predictor=min(1.0, issued["br"]),
        l1_cache=issued["mem"] / _MEM_PORTS,
        l2_cache=min(1.0, 0.5 * issued["mem"] / _MEM_PORTS),
        result_buses=utilization,
    )


def calibrate_tdp_max(model=None):
    """Run the microbenchmark sweep; returns a :class:`CalibrationResult`.

    Parameters
    ----------
    model:
        A :class:`~repro.energy.wattch.WattchModel`; a default 1 GHz model
        is built when omitted.
    """
    if model is None:
        model = WattchModel()
    per_mix = {}
    best_mix = None
    best_watts = 0.0
    for mix in _MICROBENCH_MIXES:
        watts = model.power(_profile_for_mix(mix))
        per_mix[tuple(sorted(mix.items()))] = watts
        if watts > best_watts:
            best_watts = watts
            best_mix = mix
    # The absolute ceiling is every unit at max simultaneously; TDPmax is
    # the best *achievable* sustained mix, but never above the ceiling.
    ceiling = model.power(ActivityProfile.worst_case())
    tdp = min(best_watts, ceiling)
    return CalibrationResult(
        tdp_max_watts=tdp, best_mix=dict(best_mix), per_mix_watts=per_mix
    )
