"""Per-thread imbalance models and per-instance interval swing.

An :class:`ImbalanceModel` turns a phase's mean compute time into one
duration per thread for one dynamic instance. The shapes:

* :class:`Balanced` — everyone computes the mean (plus noise);
* :class:`UniformWindow` — arrivals spread uniformly over a window, the
  shape of data-dependent load imbalance;
* :class:`RotatingStraggler` — one thread (a different one each
  instance) carries extra work. This is the regime where barrier stall
  time is thread-dependent and erratic while the interval time stays
  stable — precisely the observation motivating BIT prediction
  (Section 3.2, Figure 3);
* :class:`FixedStraggler` — the same thread is always last (static
  partitioning imbalance).

A :class:`Swing` scales *whole instances* (all threads together),
modeling Ocean-style interval times that "swing significantly across
instances" and defeat last-value prediction (Section 5.2).
"""

import abc

import numpy as np

from repro.errors import WorkloadError


class ImbalanceModel(abc.ABC):
    """Per-thread duration sampler for one dynamic barrier instance."""

    def __init__(self, sigma=0.02):
        if sigma < 0:
            raise WorkloadError("noise sigma must be non-negative")
        self.sigma = sigma

    def _noise(self, rng, n_threads):
        if self.sigma == 0:
            return np.ones(n_threads)
        return np.exp(rng.normal(0.0, self.sigma, size=n_threads))

    @abc.abstractmethod
    def _shape(self, rng, n_threads):
        """Per-thread multipliers before noise (mean about 1)."""

    def sample(self, rng, n_threads, mean_ns):
        """Integer per-thread durations for one instance."""
        if mean_ns <= 0:
            raise WorkloadError("mean duration must be positive")
        multipliers = self._shape(rng, n_threads) * self._noise(
            rng, n_threads
        )
        durations = np.maximum(1, (multipliers * mean_ns).astype(np.int64))
        return durations


class Balanced(ImbalanceModel):
    """No systematic imbalance, only noise."""

    def _shape(self, rng, n_threads):
        return np.ones(n_threads)


class UniformWindow(ImbalanceModel):
    """Durations uniform in ``mean * [1 - width/2, 1 + width/2]``."""

    def __init__(self, width, sigma=0.02):
        super().__init__(sigma)
        if not 0 <= width <= 2:
            raise WorkloadError("window width must be in [0, 2]")
        self.width = width

    def _shape(self, rng, n_threads):
        return 1.0 + self.width * (rng.random(n_threads) - 0.5)


class RotatingStraggler(ImbalanceModel):
    """One randomly chosen thread does ``1 + extra`` of the mean work."""

    def __init__(self, extra, sigma=0.02):
        super().__init__(sigma)
        if extra < 0:
            raise WorkloadError("straggler extra must be non-negative")
        self.extra = extra

    def _shape(self, rng, n_threads):
        shape = np.ones(n_threads)
        shape[rng.integers(n_threads)] += self.extra
        return shape


class FixedStraggler(ImbalanceModel):
    """A designated thread always carries the extra work."""

    def __init__(self, thread, extra, sigma=0.02):
        super().__init__(sigma)
        if thread < 0:
            raise WorkloadError("straggler thread must be non-negative")
        if extra < 0:
            raise WorkloadError("straggler extra must be non-negative")
        self.thread = thread
        self.extra = extra

    def _shape(self, rng, n_threads):
        shape = np.ones(n_threads)
        shape[self.thread % n_threads] += self.extra
        return shape


class Swing:
    """Per-instance global scale: with probability ``p_high`` the whole
    instance runs ``high`` times the mean, otherwise ``low`` times."""

    def __init__(self, low=1.0, high=5.0, p_high=0.5):
        if low <= 0 or high <= 0:
            raise WorkloadError("swing multipliers must be positive")
        if not 0 <= p_high <= 1:
            raise WorkloadError("p_high must be a probability")
        self.low = low
        self.high = high
        self.p_high = p_high

    def sample(self, rng):
        return self.high if rng.random() < self.p_high else self.low


class AlternatingSwing:
    """Deterministic high/low alternation across instances.

    The worst case for last-value prediction: every observation is
    wrong about the next instance. Models Ocean's relaxation barriers
    whose interval drops sharply on every other invocation
    (Section 5.2: "interval times can swing significantly across
    instances ... the simple last-value prediction does not work well
    for this pattern").
    """

    def __init__(self, high=1.0, low=0.1):
        if low <= 0 or high <= 0:
            raise WorkloadError("swing multipliers must be positive")
        self.high = high
        self.low = low
        self._count = 0

    def sample(self, _rng):
        value = self.high if self._count % 2 == 0 else self.low
        self._count += 1
        return value
