"""Run a workload model on a simulated machine.

The :class:`WorkloadRunner` wires together a model, a
:class:`~repro.machine.System`, and a *barrier factory* — the hook the
experiment harness uses to select the synchronization implementation
(conventional, thrifty, thrifty-halt, spin-then-sleep) while everything
else stays identical.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.energy.accounting import Category, EnergyAccount
from repro.errors import SimulationError, WorkloadError
from repro.machine import System
from repro.predict import LastValuePredictor, TimingDomain
from repro.sync import BarrierTrace, ConventionalBarrier
from repro.sync.trace import BarrierTrace as _BarrierTrace


def conventional_factory(system, domain, n_threads, pc, trace):
    """Default barrier factory: the Baseline configuration."""
    return ConventionalBarrier(system, domain, n_threads, pc, trace=trace)


@dataclass
class RunResult:
    """Everything a single simulation produced."""

    app: str
    n_threads: int
    execution_time_ns: int
    accounts: List[EnergyAccount]
    total: EnergyAccount
    trace: BarrierTrace
    power: object
    barriers: dict
    predictor: Optional[object] = None

    @property
    def energy_joules(self):
        return self.total.energy_joules()

    def energy_breakdown(self):
        return self.total.energy_breakdown()

    def time_breakdown(self):
        return self.total.time_breakdown()

    def barrier_imbalance(self):
        """The Table 2 metric: total stall over P x execution time."""
        if self.execution_time_ns == 0:
            return 0.0
        return self.trace.total_stall_ns() / (
            self.n_threads * self.execution_time_ns
        )


class WorkloadRunner:
    """Executes one workload model under one barrier implementation."""

    def __init__(
        self,
        model,
        system=None,
        n_threads=None,
        seed=0,
        barrier_factory=conventional_factory,
        predictor=None,
        perturb=None,
        telemetry=None,
    ):
        self.model = model
        self.n_threads = n_threads or model.default_threads
        self.system = system or System(telemetry=telemetry)
        if self.n_threads > self.system.n_nodes:
            raise WorkloadError(
                "{} threads > {} nodes".format(
                    self.n_threads, self.system.n_nodes
                )
            )
        self.seed = seed
        self.barrier_factory = barrier_factory
        #: Optional hook mapping the generated instance list to a
        #: perturbed one (e.g. OS preemption injection, Section 3.4.2).
        self.perturb = perturb
        self.predictor = predictor or LastValuePredictor()
        self.domain = TimingDomain(
            self.system, self.n_threads, predictor=self.predictor
        )
        self.trace = _BarrierTrace()
        self.barriers = {
            pc: barrier_factory(
                self.system, self.domain, self.n_threads, pc, self.trace
            )
            for pc in model.static_barriers
        }

    def run(self):
        """Simulate the whole application; returns a :class:`RunResult`."""
        instances = self.model.generate(self.n_threads, seed=self.seed)
        if self.perturb is not None:
            instances = self.perturb(instances)
        # Batch the schedule once, outside the event loop: resolve each
        # instance's barrier and convert the numpy duration vector to a
        # plain int list, so the per-thread generators do no numpy
        # scalar boxing or dict lookups between yields.
        plan = []
        for instance in instances:
            durations = [int(d) for d in instance.durations]
            for duration in durations:
                if duration < 0:
                    raise SimulationError(
                        "compute duration must be non-negative"
                    )
            plan.append((
                self.barriers[instance.pc].wait,
                instance.dirty_lines,
                durations,
            ))

        def program(node):
            thread_id = node.node_id
            cpu = node.cpu
            account_add = cpu.account.add
            compute_watts = cpu.power.compute_watts
            for barrier_wait, dirty_lines, durations in plan:
                # Inlined Cpu.compute(): pay any refill debt, run the
                # phase, charge it — without a generator frame per phase.
                duration = durations[thread_id] + cpu._refill_debt_ns
                cpu._refill_debt_ns = 0
                yield duration
                account_add(
                    Category.COMPUTE, duration, power_watts=compute_watts
                )
                yield from barrier_wait(node, dirty_lines=dirty_lines)

        self.system.run_threads(program, n_threads=self.n_threads)
        accounts = self.system.cpu_accounts()[: self.n_threads]
        total = EnergyAccount()
        for account in accounts:
            total.merge(account)
        return RunResult(
            app=self.model.name,
            n_threads=self.n_threads,
            execution_time_ns=self.system.execution_time_ns,
            accounts=accounts,
            total=total,
            trace=self.trace,
            power=self.system.power,
            barriers=self.barriers,
            predictor=self.predictor,
        )
