"""The ten SPLASH-2 application models of Table 2.

Each model reproduces the application's *barrier-arrival process* at the
paper's problem size (Table 2), calibrated so that the measured Baseline
barrier imbalance on 64 threads lands at the paper's figure:

========== ============ =========================================
app        imbalance    character
========== ============ =========================================
volrend    48.20%       few, very long, straggler-dominated phases
radix      19.50%       per-digit passes: histogram/scan/permute
fmm        16.56%       3 main-loop barriers shaped as in Figure 3
barnes     15.93%       tree build + force + advance per time step
water-nsq  12.90%       O(n^2) forces; large dirty footprint
water-sp    9.79%       spatial version, milder imbalance
ocean       7.60%       many short barriers with swinging intervals
fft         3.82%       a handful of non-repeating barriers
cholesky    1.64%       non-repeating factorization barriers
radiosity   1.04%       task stealing keeps phases balanced
========== ============ =========================================

The straggler fraction ``e`` follows from the target imbalance ``I``
via ``I = e / (1 + e)`` (one straggler among many threads); uniform
windows use ``I = (w/2) / (1 + w/2)``. Small calibration corrections on
top account for check-in serialization, which lengthens simulated
intervals slightly.
"""

from repro.errors import WorkloadError
from repro.workloads.base import PhaseSpec, WorkloadModel
from repro.workloads.imbalance import (
    AlternatingSwing,
    Balanced,
    RotatingStraggler,
    Swing,
    UniformWindow,
)

US = 1_000
MS = 1_000_000

#: Paper Table 2, for calibration tests and the Table 2 benchmark.
TABLE2_IMBALANCE = {
    "volrend": 0.4820,
    "radix": 0.1950,
    "fmm": 0.1656,
    "barnes": 0.1593,
    "water-nsq": 0.1290,
    "water-sp": 0.0979,
    "ocean": 0.0760,
    "fft": 0.0382,
    "cholesky": 0.0164,
    "radiosity": 0.0104,
}

#: Paper Table 2 problem sizes (documentation; the models encode their
#: *timing consequences*).
TABLE2_PROBLEM_SIZE = {
    "volrend": "head",
    "radix": "1M integers, radix 1,024",
    "fmm": "16k particles, 8 time steps",
    "barnes": "16k particles, 8 time steps",
    "water-nsq": "512 molecules, 12 time steps",
    "water-sp": "512 molecules, 12 time steps",
    "ocean": "514 by 514 ocean",
    "fft": "64k points",
    "cholesky": "tk15",
    "radiosity": "room -ae 5000.0 -en 0.05 -bf 0.1",
}


def _volrend():
    # Ray casting over the "head" volume: a handful of long phases per
    # frame whose cost concentrates on whichever thread owns the dense
    # rays. Largest imbalance and the largest interval times of the
    # suite — the showcase for deep sleep states (Section 5.2).
    straggler = 0.98
    return WorkloadModel(
        name="volrend",
        loop_phases=(
            PhaseSpec("volrend.ray", int(2.5 * MS),
                      RotatingStraggler(straggler, sigma=0.012),
                      dirty_lines=96),
            PhaseSpec("volrend.composite", int(1.2 * MS),
                      RotatingStraggler(0.925, sigma=0.012),
                      dirty_lines=48),
            PhaseSpec("volrend.copy", int(1.8 * MS),
                      RotatingStraggler(0.955, sigma=0.012),
                      dirty_lines=64),
        ),
        iterations=24,
        description="volume rendering (head), frame loop",
    )


def _radix():
    # Radix sort, 1M keys, radix 1024: per-digit histogram, prefix
    # scan, and permutation phases; key distribution skews the work.
    extra = 0.252
    return WorkloadModel(
        name="radix",
        loop_phases=(
            PhaseSpec("radix.histogram", 450 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=64),
            PhaseSpec("radix.scan", 250 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=24),
            PhaseSpec("radix.permute", 800 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=96),
            PhaseSpec("radix.copy", 350 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=48),
        ),
        iterations=6,
        description="radix sort passes over 1M integers",
    )


def _fmm():
    # Fast multipole, 16k particles: the three main-loop barriers of
    # Figure 3 with interval ratios ~1.45 : 0.63 : 0.91 and distinct
    # per-barrier imbalance. BST varies across threads/instances while
    # the per-PC BIT stays stable — the paper's motivating observation.
    return WorkloadModel(
        name="fmm",
        loop_phases=(
            PhaseSpec("fmm.b1", int(1.40 * MS),
                      RotatingStraggler(0.285, sigma=0.03),
                      dirty_lines=128),
            PhaseSpec("fmm.b2", int(0.70 * MS),
                      RotatingStraggler(0.10, sigma=0.03),
                      dirty_lines=32),
            PhaseSpec("fmm.b3", int(0.95 * MS),
                      RotatingStraggler(0.165, sigma=0.03),
                      dirty_lines=64),
        ),
        iterations=8,
        description="fast multipole main loop (Figure 3 barriers)",
    )


def _barnes():
    extra = 0.195
    return WorkloadModel(
        name="barnes",
        loop_phases=(
            PhaseSpec("barnes.maketree", 500 * US,
                      RotatingStraggler(extra, sigma=0.03),
                      dirty_lines=64),
            PhaseSpec("barnes.forces", int(1.2 * MS),
                      RotatingStraggler(extra, sigma=0.03),
                      dirty_lines=48),
            PhaseSpec("barnes.forces2", 900 * US,
                      RotatingStraggler(extra, sigma=0.03),
                      dirty_lines=48),
            PhaseSpec("barnes.advance", 400 * US,
                      RotatingStraggler(extra, sigma=0.03),
                      dirty_lines=32),
            PhaseSpec("barnes.energy", 300 * US,
                      RotatingStraggler(extra, sigma=0.03),
                      dirty_lines=16),
        ),
        iterations=8,
        description="Barnes-Hut time steps, 16k particles",
    )


def _water_nsq():
    # O(n^2) water: heavy write sharing -> the big dirty footprint the
    # paper blames for Thrifty's Compute growth here.
    extra = 0.148
    return WorkloadModel(
        name="water-nsq",
        loop_phases=(
            PhaseSpec("waternsq.intra", 600 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=112),
            PhaseSpec("waternsq.inter", 900 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=144),
            PhaseSpec("waternsq.kinetic", 300 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=48),
            PhaseSpec("waternsq.update", 450 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=80),
        ),
        iterations=12,
        description="O(n^2) molecular dynamics, 512 molecules",
    )


def _water_sp():
    extra = 0.106
    return WorkloadModel(
        name="water-sp",
        loop_phases=(
            PhaseSpec("watersp.intra", 550 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=48),
            PhaseSpec("watersp.inter", 750 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=64),
            PhaseSpec("watersp.kinetic", 280 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=24),
            PhaseSpec("watersp.update", 420 * US,
                      RotatingStraggler(extra, sigma=0.025),
                      dirty_lines=40),
        ),
        iterations=12,
        description="spatial molecular dynamics, 512 molecules",
    )


def _ocean():
    # 514x514 ocean: many short relaxation barriers whose interval
    # times swing across instances of the same barrier — the pattern
    # that defeats last-value prediction and motivates the cut-off
    # (Section 5.2). A third of the PCs swing by ~6x.
    window = UniformWindow(0.17, sigma=0.007)
    swing = Swing(low=0.22, high=3.2, p_high=0.45)
    # Short, nearly balanced point-update barriers whose interval often
    # drops to a few tens of microseconds: the instances where Thrifty
    # "overkills in selecting a sleep state" and the external wake-up
    # exposes the full exit transition plus the flush of dirty data
    # (Section 5.2). These drive the overprediction cut-off.
    def short_swing_factory():
        # 3.5x alternation: large enough that last-value is badly wrong
        # on every instance, small enough to pass the underprediction
        # filter, so the overprediction cut-off is the only defence.
        return AlternatingSwing(high=3.5, low=1.0)
    phases = []
    for index in range(12):
        mean = (300 + 110 * index) * US
        phases.append(
            PhaseSpec(
                "ocean.b{:02d}".format(index),
                mean,
                window,
                swing=swing if index % 2 == 0 else None,
                dirty_lines=96,
            )
        )
        phases.append(
            PhaseSpec(
                "ocean.pt{:02d}".format(index),
                150 * US,
                Balanced(sigma=0.004),
                swing=short_swing_factory(),
                dirty_lines=96,
            )
        )
    return WorkloadModel(
        name="ocean",
        loop_phases=tuple(phases),
        iterations=20,
        description="red-black relaxation sweeps, 514x514 grid",
    )


def _fft():
    # 64k-point FFT: each transpose/compute barrier executes once, so
    # the PC-indexed predictor never warms up and Thrifty degenerates
    # to Baseline (Section 5.1).
    window = UniformWindow(0.059, sigma=0.009)
    return WorkloadModel(
        name="fft",
        setup_phases=(
            PhaseSpec("fft.init", int(0.9 * MS), window, dirty_lines=64),
            PhaseSpec("fft.transpose1", int(1.4 * MS), window,
                      dirty_lines=96),
            PhaseSpec("fft.compute1", int(1.1 * MS), window, dirty_lines=64),
            PhaseSpec("fft.transpose2", int(1.4 * MS), window,
                      dirty_lines=96),
            PhaseSpec("fft.compute2", int(1.1 * MS), window, dirty_lines=64),
            PhaseSpec("fft.transpose3", int(1.3 * MS), window,
                      dirty_lines=96),
        ),
        description="six one-shot transpose/compute barriers",
    )


def _cholesky():
    window = UniformWindow(0.0225, sigma=0.004)
    return WorkloadModel(
        name="cholesky",
        setup_phases=(
            PhaseSpec("cholesky.alloc", int(1.4 * MS), window,
                      dirty_lines=32),
            PhaseSpec("cholesky.factor", int(3.0 * MS), window,
                      dirty_lines=64),
            PhaseSpec("cholesky.solve", int(1.7 * MS), window,
                      dirty_lines=48),
            PhaseSpec("cholesky.check", int(0.9 * MS), window,
                      dirty_lines=16),
        ),
        description="tk15 sparse factorization, one-shot barriers",
    )


def _radiosity():
    # Task stealing keeps radiosity nearly balanced.
    window = UniformWindow(0.002, sigma=0.0008)
    return WorkloadModel(
        name="radiosity",
        loop_phases=(
            PhaseSpec("radiosity.refine", 1950 * US, window, dirty_lines=32),
            PhaseSpec("radiosity.radavg", 1500 * US, window, dirty_lines=24),
        ),
        iterations=10,
        description="hierarchical radiosity iterations (room scene)",
    )


_FACTORIES = {
    "volrend": _volrend,
    "radix": _radix,
    "fmm": _fmm,
    "barnes": _barnes,
    "water-nsq": _water_nsq,
    "water-sp": _water_sp,
    "ocean": _ocean,
    "fft": _fft,
    "cholesky": _cholesky,
    "radiosity": _radiosity,
}

#: Names in Table 2 order (descending barrier imbalance).
SPLASH2_NAMES = list(TABLE2_IMBALANCE)

#: The applications with >= 10% imbalance — the paper's target set.
TARGET_APPS = ("volrend", "radix", "fmm", "barnes", "water-nsq")


def get_model(name):
    """A fresh :class:`WorkloadModel` for one application."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise WorkloadError(
            "unknown application {!r}; choose from {}".format(
                name, ", ".join(sorted(_FACTORIES))
            )
        ) from None
    return factory()


SPLASH2_MODELS = dict(_FACTORIES)
