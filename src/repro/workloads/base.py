"""Workload model core: phase specifications and trace generation.

A :class:`WorkloadModel` is a compact description of an application's
barrier structure: optional one-shot *setup* phases (the non-repeating
barriers of FFT and Cholesky), a *main loop* of phases executed for a
number of iterations (the SPMD time-step loop), and per-phase timing
parameters. :meth:`WorkloadModel.generate` expands it into a concrete,
seeded sequence of :class:`PhaseInstance` objects — one per dynamic
barrier instance, carrying per-thread compute durations.
"""

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.imbalance import Balanced, ImbalanceModel, Swing


@dataclass(frozen=True)
class PhaseSpec:
    """One static compute phase, ended by one static barrier.

    Attributes
    ----------
    pc:
        Identity of the barrier ending the phase (the predictor index).
    mean_ns:
        Mean per-thread compute time of the phase.
    imbalance:
        Per-thread spread model.
    swing:
        Optional per-instance global multiplier (Ocean-style interval
        variability).
    dirty_lines:
        Dirty cache-line footprint each thread carries into the barrier;
        flushed when a non-snooping sleep state is entered.
    """

    pc: str
    mean_ns: int
    imbalance: ImbalanceModel = field(default_factory=Balanced)
    swing: Optional[Swing] = None
    dirty_lines: int = 0

    def __post_init__(self):
        if self.mean_ns <= 0:
            raise WorkloadError(
                "phase {} has non-positive mean".format(self.pc)
            )
        if self.dirty_lines < 0:
            raise WorkloadError("dirty_lines must be non-negative")


@dataclass
class PhaseInstance:
    """One dynamic phase: concrete durations for every thread."""

    pc: str
    durations: np.ndarray
    dirty_lines: int

    @property
    def spread_ns(self):
        return int(self.durations.max() - self.durations.min())


class WorkloadModel:
    """An application as a barrier-arrival process.

    Parameters
    ----------
    name:
        Application name (e.g. ``"fmm"``).
    loop_phases:
        Phases executed each main-loop iteration.
    iterations:
        Number of main-loop iterations.
    setup_phases:
        Phases executed once before the loop (non-repeating barriers).
    default_threads:
        The thread count the calibration targets (64 in the paper).
    description:
        One line about what the real application does.
    """

    def __init__(
        self,
        name,
        loop_phases=(),
        iterations=0,
        setup_phases=(),
        default_threads=64,
        description="",
    ):
        if not loop_phases and not setup_phases:
            raise WorkloadError("a workload needs at least one phase")
        if loop_phases and iterations < 1:
            raise WorkloadError("loop phases require iterations >= 1")
        self.name = name
        self.loop_phases = tuple(loop_phases)
        self.iterations = iterations
        self.setup_phases = tuple(setup_phases)
        self.default_threads = default_threads
        self.description = description

    @property
    def static_barriers(self):
        """Distinct barrier PCs, in first-execution order."""
        seen = []
        for spec in list(self.setup_phases) + list(self.loop_phases):
            if spec.pc not in seen:
                seen.append(spec.pc)
        return seen

    @property
    def dynamic_instances(self):
        """Total dynamic barrier instances one run executes."""
        return len(self.setup_phases) + self.iterations * len(
            self.loop_phases
        )

    def spec_sequence(self):
        """The dynamic sequence of phase specs."""
        for spec in self.setup_phases:
            yield spec
        for _ in range(self.iterations):
            for spec in self.loop_phases:
                yield spec

    def generate(self, n_threads, seed=0):
        """Expand into concrete :class:`PhaseInstance` objects.

        Deterministic for a given ``(n_threads, seed)``.
        """
        if n_threads < 1:
            raise WorkloadError("need at least one thread")
        rng = np.random.default_rng(seed)
        instances = []
        for spec in self.spec_sequence():
            mean = spec.mean_ns
            if spec.swing is not None:
                mean = max(1, int(spec.swing.sample(rng) * mean))
            durations = spec.imbalance.sample(rng, n_threads, mean)
            instances.append(
                PhaseInstance(
                    pc=spec.pc,
                    durations=durations,
                    dirty_lines=spec.dirty_lines,
                )
            )
        return instances

    def expected_serial_ns(self, n_threads, seed=0):
        """Sum of per-instance maxima: the compute-critical-path length."""
        return int(
            sum(
                instance.durations.max()
                for instance in self.generate(n_threads, seed)
            )
        )

    def __repr__(self):
        return "WorkloadModel({!r}, {} static barriers, {} instances)".format(
            self.name, len(self.static_barriers), self.dynamic_instances
        )


def predicted_imbalance(model, n_threads, seed=0):
    """Analytic estimate of the Table 2 barrier-imbalance metric.

    Ignores barrier overheads: imbalance = sum of stalls over
    ``P * sum of interval maxima``. The simulator's measured value runs
    slightly higher because check-in serialization extends intervals.
    """
    instances = model.generate(n_threads, seed)
    total_stall = 0
    total_interval = 0
    for instance in instances:
        longest = int(instance.durations.max())
        total_interval += longest
        total_stall += int(
            (longest - instance.durations).sum()
        )
    if total_interval == 0:
        return 0.0
    return total_stall / (n_threads * total_interval)
