"""Red-black Gauss-Seidel relaxation as a trace workload.

Ocean's inner solver sweeps a grid in red/black half-iterations until
the residual drops below a tolerance, with a barrier after each color
sweep and after the residual reduction. We run the real solver on a
Poisson problem (verified to converge), partition rows across threads,
and count each thread's stencil updates. The *number of sweeps is data
dependent*, so the barrier count itself emerges from the computation.
"""

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import PhaseInstance
from repro.workloads.trace_model import TraceWorkload

#: Simulated cost of one 5-point stencil update (five loads, a store).
DEFAULT_NS_PER_UPDATE = 25


def relax_traced(grid_size, n_threads, tolerance=1e-3, max_sweeps=2000,
                 seed=0):
    """Solve a Poisson problem by red-black relaxation, counting work.

    Returns ``(solution, residuals, sweep_counts)`` where
    ``sweep_counts`` is a list of per-thread update counts, one entry
    per half-sweep plus one per residual reduction.
    """
    if grid_size < 4:
        raise WorkloadError("grid too small")
    rng = np.random.default_rng(seed)
    grid = np.zeros((grid_size, grid_size))
    source = rng.normal(size=(grid_size, grid_size)) / grid_size
    interior = slice(1, grid_size - 1)
    # Row-block partition of the interior.
    rows = grid_size - 2
    base = rows // n_threads
    row_counts = np.full(n_threads, base, dtype=np.int64)
    row_counts[: rows - base * n_threads] += 1
    phases = []
    residuals = []
    for _sweep in range(max_sweeps):
        for color in (0, 1):
            mask = np.zeros_like(grid, dtype=bool)
            ii, jj = np.meshgrid(
                np.arange(1, grid_size - 1),
                np.arange(1, grid_size - 1),
                indexing="ij",
            )
            mask[interior, interior] = ((ii + jj) % 2) == color
            neighbors = (
                np.roll(grid, 1, axis=0) + np.roll(grid, -1, axis=0)
                + np.roll(grid, 1, axis=1) + np.roll(grid, -1, axis=1)
            )
            grid[mask] = 0.25 * (neighbors[mask] - source[mask])
            # Per-thread updates: half the cells of each row block.
            updates = row_counts * (grid_size - 2) // 2
            phases.append(("ocean.sweep{}".format(color), updates))
        residual = np.abs(
            4 * grid[interior, interior]
            - grid[:-2, 1:-1] - grid[2:, 1:-1]
            - grid[1:-1, :-2] - grid[1:-1, 2:]
            + source[interior, interior]
        ).max()
        residuals.append(residual)
        phases.append(
            ("ocean.residual", row_counts * (grid_size - 2) // 8 + 4)
        )
        if residual < tolerance:
            break
    else:
        raise WorkloadError(
            "relaxation did not converge in {} sweeps".format(max_sweeps)
        )
    return grid, residuals, phases


def ocean_workload(
    grid_size=66, n_threads=16, tolerance=2e-3, seed=0,
    ns_per_update=DEFAULT_NS_PER_UPDATE,
):
    """Run the solver; package the update counts as a workload.

    Returns ``(workload, residual_history)``.
    """
    _grid, residuals, phases = relax_traced(
        grid_size, n_threads, tolerance=tolerance, seed=seed
    )
    instances = [
        PhaseInstance(
            pc=name,
            durations=np.maximum(
                1, (np.asarray(ops) * ns_per_update).astype(np.int64)
            ),
            dirty_lines=80,
        )
        for name, ops in phases
    ]
    workload = TraceWorkload(
        "ocean-kernel", instances,
        description="traced red-black relaxation, {0}x{0} grid".format(
            grid_size
        ),
    )
    return workload, residuals
