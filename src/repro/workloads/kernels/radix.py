"""Parallel LSD radix sort as a trace workload.

The SPLASH-2 radix kernel sorts integer keys digit by digit; each pass
has a local-histogram phase, a prefix-sum phase, and a permutation
phase, each ended by a barrier. We run the real sort on a partitioned
key array (optionally skewed, which is what creates imbalance), count
each thread's operations per phase, and scale the counts to simulated
nanoseconds.
"""

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import PhaseInstance
from repro.workloads.trace_model import TraceWorkload

#: Simulated cost of one histogram/permute operation: a key touch is a
#: load plus a (often remote, often missing) bucket update.
DEFAULT_NS_PER_OP = 60


def _partition(n_items, n_threads):
    """Contiguous block partition: the per-thread item counts."""
    base = n_items // n_threads
    counts = np.full(n_threads, base, dtype=np.int64)
    counts[: n_items - base * n_threads] += 1
    return counts


def radix_sort_traced(keys, radix, n_threads):
    """Sort ``keys`` (LSD) while recording per-thread phase op counts.

    Returns ``(sorted_keys, phases)`` where ``phases`` is a list of
    ``(phase_name, per_thread_ops)``.
    """
    if radix < 2 or radix & (radix - 1):
        raise WorkloadError("radix must be a power of two >= 2")
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        raise WorkloadError("no keys to sort")
    if (keys < 0).any():
        raise WorkloadError("keys must be non-negative")
    digit_bits = radix.bit_length() - 1
    max_key = int(keys.max())
    n_digits = max(1, (max_key.bit_length() + digit_bits - 1) // digit_bits)
    phases = []
    current = keys.copy()
    for digit in range(n_digits):
        shift = digit * digit_bits
        digits = (current >> shift) & (radix - 1)
        # Phase 1: local histograms over each thread's block.
        block_sizes = _partition(current.size, n_threads)
        bounds = np.concatenate(([0], np.cumsum(block_sizes)))
        phases.append(("radix.histogram", block_sizes.copy()))
        # Phase 2: prefix sum over the radix buckets (each thread scans
        # its slice of the bucket space).
        scan_ops = _partition(radix, n_threads) + 8
        phases.append(("radix.scan", scan_ops))
        # Phase 3: permutation — each thread moves its block's keys to
        # their destination buckets.
        histograms = np.zeros((n_threads, radix), dtype=np.int64)
        for thread in range(n_threads):
            lo, hi = bounds[thread], bounds[thread + 1]
            histograms[thread] = np.bincount(
                digits[lo:hi], minlength=radix
            )
        # Stable global permutation: bucket-major, thread-minor.
        bucket_base = np.concatenate(
            ([0], np.cumsum(histograms.sum(axis=0))[:-1])
        )
        offsets = bucket_base + np.concatenate(
            (np.zeros((1, radix), dtype=np.int64),
             np.cumsum(histograms, axis=0)[:-1]),
        )
        output = np.empty_like(current)
        for thread in range(n_threads):
            lo, hi = bounds[thread], bounds[thread + 1]
            cursor = offsets[thread].copy()
            block = current[lo:hi]
            block_digits = digits[lo:hi]
            order = np.argsort(block_digits, kind="stable")
            sorted_digits = block_digits[order]
            positions = cursor[sorted_digits] + _running_rank(sorted_digits)
            output[positions] = block[order]
        phases.append(("radix.permute", block_sizes.copy()))
        current = output
    return current, phases


def _running_rank(sorted_values):
    """Rank of each element within its run of equal values."""
    if sorted_values.size == 0:
        return sorted_values
    change = np.concatenate(([True], sorted_values[1:] != sorted_values[:-1]))
    run_starts = np.flatnonzero(change)
    indices = np.arange(sorted_values.size)
    return indices - np.repeat(run_starts, np.diff(
        np.concatenate((run_starts, [sorted_values.size]))
    ))


def radix_workload(
    n_keys=1 << 15, radix=1 << 8, n_threads=16, seed=0,
    ns_per_op=DEFAULT_NS_PER_OP, skew=0.0,
):
    """Run the sort and package the op counts as a workload.

    ``skew`` in [0, 1) concentrates extra keys in the first thread's
    block, the data-dependent imbalance the SPLASH-2 kernel exhibits on
    non-uniform inputs. Returns ``(workload, sorted_keys)``.
    """
    if not 0 <= skew < 1:
        raise WorkloadError("skew must be in [0, 1)")
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 16, size=n_keys, dtype=np.int64)
    instances = []
    sorted_keys, phases = radix_sort_traced(keys, radix, n_threads)
    for name, ops in phases:
        ops = ops.astype(np.float64)
        if skew and name != "radix.scan":
            ops[0] *= 1.0 + skew * n_threads / 4.0
        durations = np.maximum(1, (ops * ns_per_op).astype(np.int64))
        instances.append(
            PhaseInstance(pc=name, durations=durations, dirty_lines=48)
        )
    workload = TraceWorkload(
        "radix-kernel", instances,
        description="traced LSD radix sort, {} keys radix {}".format(
            n_keys, radix
        ),
    )
    return workload, sorted_keys
