"""Real algorithmic kernels driving trace workloads.

Each module runs an actual parallel algorithm (partitioned the way the
SPLASH-2 program partitions it), verifies its result, counts every
thread's work in each phase, and converts the counts into a
:class:`~repro.workloads.trace_model.TraceWorkload` the simulator can
execute. Imbalance here *emerges from the data* — a skewed key
distribution, a clustered particle set — rather than being sampled from
a statistical model.

* :mod:`repro.workloads.kernels.radix` — LSD radix sort;
* :mod:`repro.workloads.kernels.fft` — iterative radix-2 FFT;
* :mod:`repro.workloads.kernels.ocean` — red-black Gauss-Seidel
  relaxation;
* :mod:`repro.workloads.kernels.nbody` — O(n^2) gravitational forces
  over a clustered particle set.
"""

from repro.workloads.kernels.fft import fft_workload
from repro.workloads.kernels.nbody import nbody_workload
from repro.workloads.kernels.ocean import ocean_workload
from repro.workloads.kernels.radix import radix_workload

__all__ = [
    "fft_workload",
    "nbody_workload",
    "ocean_workload",
    "radix_workload",
]
