"""Iterative radix-2 FFT as a trace workload.

The SPLASH-2 FFT alternates butterfly-compute phases with transpose
phases, each ended by a one-shot barrier — the "handful of
non-repeating barriers" that leaves the thrifty predictor cold. We run
a real decimation-in-time FFT (verified against ``numpy.fft``), with
the butterfly work of each stage partitioned across threads, and count
each thread's butterflies.
"""

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import PhaseInstance
from repro.workloads.trace_model import TraceWorkload

#: Simulated cost of one complex butterfly (flops plus strided loads).
DEFAULT_NS_PER_BUTTERFLY = 40


def fft_traced(values, n_threads):
    """Compute the FFT of ``values`` while counting per-thread work.

    Returns ``(spectrum, stage_counts)`` where ``stage_counts[s]`` is
    the per-thread butterfly counts of stage ``s``.
    """
    data = np.asarray(values, dtype=np.complex128).copy()
    n = data.size
    if n < 2 or n & (n - 1):
        raise WorkloadError("FFT size must be a power of two >= 2")
    # Bit-reversal permutation.
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    bits = n.bit_length() - 1
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    data = data[reversed_indices]
    stage_counts = []
    half = 1
    while half < n:
        span = half * 2
        twiddle = np.exp(-2j * np.pi * np.arange(half) / span)
        # All butterflies of the stage, blocked across threads.
        starts = np.arange(0, n, span)
        for start in starts:
            upper = data[start:start + half].copy()
            lower = data[start + half:start + span] * twiddle
            data[start:start + half] = upper + lower
            data[start + half:start + span] = upper - lower
        butterflies = n // 2
        base = butterflies // n_threads
        counts = np.full(n_threads, base, dtype=np.int64)
        counts[: butterflies - base * n_threads] += 1
        stage_counts.append(counts)
        half = span
    return data, stage_counts


def fft_workload(
    n_points=1 << 12, n_threads=16, seed=0,
    ns_per_butterfly=DEFAULT_NS_PER_BUTTERFLY,
):
    """Run the FFT and package per-stage counts as one-shot barriers.

    Stages pair up into compute phases separated by transpose phases
    (the SPLASH-2 structure); every barrier PC is distinct, so the
    PC-indexed predictor never warms up on this workload. Returns
    ``(workload, spectrum)``.
    """
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=n_points) + 1j * rng.normal(size=n_points)
    spectrum, stage_counts = fft_traced(signal, n_threads)
    instances = []
    n_stages = len(stage_counts)
    group = max(1, n_stages // 3)
    for index in range(0, n_stages, group):
        chunk = stage_counts[index:index + group]
        ops = np.sum(chunk, axis=0)
        durations = np.maximum(
            1, (ops * ns_per_butterfly).astype(np.int64)
        )
        instances.append(
            PhaseInstance(
                pc="fft.compute{}".format(index // group),
                durations=durations,
                dirty_lines=64,
            )
        )
        # Transpose between compute groups: every thread exchanges its
        # block (n/threads points) with the others.
        transpose_ops = np.full(
            n_threads, n_points // n_threads, dtype=np.int64
        )
        instances.append(
            PhaseInstance(
                pc="fft.transpose{}".format(index // group),
                durations=np.maximum(
                    1, (transpose_ops * 2).astype(np.int64)
                ),
                dirty_lines=96,
            )
        )
    workload = TraceWorkload(
        "fft-kernel", instances,
        description="traced radix-2 FFT, {} points".format(n_points),
    )
    return workload, spectrum
