"""O(n^2) gravitational n-body steps as a trace workload.

Water-Nsq-style structure: per time step, a force phase (all pairs for
the bodies a thread owns), an integration phase, and an energy
reduction, each ended by a barrier. Bodies are distributed in clusters,
so a block partition gives genuinely skewed force costs when paired
with a cutoff radius — imbalance from the data, not from a sampler.
"""

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import PhaseInstance
from repro.workloads.trace_model import TraceWorkload

#: Simulated cost of one pairwise force evaluation.
DEFAULT_NS_PER_PAIR = 12
_SOFTENING = 1e-2


def nbody_traced(n_bodies, n_steps, n_threads, cutoff=0.6, seed=0,
                 dt=1e-3):
    """Integrate the system, counting per-thread pair evaluations.

    Pairs farther apart than ``cutoff`` are skipped (the source of
    data-dependent imbalance under clustering). Returns
    ``(positions, energies, phases)``.
    """
    if n_bodies < 2:
        raise WorkloadError("need at least two bodies")
    rng = np.random.default_rng(seed)
    # Two clusters of different density.
    half = n_bodies // 2
    positions = np.concatenate(
        [
            rng.normal(loc=0.0, scale=0.15, size=(half, 2)),
            rng.normal(loc=1.0, scale=0.45, size=(n_bodies - half, 2)),
        ]
    )
    velocities = np.zeros_like(positions)
    masses = np.full(n_bodies, 1.0 / n_bodies)
    base = n_bodies // n_threads
    owned = np.full(n_threads, base, dtype=np.int64)
    owned[: n_bodies - base * n_threads] += 1
    bounds = np.concatenate(([0], np.cumsum(owned)))
    phases = []
    energies = []
    for _step in range(n_steps):
        delta = positions[:, None, :] - positions[None, :, :]
        dist2 = (delta ** 2).sum(axis=-1) + _SOFTENING
        within = dist2 <= cutoff ** 2
        np.fill_diagonal(within, False)
        inv = within / (dist2 * np.sqrt(dist2))
        forces = (
            delta * inv[..., None] * masses[None, :, None]
        ).sum(axis=1) * -1.0
        pair_counts = np.array(
            [
                within[bounds[t]:bounds[t + 1]].sum()
                for t in range(n_threads)
            ],
            dtype=np.int64,
        )
        phases.append(("nbody.forces", pair_counts))
        velocities += dt * forces
        positions += dt * velocities
        phases.append(("nbody.advance", owned * 4))
        kinetic = 0.5 * (masses * (velocities ** 2).sum(axis=1)).sum()
        energies.append(kinetic)
        phases.append(("nbody.energy", owned + 8))
    return positions, energies, phases


def nbody_workload(
    n_bodies=512, n_steps=8, n_threads=16, cutoff=0.6, seed=0,
    ns_per_pair=DEFAULT_NS_PER_PAIR,
):
    """Run the integration; package the counts as a workload.

    Returns ``(workload, kinetic_energy_history)``.
    """
    _pos, energies, phases = nbody_traced(
        n_bodies, n_steps, n_threads, cutoff=cutoff, seed=seed
    )
    instances = [
        PhaseInstance(
            pc=name,
            durations=np.maximum(
                1, (np.asarray(ops) * ns_per_pair).astype(np.int64)
            ),
            dirty_lines=96,
        )
        for name, ops in phases
    ]
    workload = TraceWorkload(
        "nbody-kernel", instances,
        description="traced O(n^2) n-body, {} bodies, {} steps".format(
            n_bodies, n_steps
        ),
    )
    return workload, energies
