"""Workload models.

The paper evaluates on ten SPLASH-2 applications. Running the original
binaries under a cycle-level simulator is out of scope for a Python
reproduction (see DESIGN.md), so this package models each application's
*barrier-arrival process* — the only input the thrifty barrier actually
consumes: which static barriers execute in what order, the per-thread
compute time preceding each dynamic instance, its variability across
instances and threads, and the dirty cache footprint carried into each
barrier.

* :mod:`repro.workloads.imbalance` — per-thread spread models
  (rotating straggler, uniform window, ...) and per-instance swing;
* :mod:`repro.workloads.base` — phase specs, the model class, trace
  generation;
* :mod:`repro.workloads.generator` — runs a model on a
  :class:`~repro.machine.System` under a chosen barrier implementation;
* :mod:`repro.workloads.splash2` — the ten calibrated application
  models of Table 2;
* :mod:`repro.workloads.kernels` — real algorithmic kernels (radix
  sort, FFT, grid relaxation, n-body) whose measured per-thread
  operation counts drive example workloads.
"""

from repro.workloads.base import PhaseInstance, PhaseSpec, WorkloadModel
from repro.workloads.generator import RunResult, WorkloadRunner
from repro.workloads.imbalance import (
    Balanced,
    FixedStraggler,
    RotatingStraggler,
    UniformWindow,
)
from repro.workloads.splash2 import SPLASH2_MODELS, get_model

__all__ = [
    "Balanced",
    "FixedStraggler",
    "PhaseInstance",
    "PhaseSpec",
    "RotatingStraggler",
    "RunResult",
    "SPLASH2_MODELS",
    "UniformWindow",
    "WorkloadModel",
    "WorkloadRunner",
    "get_model",
]
