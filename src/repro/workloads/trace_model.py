"""Workload models built from explicit per-thread traces.

The statistical models in :mod:`repro.workloads.splash2` describe
arrival processes; a :class:`TraceWorkload` instead carries concrete
:class:`~repro.workloads.base.PhaseInstance` objects — typically
produced by actually *running* an algorithm and counting each thread's
work (see :mod:`repro.workloads.kernels`).
"""

from repro.errors import WorkloadError


class TraceWorkload:
    """A workload defined by an explicit instance sequence.

    Implements the same interface :class:`~repro.workloads.generator.
    WorkloadRunner` consumes (``static_barriers``, ``dynamic_instances``,
    ``generate``, ``default_threads``).
    """

    def __init__(self, name, instances, description=""):
        if not instances:
            raise WorkloadError("a trace workload needs instances")
        lengths = {len(instance.durations) for instance in instances}
        if len(lengths) != 1:
            raise WorkloadError(
                "inconsistent thread counts across instances: {}".format(
                    sorted(lengths)
                )
            )
        self.name = name
        self.instances = list(instances)
        self.default_threads = lengths.pop()
        self.description = description

    @property
    def static_barriers(self):
        seen = []
        for instance in self.instances:
            if instance.pc not in seen:
                seen.append(instance.pc)
        return seen

    @property
    def dynamic_instances(self):
        return len(self.instances)

    def generate(self, n_threads, seed=0):
        """Return the stored trace (the seed is part of its creation)."""
        if n_threads != self.default_threads:
            raise WorkloadError(
                "trace was recorded for {} threads, not {}".format(
                    self.default_threads, n_threads
                )
            )
        return self.instances

    def __repr__(self):
        return "TraceWorkload({!r}, {} instances, {} threads)".format(
            self.name, len(self.instances), self.default_threads
        )
