"""Context-switch and I/O perturbation (paper Section 3.4.2).

The operating system occasionally takes a CPU away from its thread —
an I/O request, a page fault, a daemon. From the barrier's perspective
the effect is an *inordinately long* interval: the preempted thread
arrives late, the last arriver measures a BIT far above the predicted
one, and the underprediction filter must keep the spike out of the
predictor so that the next (normal) instance is not grossly
overpredicted.

:func:`inject_preemptions` applies this perturbation to a generated
instance list; it composes with any model via
:class:`~repro.workloads.generator.WorkloadRunner`'s ``perturb`` hook.
"""

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import PhaseInstance


def inject_preemptions(
    instances, probability, duration_ns, seed=0, victims=None,
):
    """Extend random (instance, thread) cells by a preemption.

    Parameters
    ----------
    instances:
        The :class:`~repro.workloads.base.PhaseInstance` list to perturb
        (not mutated; a new list is returned).
    probability:
        Chance that any given instance suffers a preemption.
    duration_ns:
        How long the OS holds the CPU (page fault: ~ms).
    seed:
        RNG seed for victim selection.
    victims:
        Optional subset of thread ids eligible for preemption.

    Returns ``(perturbed_instances, events)`` where ``events`` lists
    ``(instance_index, thread, duration_ns)``.
    """
    if not 0 <= probability <= 1:
        raise WorkloadError("probability must be in [0, 1]")
    if duration_ns <= 0:
        raise WorkloadError("preemption duration must be positive")
    rng = np.random.default_rng(seed)
    perturbed = []
    events = []
    for index, instance in enumerate(instances):
        durations = instance.durations.copy()
        if rng.random() < probability:
            pool = (
                list(victims)
                if victims is not None
                else list(range(len(durations)))
            )
            thread = int(pool[rng.integers(len(pool))])
            durations[thread] += duration_ns
            events.append((index, thread, duration_ns))
        perturbed.append(
            PhaseInstance(
                pc=instance.pc,
                durations=durations,
                dirty_lines=instance.dirty_lines,
            )
        )
    return perturbed, events
