"""Tests for preemption injection and the underprediction filter
(paper Section 3.4.2)."""

import pytest

from repro.config import ThriftyConfig
from repro.errors import WorkloadError
from repro.sync import ThriftyBarrier
from repro.workloads import (
    PhaseSpec,
    RotatingStraggler,
    WorkloadModel,
    WorkloadRunner,
)
from repro.workloads.perturb import inject_preemptions

from tests.conftest import make_system

PAGE_FAULT_NS = 30_000_000  # 30 ms: an inordinate interval


def toy_model(iterations=12):
    return WorkloadModel(
        name="perturbed",
        loop_phases=(
            PhaseSpec("p.work", 600_000, RotatingStraggler(0.5, sigma=0.01)),
        ),
        iterations=iterations,
        default_threads=4,
    )


class TestInjection:
    def test_events_extend_exactly_one_thread(self):
        instances = toy_model().generate(4, seed=0)
        perturbed, events = inject_preemptions(
            instances, probability=1.0, duration_ns=PAGE_FAULT_NS, seed=1
        )
        assert len(events) == len(instances)
        for (index, thread, duration), before, after in zip(
            events, instances, perturbed
        ):
            delta = after.durations - before.durations
            assert delta[thread] == duration
            assert delta.sum() == duration

    def test_zero_probability_changes_nothing(self):
        instances = toy_model().generate(4, seed=0)
        perturbed, events = inject_preemptions(
            instances, probability=0.0, duration_ns=PAGE_FAULT_NS
        )
        assert events == []
        for before, after in zip(instances, perturbed):
            assert (before.durations == after.durations).all()

    def test_originals_not_mutated(self):
        instances = toy_model().generate(4, seed=0)
        snapshot = [i.durations.copy() for i in instances]
        inject_preemptions(instances, 1.0, PAGE_FAULT_NS)
        for before, expected in zip(instances, snapshot):
            assert (before.durations == expected).all()

    def test_victim_subset_respected(self):
        instances = toy_model().generate(4, seed=0)
        _, events = inject_preemptions(
            instances, probability=1.0, duration_ns=PAGE_FAULT_NS,
            victims=(2,),
        )
        assert events and all(thread == 2 for _i, thread, _d in events)

    def test_invalid_parameters_rejected(self):
        instances = toy_model().generate(4, seed=0)
        with pytest.raises(WorkloadError):
            inject_preemptions(instances, -0.1, 100)
        with pytest.raises(WorkloadError):
            inject_preemptions(instances, 0.5, 0)


def run_thrifty(perturb=None, underprediction_factor=4.0):
    system = make_system()
    config = ThriftyConfig(underprediction_factor=underprediction_factor)

    def factory(sys_, domain, n_threads, pc, trace):
        return ThriftyBarrier(
            sys_, domain, n_threads, pc, trace=trace, config=config
        )

    runner = WorkloadRunner(
        toy_model(), system=system, seed=3,
        barrier_factory=factory, perturb=perturb,
    )
    return runner.run(), system


class TestFilterEndToEnd:
    def _perturb(self, instances):
        perturbed, _ = inject_preemptions(
            instances, probability=0.25, duration_ns=PAGE_FAULT_NS, seed=9
        )
        return perturbed

    def test_run_completes_under_preemption(self):
        result, _ = run_thrifty(perturb=self._perturb)
        assert len(result.trace.released_instances()) == 12

    def test_filter_keeps_predictor_sane(self):
        # Normal intervals are ~1 ms; preempted ones ~31 ms. With the
        # filter on, the table never learns the spike.
        result, _ = run_thrifty(perturb=self._perturb)
        barrier = result.barriers["p.work"]
        assert barrier.stats.filtered_updates > 0
        assert result.predictor.peek("p.work") < 5_000_000

    def test_without_filter_spikes_poison_prediction(self):
        result, _ = run_thrifty(
            perturb=self._perturb, underprediction_factor=1e9
        )
        barrier = result.barriers["p.work"]
        assert barrier.stats.filtered_updates == 0
        # At least one overprediction-driven consequence follows: either
        # the cut-off disables the barrier or late wakes are recorded.
        consequences = (
            barrier.stats.cutoff_disables
            + barrier.stats.invalidation_wakes
        )
        assert consequences > 0

    def test_filter_reduces_time_lost_to_spikes(self):
        filtered, _ = run_thrifty(perturb=self._perturb)
        unfiltered, _ = run_thrifty(
            perturb=self._perturb, underprediction_factor=1e9
        )
        # Same perturbed workload; the filtered predictor never sleeps
        # toward a 31 ms wake-up estimate, so it cannot be grossly late.
        assert (
            filtered.execution_time_ns <= unfiltered.execution_time_ns
        )
