"""Property tests for the bucketed calendar queue (repro.sim.core).

The calendar queue replaced a single ``(time, seq)`` heap; its contract
is that dispatch order, cancellation accounting, and the executed /
skipped_cancelled counters are *exactly* those of the legacy heap. These
tests enforce that by replaying seeded randomized insert/pop/cancel
interleavings against :class:`ReferenceScheduler` — a straight
re-implementation of the legacy heap kept here in the test — and
asserting the two produce identical logs and counters.

Every dispatch lane of :meth:`Simulator.run` is exercised: the
no-trace/no-until full drain, the ``until``-horizon lane (driven in
small increments so buckets are repeatedly suspended and resumed
mid-drain), the traced general loop, and the :meth:`Simulator.step`
single-callback path. The randomized plans are built so timestamps
collide heavily (list buckets), most timestamps stay unique (singleton
buckets), callbacks schedule same-timestamp children into the bucket
currently being drained, and cancellations race the dispatch head.
"""

import heapq
import random

import pytest

from repro.sim import Simulator

SEEDS = range(8)


# ---------------------------------------------------------------------------
# Reference model: the legacy single-heap scheduler.


class _RefHandle:
    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn, args):
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class ReferenceScheduler:
    """The pre-rewrite scheduler: one heap of ``(time, seq, handle)``.

    Ties break by global schedule-call order (``seq``); cancelled
    entries are dequeued, counted, and skipped — the exact semantics the
    calendar queue must reproduce.
    """

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0
        self.executed = 0
        self.skipped_cancelled = 0

    def schedule(self, delay, fn, *args):
        handle = _RefHandle(fn, args)
        heapq.heappush(self._heap, (self.now + delay, self._seq, handle))
        self._seq += 1
        return handle

    def run(self):
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                self.skipped_cancelled += 1
                continue
            self.now = time
            handle.fn(*handle.args)
            self.executed += 1


# ---------------------------------------------------------------------------
# Randomized plan generation and replay.


def build_plan(seed, n_roots=24, budget=220):
    """A deterministic callback tree: who fires, spawns, and cancels whom.

    Returns ``(roots, actions, precancelled)``:

    * ``roots`` — ``(delay, id)`` pairs scheduled before the run starts;
    * ``actions[id]`` — what callback ``id`` does when it fires: spawn
      children (delays 0..4, so some land in the bucket being drained)
      and/or cancel earlier ids (which may be pending, already fired, or
      already cancelled — all three races are generated);
    * ``precancelled`` — ids cancelled before the run starts, so some
      dequeues (singleton and list buckets alike) are pure skips.

    Delays are drawn from a small range on purpose: with ~200 callbacks
    in a span of a few dozen timestamps, simultaneity is the common case
    and list buckets grow several entries deep, exactly like barrier
    releases do in the real workloads.
    """
    rng = random.Random(seed)
    actions = {}
    roots = []
    next_id = 0
    frontier = []
    for _ in range(n_roots):
        roots.append((rng.randrange(0, 20), next_id))
        frontier.append(next_id)
        next_id += 1
    while frontier and next_id < budget:
        cb_id = frontier.pop(rng.randrange(len(frontier)))
        todo = []
        for _ in range(rng.randrange(0, 4)):
            if next_id >= budget:
                break
            todo.append(("spawn", rng.randrange(0, 5), next_id))
            frontier.append(next_id)
            next_id += 1
        if next_id > 1 and rng.random() < 0.35:
            todo.append(("cancel", rng.randrange(next_id)))
        rng.shuffle(todo)
        actions[cb_id] = todo
    precancelled = [
        cb_id for _delay, cb_id in roots if rng.random() < 0.2
    ]
    return roots, actions, precancelled


def replay(scheduler, roots, actions, precancelled):
    """Schedule the plan on ``scheduler``; returns the execution log.

    ``scheduler`` only needs ``schedule(delay, fn)`` returning an object
    with ``cancel()``, and a ``now`` attribute/property — satisfied by
    both :class:`Simulator` and :class:`ReferenceScheduler`.
    """
    log = []
    handles = {}

    def make_callback(cb_id):
        def callback():
            log.append((cb_id, scheduler.now))
            for action in actions.get(cb_id, ()):
                if action[0] == "spawn":
                    _, delay, child = action
                    handles[child] = scheduler.schedule(
                        delay, make_callback(child)
                    )
                else:
                    target = handles.get(action[1])
                    if target is not None:
                        target.cancel()

        return callback

    for delay, cb_id in roots:
        handles[cb_id] = scheduler.schedule(delay, make_callback(cb_id))
    for cb_id in precancelled:
        handles[cb_id].cancel()
    return log


def reference_outcome(seed):
    roots, actions, precancelled = build_plan(seed)
    reference = ReferenceScheduler()
    log = replay(reference, roots, actions, precancelled)
    reference.run()
    return log, reference


# ---------------------------------------------------------------------------
# The interleaving property, once per dispatch lane.


@pytest.mark.parametrize("seed", SEEDS)
def test_full_drain_matches_reference_heap(seed):
    """The hottest lane (no trace, no until, no budget) vs the heap."""
    ref_log, reference = reference_outcome(seed)
    roots, actions, precancelled = build_plan(seed)
    sim = Simulator()
    log = replay(sim, roots, actions, precancelled)
    sim.run()
    assert log == ref_log
    assert sim.executed == reference.executed == len(log)
    assert sim.skipped_cancelled == reference.skipped_cancelled
    assert sim.pending == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_stepped_drain_matches_reference_heap(seed):
    """step() — one dequeue per call, buckets suspended between calls."""
    ref_log, reference = reference_outcome(seed)
    roots, actions, precancelled = build_plan(seed)
    sim = Simulator()
    log = replay(sim, roots, actions, precancelled)
    while sim.step():
        pass
    assert log == ref_log
    assert sim.executed == reference.executed
    assert sim.skipped_cancelled == reference.skipped_cancelled


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_until_matches_reference_heap(seed):
    """run(until=...) in small hops: buckets paused/resumed mid-drain."""
    ref_log, reference = reference_outcome(seed)
    roots, actions, precancelled = build_plan(seed)
    sim = Simulator()
    log = replay(sim, roots, actions, precancelled)
    horizon = 0
    while sim.pending:
        horizon += 3
        assert horizon < 10**6, "runaway schedule"
        sim.run(until=horizon)
    sim.run()  # drain any trailing cancelled entries
    assert log == ref_log
    assert sim.executed == reference.executed
    assert sim.skipped_cancelled == reference.skipped_cancelled


@pytest.mark.parametrize("seed", SEEDS)
def test_traced_drain_matches_reference_heap(seed):
    """The general (traced) loop, with the cancelled-aware hook."""
    ref_log, reference = reference_outcome(seed)
    roots, actions, precancelled = build_plan(seed)
    observed = {"executed": 0, "cancelled": 0}

    def hook(now, fn, args, cancelled=False):
        if cancelled:
            observed["cancelled"] += 1
        else:
            observed["executed"] += 1

    sim = Simulator(trace=hook)
    log = replay(sim, roots, actions, precancelled)
    sim.run()
    assert log == ref_log
    assert sim.executed == reference.executed
    assert sim.skipped_cancelled == reference.skipped_cancelled
    # The hook saw every dequeue exactly once, both streams.
    assert observed["executed"] == sim.executed
    assert observed["cancelled"] == sim.skipped_cancelled


@pytest.mark.parametrize("seed", SEEDS)
def test_fifo_tie_breaker_choice_lane_matches_reference_heap(seed):
    """The choice lane under the default FIFO strategy IS the legacy
    order.

    Installing a tie-breaker routes dispatch through
    ``Simulator._run_choice`` — every multi-entry bucket becomes a
    choice point. With :class:`~repro.check.tiebreak.FifoTieBreaker`
    (always pick candidate 0) the realized schedule must reproduce the
    legacy ``(time, seq)`` heap order exactly, log and counters alike:
    that equivalence is what keeps the golden-trace corpus valid while
    ``repro check`` explores deviations from it.
    """
    from repro.check.tiebreak import FifoTieBreaker

    ref_log, reference = reference_outcome(seed)
    roots, actions, precancelled = build_plan(seed)
    sim = Simulator()
    sim.tie_breaker = FifoTieBreaker()
    log = replay(sim, roots, actions, precancelled)
    sim.run()
    assert log == ref_log
    assert sim.executed == reference.executed == len(log)
    assert sim.skipped_cancelled == reference.skipped_cancelled
    assert sim.pending == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_empty_schedule_driver_matches_reference_heap(seed):
    """A :class:`~repro.check.tiebreak.ScheduleDriver` with no forced
    decisions falls back to FIFO at every choice point — the empty
    decision string names the default schedule."""
    from repro.check.tiebreak import ScheduleDriver

    ref_log, reference = reference_outcome(seed)
    roots, actions, precancelled = build_plan(seed)
    sim = Simulator()
    sim.tie_breaker = ScheduleDriver(())
    log = replay(sim, roots, actions, precancelled)
    sim.run()
    assert log == ref_log
    assert sim.executed == reference.executed
    assert sim.skipped_cancelled == reference.skipped_cancelled
    # Every consulted choice point recorded the FIFO pick.
    assert all(d == 0 for d in sim.tie_breaker.decisions)
    assert all(a >= 2 for a in sim.tie_breaker.arities)


@pytest.mark.parametrize("seed", SEEDS)
def test_pending_counts_live_entries_only(seed):
    roots, actions, precancelled = build_plan(seed)
    sim = Simulator()
    replay(sim, roots, actions, precancelled)
    assert sim.pending == len(roots) - len(precancelled)


# ---------------------------------------------------------------------------
# Fast-lane ordering: integer yields vs Timeout objects.


def test_int_yields_interleave_exactly_like_timeouts():
    """``yield n`` occupies the same dequeue slot ``yield timeout(n)``
    would, so the two encodings produce identical logs and counters
    (the invariance the golden-trace corpus relies on)."""

    def build(use_int):
        sim = Simulator()
        log = []

        def ticker(tag, period):
            for beat in range(4):
                if use_int:
                    yield period
                else:
                    yield sim.timeout(period)
                log.append((tag, beat, sim.now))

        sim.spawn(ticker("a", 10))
        sim.spawn(ticker("b", 5))
        sim.spawn(ticker("c", 10))  # collides with "a" every beat
        for t in (5, 10, 20, 30):  # Handle callbacks racing the tickers
            sim.schedule(t, log.append, ("handle", t, sim.now))
        sim.run()
        return log, sim.executed + sim.skipped_cancelled

    int_log, int_dequeues = build(use_int=True)
    obj_log, obj_dequeues = build(use_int=False)
    assert int_log == obj_log
    assert int_dequeues == obj_dequeues


def test_fast_lane_resume_is_fifo_within_a_timestamp():
    sim = Simulator()
    log = []

    def sleeper(tag):
        yield 7
        log.append(tag)

    for tag in "abcd":
        sim.spawn(sleeper(tag))
    sim.run()
    assert log == list("abcd")


# ---------------------------------------------------------------------------
# Cancellation edge cases: the skipped_cancelled counter contract.


class TestCancellationEdgeCases:
    def test_cancel_at_current_timestamp(self):
        """A callback cancels a sibling in the same bucket, mid-drain."""
        sim = Simulator()
        log = []
        handles = {}

        def first():
            log.append("first")
            handles["second"].cancel()

        sim.schedule(5, first)
        handles["second"] = sim.schedule(5, log.append, "second")
        sim.run()
        assert log == ["first"]
        assert sim.executed == 1
        assert sim.skipped_cancelled == 1

    def test_cancel_loser_of_simultaneous_race_only_counts_once(self):
        """The hybrid wake-up pattern: two timers at the same instant,
        whichever fires first cancels the other."""
        sim = Simulator()
        log = []
        handles = {}

        def fire(tag, other):
            log.append(tag)
            handles[other].cancel()

        handles["wake"] = sim.schedule(40, fire, "wake", "abort")
        handles["abort"] = sim.schedule(40, fire, "abort", "wake")
        sim.run()
        assert log == ["wake"]  # schedule order decides the race
        assert sim.executed == 1
        assert sim.skipped_cancelled == 1

    def test_double_cancel_counts_one_skip(self):
        sim = Simulator()
        handle = sim.schedule(5, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()
        assert sim.skipped_cancelled == 1
        assert sim.executed == 0

    def test_cancel_after_fire_is_inert(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(5, log.append, "x")
        sim.run()
        handle.cancel()  # too late: already dequeued and executed
        sim.schedule(1, log.append, "y")
        sim.run()
        assert log == ["x", "y"]
        assert sim.executed == 2
        assert sim.skipped_cancelled == 0

    def test_cancelled_skip_does_not_advance_clock(self):
        sim = Simulator()
        sim.schedule(100, lambda: None).cancel()
        sim.run()
        assert sim.now == 0
        assert sim.skipped_cancelled == 1

    def test_cancelled_singleton_beyond_until_is_drained(self):
        """Legacy heap behaviour: cancelled entries at the queue head
        are dequeued (and counted) even past the horizon."""
        sim = Simulator()
        sim.schedule(10, lambda: None).cancel()
        sim.run(until=5)
        assert sim.skipped_cancelled == 1
        assert sim.now == 5
        assert sim.pending == 0

    def test_cancelled_list_head_beyond_until_is_drained(self):
        sim = Simulator()
        log = []
        a = sim.schedule(10, log.append, "a")
        b = sim.schedule(10, log.append, "b")
        sim.schedule(10, log.append, "c")
        a.cancel()
        b.cancel()
        sim.run(until=5)
        # The two cancelled heads are consumed; the live "c" is not.
        assert sim.skipped_cancelled == 2
        assert log == []
        assert sim.now == 5
        assert sim.pending == 1
        sim.run()
        assert log == ["c"]
        assert sim.now == 10

    def test_step_skips_cancelled_then_executes_next(self):
        sim = Simulator()
        log = []
        sim.schedule(5, log.append, "dead").cancel()
        sim.schedule(5, log.append, "live")
        assert sim.step() is True  # one execution, skip folded in
        assert log == ["live"]
        assert sim.skipped_cancelled == 1
        assert sim.step() is False

    def test_legacy_three_arg_trace_never_sees_cancelled_skips(self):
        calls = []
        sim = Simulator(trace=lambda now, fn, args: calls.append(fn))
        sim.schedule(5, lambda: None).cancel()
        sim.schedule(6, lambda: None)
        sim.run()
        assert len(calls) == 1
        assert sim.skipped_cancelled == 1

    def test_counters_invariant_across_run_until_boundaries(self):
        """Splitting a run at horizons never changes the totals."""

        def schedule_all(sim):
            handles = [sim.schedule(t, lambda: None) for t in (3, 6, 9, 12)]
            handles[1].cancel()
            handles[3].cancel()

        whole = Simulator()
        schedule_all(whole)
        whole.run()

        split = Simulator()
        schedule_all(split)
        for horizon in (4, 8, 20):
            split.run(until=horizon)
        assert split.executed == whole.executed == 2
        assert split.skipped_cancelled == whole.skipped_cancelled == 2
