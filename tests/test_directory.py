"""Unit tests for directory state transitions (repro.coherence.directory)."""

import pytest

from repro.coherence.directory import Directory, DirState
from repro.errors import ProtocolError
from repro.sim import Simulator


def fresh_directory():
    return Directory(Simulator(), node_id=0)


class TestEntryTransitions:
    def test_entries_start_uncached(self):
        directory = fresh_directory()
        entry = directory.entry(0x10)
        assert entry.state is DirState.UNCACHED
        assert entry.sharers == set()
        assert entry.owner is None

    def test_grant_shared_accumulates_sharers(self):
        directory = fresh_directory()
        directory.grant_shared(0x10, 1)
        directory.grant_shared(0x10, 2)
        entry = directory.entry(0x10)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1, 2}

    def test_grant_shared_while_exclusive_rejected(self):
        directory = fresh_directory()
        directory.grant_exclusive(0x10, 1)
        with pytest.raises(ProtocolError):
            directory.grant_shared(0x10, 2)

    def test_grant_exclusive_with_foreign_sharers_rejected(self):
        directory = fresh_directory()
        directory.grant_shared(0x10, 1)
        with pytest.raises(ProtocolError):
            directory.grant_exclusive(0x10, 2)

    def test_grant_exclusive_to_sole_sharer_allowed(self):
        directory = fresh_directory()
        directory.grant_shared(0x10, 2)
        directory.grant_exclusive(0x10, 2)
        entry = directory.entry(0x10)
        assert entry.state is DirState.EXCLUSIVE
        assert entry.owner == 2
        assert entry.sharers == set()

    def test_demote_owner(self):
        directory = fresh_directory()
        directory.grant_exclusive(0x10, 3)
        owner = directory.demote_owner(0x10)
        assert owner == 3
        entry = directory.entry(0x10)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {3}

    def test_demote_non_exclusive_rejected(self):
        directory = fresh_directory()
        with pytest.raises(ProtocolError):
            directory.demote_owner(0x10)

    def test_drop_last_sharer_returns_to_uncached(self):
        directory = fresh_directory()
        directory.grant_shared(0x10, 1)
        directory.drop_sharer(0x10, 1)
        assert directory.entry(0x10).state is DirState.UNCACHED

    def test_drop_unknown_sharer_is_noop(self):
        directory = fresh_directory()
        directory.grant_shared(0x10, 1)
        directory.drop_sharer(0x10, 9)
        assert directory.entry(0x10).sharers == {1}

    def test_release_exclusive_by_owner(self):
        directory = fresh_directory()
        directory.grant_exclusive(0x10, 1)
        assert directory.release_exclusive(0x10, 1) is True
        assert directory.entry(0x10).state is DirState.UNCACHED

    def test_stale_release_ignored(self):
        # A write-back racing a later grant: the line moved on, DASH
        # would NAK; we drop it.
        directory = fresh_directory()
        directory.grant_exclusive(0x10, 1)
        directory.release_exclusive(0x10, 1)
        directory.grant_exclusive(0x10, 2)
        assert directory.release_exclusive(0x10, 1) is False
        assert directory.entry(0x10).owner == 2

    def test_repr_mentions_state(self):
        directory = fresh_directory()
        directory.grant_exclusive(0x10, 1)
        assert "owner=1" in repr(directory.entry(0x10))
        directory2 = fresh_directory()
        directory2.grant_shared(0x20, 3)
        assert "sharers=[3]" in repr(directory2.entry(0x20))


class TestLockRegistry:
    def test_same_lock_object_per_line(self):
        directory = fresh_directory()
        assert directory.lock(0x10) is directory.lock(0x10)
        assert directory.lock(0x10) is not directory.lock(0x20)
