"""Property-based tests of barrier semantics and energy conservation.

For arbitrary (small) schedules:

* no thread departs a barrier instance before the last arrival
  (synchronization correctness), for every barrier variant;
* thrifty and conventional barriers release the same number of
  instances (no lost wake-ups, no double releases);
* per-CPU accounted time never exceeds the execution time, and the
  energy of each category is consistent with its time and power bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.accounting import Category
from repro.sync import ConventionalBarrier, ThriftyBarrier

from tests.conftest import make_domain, make_system, run_phases

N_THREADS = 4

schedules_strategy = st.integers(2, 5).flatmap(
    lambda n_phases: st.lists(
        st.lists(
            st.integers(1_000, 2_000_000),
            min_size=n_phases, max_size=n_phases,
        ),
        min_size=N_THREADS, max_size=N_THREADS,
    )
)


def run_variant(variant, schedules):
    system = make_system(n_nodes=N_THREADS)
    domain = make_domain(system, N_THREADS)
    barrier = variant(system, domain, N_THREADS, pc="prop")
    trace = run_phases(system, barrier, schedules)
    return system, barrier, trace


class TestBarrierSemantics:
    @given(schedules_strategy)
    @settings(max_examples=25, deadline=None)
    def test_no_departure_before_last_arrival_conventional(self, schedules):
        _system, _barrier, trace = run_variant(
            ConventionalBarrier, schedules
        )
        for record in trace.released_instances():
            last_arrival = max(record.arrivals.values())
            assert all(
                departure >= last_arrival
                for departure in record.departures.values()
            )

    @given(schedules_strategy)
    @settings(max_examples=25, deadline=None)
    def test_no_departure_before_last_arrival_thrifty(self, schedules):
        _system, _barrier, trace = run_variant(ThriftyBarrier, schedules)
        for record in trace.released_instances():
            last_arrival = max(record.arrivals.values())
            assert all(
                departure >= last_arrival
                for departure in record.departures.values()
            )

    @given(schedules_strategy)
    @settings(max_examples=25, deadline=None)
    def test_all_instances_release_under_thrifty(self, schedules):
        _system, _barrier, trace = run_variant(ThriftyBarrier, schedules)
        assert len(trace.released_instances()) == len(schedules[0])
        for record in trace.released_instances():
            assert set(record.arrivals) == set(range(N_THREADS))
            assert set(record.departures) == set(range(N_THREADS))

    @given(
        st.integers(2, 5).flatmap(
            lambda n_phases: st.lists(
                st.lists(
                    # Paper-scale phases: barrier intervals comfortably
                    # above the sleep-transition scale. Below that the
                    # conditional-sleep decision is marginal and the
                    # exposed transitions legitimately dominate (see
                    # test_marginal_sleep_at_micro_scale).
                    st.integers(100_000, 2_000_000),
                    min_size=n_phases, max_size=n_phases,
                ),
                min_size=N_THREADS, max_size=N_THREADS,
            )
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_thrifty_bounded_cost_at_paper_scale(self, schedules):
        base_system, _b, _t = run_variant(ConventionalBarrier, schedules)
        thrifty_system, _b2, _t2 = run_variant(ThriftyBarrier, schedules)
        # Hybrid wake-up bounds lateness per instance by one exit
        # transition; across a whole run the slowdown stays small.
        assert thrifty_system.execution_time_ns <= (
            1.25 * base_system.execution_time_ns + 200_000
        )
        # The absolute epsilon covers the fixed per-arrival overheads
        # (prediction code, BIT read).
        assert (
            thrifty_system.total_account().energy_joules()
            <= 1.05 * base_system.total_account().energy_joules() + 1e-4
        )

    def test_marginal_sleep_at_micro_scale(self):
        # Hypothesis-found adversarial case, kept as a regression pin:
        # a ~21 us stall marginally clears Halt's 20 us round trip, so
        # the thread sleeps and the exposed exit transition dominates a
        # ~25 us run. Correctness holds and the costs stay bounded —
        # this is the known-by-design behaviour the conditional-sleep
        # margin trades away at microsecond granularity.
        schedules = [[1000, 1000], [1000, 1000], [1000, 1000],
                     [21258, 1000]]
        base_system, _b, base_trace = run_variant(
            ConventionalBarrier, schedules
        )
        thrifty_system, _b2, thrifty_trace = run_variant(
            ThriftyBarrier, schedules
        )
        assert len(thrifty_trace.released_instances()) == 2
        assert thrifty_system.execution_time_ns < (
            2 * base_system.execution_time_ns
        )
        assert thrifty_system.total_account().energy_joules() < (
            1.3 * base_system.total_account().energy_joules()
        )


class TestEnergyConservation:
    @given(schedules_strategy)
    @settings(max_examples=20, deadline=None)
    def test_cpu_time_bounded_by_execution_time(self, schedules):
        system, _barrier, _trace = run_variant(ThriftyBarrier, schedules)
        for account in system.cpu_accounts()[:N_THREADS]:
            assert account.time_ns() <= system.execution_time_ns

    @given(schedules_strategy)
    @settings(max_examples=20, deadline=None)
    def test_energy_consistent_with_power_bounds(self, schedules):
        system, _barrier, _trace = run_variant(ThriftyBarrier, schedules)
        power = system.power
        for account in system.cpu_accounts()[:N_THREADS]:
            for category in Category:
                joules = account.energy_joules(category)
                seconds = account.time_ns(category) * 1e-9
                assert joules >= 0
                # Nothing draws more than compute power.
                assert joules <= power.compute_watts * seconds * (1 + 1e-9)

    @given(schedules_strategy)
    @settings(max_examples=20, deadline=None)
    def test_sleep_cheaper_than_spin_everywhere(self, schedules):
        system, _barrier, _trace = run_variant(ThriftyBarrier, schedules)
        power = system.power
        deepest_sleep_watts = min(
            power.sleep_watts(state)
            for state in
            __import__("repro.config", fromlist=["x"]).DEFAULT_SLEEP_STATES
        )
        for account in system.cpu_accounts()[:N_THREADS]:
            sleep_seconds = account.time_ns(Category.SLEEP) * 1e-9
            joules = account.energy_joules(Category.SLEEP)
            assert joules <= power.spin_watts * sleep_seconds + 1e-12
            assert joules >= deepest_sleep_watts * sleep_seconds - 1e-12
