"""Unit tests for generator processes (repro.sim.process)."""

import pytest

from repro.errors import ProcessError
from repro.sim import AnyOf, Simulator


def test_process_advances_through_timeouts():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield sim.timeout(10)
        trace.append(sim.now)
        yield sim.timeout(5)
        trace.append(sim.now)

    sim.spawn(worker())
    sim.run()
    assert trace == [0, 10, 15]


def test_spawn_does_not_run_body_immediately():
    sim = Simulator()
    trace = []

    def worker():
        trace.append("ran")
        yield sim.timeout(1)

    sim.spawn(worker())
    assert trace == []  # body starts only once the loop runs
    sim.run()
    assert trace == ["ran"]


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(2)
        return "result"

    proc = sim.spawn(worker())
    sim.run()
    assert proc.value == "result"


def test_yield_from_subroutine_returns_value():
    sim = Simulator()

    def sub():
        yield sim.timeout(3)
        return 7

    def main(out):
        got = yield from sub()
        out.append((sim.now, got))

    out = []
    sim.spawn(main(out))
    sim.run()
    assert out == [(3, 7)]


def test_process_waits_on_another_process():
    sim = Simulator()
    order = []

    def child():
        yield sim.timeout(8)
        order.append("child")
        return "payload"

    def parent(child_proc):
        value = yield child_proc
        order.append(("parent", value, sim.now))

    child_proc = sim.spawn(child())
    sim.spawn(parent(child_proc))
    sim.run()
    assert order == ["child", ("parent", "payload", 8)]


def test_timeout_value_is_sent_into_generator():
    sim = Simulator()
    received = []

    def worker():
        got = yield sim.timeout(1, value="tick")
        received.append(got)

    sim.spawn(worker())
    sim.run()
    assert received == ["tick"]


def test_process_exception_recorded_on_event():
    sim = Simulator()

    def worker():
        yield sim.timeout(1)
        raise ValueError("inside")

    proc = sim.spawn(worker())
    sim.run()
    assert proc.triggered and not proc.ok
    with pytest.raises(ValueError):
        _ = proc.value


def test_failed_event_raises_inside_waiter():
    sim = Simulator()
    caught = []

    def worker(event):
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    event = sim.event()
    sim.spawn(worker(event))
    sim.schedule(4, event.fail, RuntimeError("injected"))
    sim.run()
    assert caught == ["injected"]


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def worker():
        yield "not an event"

    proc = sim.spawn(worker())
    sim.run()
    assert not proc.ok
    with pytest.raises(ProcessError):
        _ = proc.value


def test_yielding_int_waits_that_many_ns():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        got = yield 10
        trace.append((sim.now, got))
        yield 0  # zero-delay resume stays at the current time
        trace.append(sim.now)

    sim.spawn(worker())
    sim.run()
    # Integer delays resume with None, mirroring a value-less Timeout.
    assert trace == [0, (10, None), 10]


def test_int_and_timeout_yields_interleave_identically():
    sim = Simulator()
    order = []

    def via_int(tag):
        yield 5
        order.append(tag)

    def via_timeout(tag):
        yield sim.timeout(5)
        order.append(tag)

    sim.spawn(via_int("a"))
    sim.spawn(via_timeout("b"))
    sim.spawn(via_int("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_yielding_negative_int_fails_process():
    sim = Simulator()

    def worker():
        yield -1

    proc = sim.spawn(worker())
    sim.run()
    assert not proc.ok
    with pytest.raises(ProcessError):
        _ = proc.value


def test_yielding_bool_fails_process():
    # bool is an int subclass, but only exact ints take the delay fast
    # path; anything else must hit the invalid-yield error.
    sim = Simulator()

    def worker():
        yield True

    proc = sim.spawn(worker())
    sim.run()
    assert not proc.ok
    with pytest.raises(ProcessError):
        _ = proc.value


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(ProcessError):
        sim.spawn(lambda: None)


def test_process_racing_anyof_sees_winner():
    sim = Simulator()
    outcomes = []

    def sleeper(timer_ns, external):
        timer = sim.timeout(timer_ns)
        winner = yield AnyOf(sim, [timer, external])
        outcomes.append("timer" if winner is timer else "external")

    external = sim.event()
    sim.spawn(sleeper(100, external))
    sim.schedule(40, external.succeed)
    sim.run()
    assert outcomes == ["external"]


def test_many_interleaved_processes_deterministic():
    sim = Simulator()
    log = []

    def worker(ident, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, ident))

    for ident, period in enumerate((7, 5, 7)):
        sim.spawn(worker(ident, period))
    sim.run()
    assert log == sorted(log, key=lambda item: item[0])
    # Same-time events keep spawn order: workers 0 and 2 share period 7.
    sevens = [ident for now, ident in log if now == 7]
    assert sevens == [0, 2]
