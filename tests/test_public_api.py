"""Public-API consistency checks."""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.sim",
    "repro.energy",
    "repro.interconnect",
    "repro.coherence",
    "repro.machine",
    "repro.predict",
    "repro.sync",
    "repro.mp",
    "repro.workloads",
    "repro.workloads.kernels",
    "repro.experiments",
    "repro.telemetry",
    "repro.faults",
)


def test_lazy_top_level_attributes():
    assert callable(repro.run_experiment)
    assert callable(repro.run_matrix)
    assert repro.MachineConfig().n_nodes == 64
    assert "baseline" in repro.CONFIG_NAMES


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        _ = repro.definitely_not_a_thing


def test_dir_lists_public_names():
    names = dir(repro)
    assert "run_experiment" in names
    assert "__version__" in names


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), "{}.{} missing".format(
            module_name, name
        )


def test_version_is_semver_ish():
    major, minor, patch = repro.__version__.split(".")
    assert major.isdigit() and minor.isdigit() and patch.isdigit()


def test_sim_determinism_across_identical_runs():
    from repro.experiments.runner import run_experiment

    first = run_experiment("radiosity", "thrifty", threads=8, seed=5)
    second = run_experiment("radiosity", "thrifty", threads=8, seed=5)
    assert first.execution_time_ns == second.execution_time_ns
    assert first.energy_joules == pytest.approx(second.energy_joules)
    assert first.thrifty_stats == second.thrifty_stats
