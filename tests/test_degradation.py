"""Graceful degradation: disable → fallback → probation → re-enable."""

from repro.config import MachineConfig, ThriftyConfig
from repro.machine import System
from repro.predict import LastValuePredictor
from repro.sync import ThriftyBarrier
from repro.telemetry.events import PredictorReenable
from repro.telemetry.tracer import Tracer

from tests.conftest import make_domain, run_phases

# Ocean-style swinging intervals (from test_thrifty.py): the last-value
# prediction is wrong every other instance, so the overprediction
# cut-off deterministically trips.
SWING = [
    [3_000_000 if i % 2 == 0 else 20_000 for i in range(8)]
    for _ in range(3)
] + [
    [3_000_000 + 600_000 if i % 2 == 0 else 100_000 for i in range(8)]
]


class TestPredictorProbation:
    def test_lifecycle(self):
        predictor = LastValuePredictor()
        predictor.disable("b0", thread_id=2)
        assert predictor.is_disabled("b0", 2)
        # Two safe episodes at probation 3 are not enough...
        assert not predictor.note_safe_episode("b0", 2, 3)
        assert not predictor.note_safe_episode("b0", 2, 3)
        assert predictor.is_disabled("b0", 2)
        # ...the third re-enables and reports it.
        assert predictor.note_safe_episode("b0", 2, 3)
        assert not predictor.is_disabled("b0", 2)
        assert predictor.stats.disables == 1
        assert predictor.stats.reenables == 1

    def test_zero_probation_keeps_paper_policy(self):
        predictor = LastValuePredictor()
        predictor.disable("b0", thread_id=2)
        for _ in range(10):
            assert not predictor.note_safe_episode("b0", 2, 0)
        assert predictor.is_disabled("b0", 2)
        assert predictor.stats.reenables == 0

    def test_safe_episodes_ignored_when_not_disabled(self):
        predictor = LastValuePredictor()
        assert not predictor.note_safe_episode("b0", 2, 1)
        assert predictor.stats.reenables == 0

    def test_redisable_restarts_probation(self):
        predictor = LastValuePredictor()
        predictor.disable("b0", thread_id=2)
        assert not predictor.note_safe_episode("b0", 2, 2)
        # A fresh disable of an already-disabled pair is idempotent and
        # keeps the accumulated credit (membership is the bit).
        predictor.disable("b0", thread_id=2)
        assert predictor.stats.disables == 1
        assert predictor.note_safe_episode("b0", 2, 2)

    def test_threads_are_independent(self):
        predictor = LastValuePredictor()
        predictor.disable("b0", 1)
        predictor.disable("b0", 2)
        assert predictor.note_safe_episode("b0", 1, 1)
        assert predictor.is_disabled("b0", 2)
        assert predictor.disabled_threads("b0") == frozenset({2})


def build_thrifty(config, telemetry=None):
    system = System(
        MachineConfig(n_nodes=4, detailed_memory=True), telemetry=telemetry
    )
    domain = make_domain(system, 4)
    barrier = ThriftyBarrier(system, domain, 4, pc="b0", config=config)
    return system, domain, barrier


class TestBarrierDegradation:
    def test_disabled_thread_uses_spin_then_sleep_fallback(self):
        config = ThriftyConfig(fallback_spin_then_sleep=True)
        system, _, barrier = build_thrifty(config)
        trace = run_phases(system, barrier, SWING)
        assert barrier.stats.cutoff_disables > 0
        assert barrier.stats.fallback_sleeps > 0
        # The fallback replaces pure disabled spinning entirely.
        assert barrier.stats.disabled_spins == 0
        assert len(trace.released_instances()) == 8

    def test_without_fallback_disabled_threads_spin(self):
        config = ThriftyConfig(fallback_spin_then_sleep=False)
        system, _, barrier = build_thrifty(config)
        run_phases(system, barrier, SWING)
        assert barrier.stats.cutoff_disables > 0
        assert barrier.stats.disabled_spins > 0
        assert barrier.stats.fallback_sleeps == 0

    def test_probation_reenables_after_safe_episodes(self):
        tracer = Tracer()
        config = ThriftyConfig(
            fallback_spin_then_sleep=True, probation_episodes=2
        )
        system, domain, barrier = build_thrifty(config, telemetry=tracer)
        trace = run_phases(system, barrier, SWING)
        assert barrier.stats.probation_reenables > 0
        assert domain.predictor.stats.reenables == (
            barrier.stats.probation_reenables
        )
        # The re-enable is visible in the telemetry stream.
        reenables = [
            event for event in tracer.events
            if isinstance(event, PredictorReenable)
        ]
        assert len(reenables) == barrier.stats.probation_reenables
        assert all(event.pc == "b0" for event in reenables)
        assert len(trace.released_instances()) == 8

    def test_no_probation_never_reenables(self):
        config = ThriftyConfig(fallback_spin_then_sleep=True)
        system, domain, barrier = build_thrifty(config)
        run_phases(system, barrier, SWING)
        assert barrier.stats.probation_reenables == 0
        assert domain.predictor.stats.reenables == 0

    def test_degradation_defaults_off_stats_unchanged(self):
        # The default configuration must behave exactly as before this
        # subsystem existed: no fallback sleeps, no re-enables.
        system, _, barrier = build_thrifty(ThriftyConfig())
        run_phases(system, barrier, SWING)
        assert barrier.stats.fallback_sleeps == 0
        assert barrier.stats.probation_reenables == 0
        assert barrier.stats.disabled_spins > 0
