"""Unit tests for the cache controller's thrifty extensions."""

import pytest

from repro.coherence import CacheController, MemorySystem
from repro.config import MachineConfig
from repro.errors import ProtocolError
from repro.sim import Simulator


def build_controller():
    sim = Simulator()
    memsys = MemorySystem(sim, MachineConfig(n_nodes=2))
    controller = CacheController(sim, 0, memsys)
    memsys.controllers[0] = controller
    return sim, memsys, controller


class TestFlagMonitor:
    def test_arm_returns_line_key(self):
        _sim, memsys, controller = build_controller()
        key = controller.arm_flag_monitor(0x1040, lambda line: None)
        assert key == memsys.line_of(0x1040)
        assert controller.monitors_line(key)

    def test_notify_pops_and_calls_all(self):
        _sim, _memsys, controller = build_controller()
        fired = []
        controller.arm_flag_monitor(0x100, lambda line: fired.append("a"))
        controller.arm_flag_monitor(0x100, lambda line: fired.append("b"))
        controller.notify_invalidation(controller.memsys.line_of(0x100))
        assert fired == ["a", "b"]
        assert not controller.monitors_line(
            controller.memsys.line_of(0x100)
        )

    def test_notify_unmonitored_line_is_silent(self):
        _sim, _memsys, controller = build_controller()
        controller.notify_invalidation(0x999)
        assert controller.stats_monitor_fires == 0

    def test_disarm_specific_callback(self):
        _sim, _memsys, controller = build_controller()
        fired = []
        keep = lambda line: fired.append("keep")   # noqa: E731
        drop = lambda line: fired.append("drop")   # noqa: E731
        key = controller.arm_flag_monitor(0x100, keep)
        controller.arm_flag_monitor(0x100, drop)
        controller.disarm_flag_monitor(key, drop)
        controller.notify_invalidation(key)
        assert fired == ["keep"]

    def test_disarm_after_fire_is_safe(self):
        _sim, _memsys, controller = build_controller()
        callback = lambda line: None  # noqa: E731
        key = controller.arm_flag_monitor(0x100, callback)
        controller.notify_invalidation(key)
        controller.disarm_flag_monitor(key, callback)  # no exception

    def test_fire_counter(self):
        _sim, _memsys, controller = build_controller()
        key = controller.arm_flag_monitor(0x100, lambda line: None)
        controller.notify_invalidation(key)
        assert controller.stats_monitor_fires == 1


class TestWakeTimer:
    def test_timer_fires_after_delay(self):
        sim, _memsys, controller = build_controller()
        fired = []
        controller.arm_wake_timer(500, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [500]

    def test_timer_cancellable(self):
        sim, _memsys, controller = build_controller()
        fired = []
        handle = controller.arm_wake_timer(500, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        _sim, _memsys, controller = build_controller()
        with pytest.raises(ProtocolError):
            controller.arm_wake_timer(-1, lambda: None)


class TestSnoopState:
    def test_snooping_toggles(self):
        _sim, _memsys, controller = build_controller()
        assert controller.snooping
        controller.set_snooping(False)
        assert not controller.snooping
        controller.set_snooping(True)
        assert controller.snooping

    def test_monitor_fires_even_while_not_snooping(self):
        # The controller is never disabled (paper Section 3.3.1): it
        # acknowledges invalidations to clean data and raises wake-ups
        # while the CPU and caches sleep.
        _sim, _memsys, controller = build_controller()
        controller.set_snooping(False)
        fired = []
        key = controller.arm_flag_monitor(0x100, lambda line: fired.append(1))
        controller.notify_invalidation(key)
        assert fired == [1]
