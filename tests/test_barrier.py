"""Tests for the conventional sense-reversal barrier (Baseline)."""

import pytest

from repro.energy.accounting import Category
from repro.errors import SimulationError
from repro.sync import ConventionalBarrier

from tests.conftest import (
    make_domain,
    make_system,
    run_phases,
    staggered_schedules,
)


def build(n_nodes=4, n_threads=None):
    system = make_system(n_nodes=n_nodes)
    n_threads = n_threads or n_nodes
    domain = make_domain(system, n_threads)
    barrier = ConventionalBarrier(system, domain, n_threads, pc="b0")
    return system, domain, barrier


class TestSemantics:
    def test_no_thread_departs_before_last_arrival(self):
        system, _, barrier = build()
        trace = run_phases(
            system, barrier,
            staggered_schedules(4, 1, base_ns=10_000, step_ns=20_000),
        )
        record = trace.instances[0]
        last_arrival = max(record.arrivals.values())
        assert all(
            departure >= last_arrival
            for departure in record.departures.values()
        )

    def test_all_threads_arrive_and_depart(self):
        system, _, barrier = build()
        trace = run_phases(
            system, barrier, staggered_schedules(4, 3, 5_000, 1_000)
        )
        assert len(trace.instances) == 3
        for record in trace.instances:
            assert set(record.arrivals) == {0, 1, 2, 3}
            assert set(record.departures) == {0, 1, 2, 3}

    def test_sense_reversal_over_many_instances(self):
        # Reusing the same flag word across instances is the whole point
        # of sense reversal; 5 instances would deadlock if broken.
        system, _, barrier = build()
        trace = run_phases(
            system, barrier, staggered_schedules(4, 5, 2_000, 500)
        )
        assert len(trace.released_instances()) == 5

    def test_last_thread_is_slowest(self):
        system, _, barrier = build()
        trace = run_phases(system, barrier, staggered_schedules(4, 1, 0, 50_000))
        assert trace.instances[0].last_thread == 3

    def test_single_thread_barrier_is_transparent(self):
        system, domain, _ = build()
        barrier = ConventionalBarrier(system, domain, 1, pc="solo")

        def program(node):
            yield from node.cpu.compute(1_000)
            yield from barrier.wait(node)

        system.run_threads(program, n_threads=1)
        record = barrier.trace.instances[0]
        # Only the check-in overhead, no waiting on anyone.
        assert record.stall_ns(0) < 1_000

    def test_invalid_thread_count_rejected(self):
        system = make_system()
        domain = make_domain(system)
        with pytest.raises(SimulationError):
            ConventionalBarrier(system, domain, 99, pc="bad")


class TestTiming:
    def test_stall_matches_arrival_spread(self):
        system, _, barrier = build()
        trace = run_phases(
            system, barrier,
            staggered_schedules(4, 1, base_ns=0, step_ns=100_000),
        )
        record = trace.instances[0]
        # Thread 0 arrives ~300 us before thread 3.
        assert record.stall_ns(0) == pytest.approx(300_000, rel=0.05)
        assert record.stall_ns(3) < 20_000

    def test_release_time_at_last_arrival(self):
        system, _, barrier = build()
        trace = run_phases(system, barrier, staggered_schedules(4, 1, 0, 50_000))
        record = trace.instances[0]
        assert record.release_ts >= max(record.arrivals.values())
        # Check-in overhead is small compared to any real stall.
        assert record.release_ts - max(record.arrivals.values()) < 20_000

    def test_measured_bit_spans_interval(self):
        system, _, barrier = build()
        trace = run_phases(system, barrier, staggered_schedules(4, 2, 100_000, 10_000))
        second = trace.instances[1]
        # Interval two: 130 us compute for the last thread + overheads.
        assert second.measured_bit == pytest.approx(130_000, rel=0.2)

    def test_bit_published_to_shared_variable(self):
        system, domain, barrier = build()
        run_phases(system, barrier, staggered_schedules(4, 2, 10_000, 1_000))
        published = system.memsys.peek(domain.bit_addr)
        assert published == barrier.trace.instances[-1].measured_bit

    def test_brts_consistent_across_threads(self):
        system, domain, barrier = build()
        run_phases(system, barrier, staggered_schedules(4, 3, 50_000, 5_000))
        timestamps = [domain.brts(t) for t in range(4)]
        # All threads observed the same release within the detection lag.
        assert max(timestamps) - min(timestamps) < 5_000


class TestEnergyAccounting:
    def test_early_threads_charge_spin(self):
        system, _, barrier = build()
        run_phases(system, barrier, staggered_schedules(4, 1, 0, 100_000))
        spin0 = system.nodes[0].cpu.account.time_ns(Category.SPIN)
        spin3 = system.nodes[3].cpu.account.time_ns(Category.SPIN)
        assert spin0 > 250_000
        assert spin3 < 30_000

    def test_no_sleep_or_transition_in_conventional(self):
        system, _, barrier = build()
        run_phases(system, barrier, staggered_schedules(4, 2, 10_000, 20_000))
        total = system.total_account()
        assert total.time_ns(Category.SLEEP) == 0
        assert total.time_ns(Category.TRANSITION) == 0

    def test_spin_energy_at_85_percent_power(self):
        system, _, barrier = build()
        run_phases(system, barrier, staggered_schedules(4, 1, 0, 100_000))
        account = system.nodes[0].cpu.account
        spin_ns = account.time_ns(Category.SPIN)
        assert account.energy_joules(Category.SPIN) == pytest.approx(
            system.power.spin_watts * spin_ns * 1e-9
        )


class TestCoherenceInteraction:
    def test_flag_write_invalidates_all_spinners(self):
        system, _, barrier = build()
        invs_before = system.memsys.stats.invalidations
        run_phases(system, barrier, staggered_schedules(4, 1, 0, 100_000))
        # Three spinners held shared copies of the flag line.
        assert system.memsys.stats.invalidations - invs_before >= 3

    def test_spinners_wait_without_busy_events(self):
        # The spin loop must block on the monitor, not poll: event count
        # stays far below what per-iteration spinning would generate.
        system, _, barrier = build()
        counter = {"events": 0}
        original_step = system.sim.step

        def counting_step():
            counter["events"] += 1
            return original_step()

        system.sim.step = counting_step
        run_phases(system, barrier, staggered_schedules(4, 1, 0, 1_000_000))
        # 3 ms of spinning at 1 GHz would be millions of iterations.
        assert counter["events"] < 3_000
