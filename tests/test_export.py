"""Tests for JSON/CSV export and ASCII bar rendering."""

import csv
import json

import pytest

from repro.errors import ConfigError
from repro.experiments import figures, report
from repro.experiments.export import (
    matrix_to_json,
    matrix_to_records,
    records_to_csv,
)
from repro.experiments.runner import run_app

THREADS = 16


@pytest.fixture(scope="module")
def matrix():
    return {"fmm": run_app("fmm", threads=THREADS)}


class TestRecords:
    def test_one_record_per_cell(self, matrix):
        records = matrix_to_records(matrix)
        assert len(records) == 5
        assert {r["config"] for r in records} == {
            "baseline", "thrifty-halt", "oracle-halt", "thrifty", "ideal",
        }

    def test_record_fields(self, matrix):
        records = matrix_to_records(matrix)
        for record in records:
            assert record["app"] == "fmm"
            assert record["threads"] == THREADS
            assert record["execution_time_ns"] > 0
            assert record["energy_joules"] > 0
            assert 0 < record["normalized_energy_pct"] <= 101
            for segment in ("compute", "spin", "transition", "sleep"):
                assert "energy_{}_pct".format(segment) in record

    def test_baseline_normalizes_to_100(self, matrix):
        records = matrix_to_records(matrix)
        baseline = next(r for r in records if r["config"] == "baseline")
        assert baseline["normalized_energy_pct"] == pytest.approx(100.0)
        assert baseline["normalized_time_pct"] == pytest.approx(100.0)

    def test_thrifty_stats_included(self, matrix):
        records = matrix_to_records(matrix)
        thrifty = next(r for r in records if r["config"] == "thrifty")
        assert thrifty["thrifty_stats"]["sleeps"] > 0

    def test_missing_baseline_rejected(self, matrix):
        broken = {
            "fmm": {
                k: v for k, v in matrix["fmm"].items() if k != "baseline"
            }
        }
        with pytest.raises(ConfigError):
            matrix_to_records(broken)


class TestJsonCsv:
    def test_json_round_trips(self, matrix, tmp_path):
        path = tmp_path / "matrix.json"
        text = matrix_to_json(matrix, path=path)
        parsed = json.loads(text)
        assert parsed == json.loads(path.read_text())
        assert len(parsed) == 5

    def test_csv_has_scalar_columns_only(self, matrix, tmp_path):
        path = tmp_path / "matrix.csv"
        records = matrix_to_records(matrix)
        columns = records_to_csv(records, path)
        assert "thrifty_stats" not in columns
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5
        assert {row["config"] for row in rows} == {
            "baseline", "thrifty-halt", "oracle-halt", "thrifty", "ideal",
        }

    def test_empty_csv_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            records_to_csv([], tmp_path / "empty.csv")


class TestBarChart:
    def test_bars_scale_with_value(self, matrix):
        rows = figures.figure5_rows(matrix)
        chart = report.render_bar_chart(rows)
        lines = chart.splitlines()
        assert len(lines) == 5
        baseline_line = next(line for line in lines if " B " in line)
        thrifty_line = next(line for line in lines if " T " in line)
        assert baseline_line.count("#") >= thrifty_line.count("#")

    def test_values_printed(self, matrix):
        rows = figures.figure6_rows(matrix)
        chart = report.render_bar_chart(rows, value_key="wall")
        assert "100.0" in chart
