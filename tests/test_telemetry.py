"""Telemetry core: metrics primitives, the tracer, instrumentation.

Covers the three layers of the subsystem contract:

* metric primitives with deterministic snapshot/merge semantics;
* the tracer's guard-flag fast path (a disabled tracer receives zero
  events; emitting into the shared NULL_TRACER raises);
* the instrumentation points — a traced thrifty run emits the expected
  event mix, and the derived metrics agree with the event stream.
"""

import json
import pickle

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import run_experiment
from repro.sim.core import Simulator
from repro.telemetry import (
    NULL_TRACER,
    BarrierCheckIn,
    BarrierDepart,
    BarrierRelease,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PredictorTrain,
    SleepEnter,
    SleepExit,
    TelemetryError,
    Tracer,
    WakeUp,
)

THREADS = 8


@pytest.fixture(scope="module")
def traced_result():
    return run_experiment(
        "fmm", "thrifty", threads=THREADS, seed=1, telemetry=True
    )


class TestCounter:
    def test_starts_at_zero_and_adds(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set(self):
        gauge = Gauge("g")
        gauge.set(42)
        assert gauge.value == 42


class TestHistogram:
    def test_bucket_insertion(self):
        histogram = Histogram("h", bounds=(10, 100, 1000))
        for value in (5, 10, 11, 1001):
            histogram.observe(value)
        # bounds are inclusive upper edges; 10 lands in the first bucket.
        assert histogram.counts == [2, 1, 0, 1]
        assert histogram.count == 4
        assert histogram.sum == 5 + 10 + 11 + 1001
        assert histogram.min == 5
        assert histogram.max == 1001

    def test_mean_and_quantile(self):
        histogram = Histogram("h", bounds=(10, 100, 1000))
        assert histogram.mean() == 0.0
        assert histogram.quantile(0.5) == 0
        for value in (1, 2, 50, 2000):
            histogram.observe(value)
        assert histogram.mean() == pytest.approx(513.25)
        assert histogram.quantile(0.5) == 10  # edge of the covering bucket
        assert histogram.quantile(1.0) == 2000  # overflow returns max

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            Histogram("h", bounds=())
        with pytest.raises(ConfigError):
            Histogram("h", bounds=(10, 10))
        with pytest.raises(ConfigError):
            Histogram("h", bounds=(100, 10))

    def test_rejects_bad_quantile(self):
        with pytest.raises(ConfigError):
            Histogram("h", bounds=(1,)).quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_histogram_redeclare_bounds_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1, 2))
        with pytest.raises(ConfigError):
            registry.histogram("h", bounds=(1, 2, 3))

    def test_snapshot_is_sorted_and_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(2)
        registry.counter("alpha").inc(1)
        registry.gauge("mid").set(7)
        registry.histogram("h", bounds=(10,)).observe(3)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        json.dumps(snapshot)  # plain primitives only

    def test_snapshot_independent_of_creation_order(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a").inc()
        first.counter("b").inc(2)
        second.counter("b").inc(2)
        second.counter("a").inc()
        assert json.dumps(first.snapshot(), sort_keys=True) == json.dumps(
            second.snapshot(), sort_keys=True
        )

    def test_merge_semantics(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(3)
        right.counter("c").inc(4)
        left.gauge("g").set(10)
        right.gauge("g").set(7)
        left.histogram("h", bounds=(10, 100)).observe(5)
        right.histogram("h", bounds=(10, 100)).observe(500)
        left.merge(right)
        assert left.counter("c").value == 7  # counters add
        assert left.gauge("g").value == 10  # gauges keep max
        histogram = left.histogram("h", bounds=(10, 100))
        assert histogram.count == 2
        assert histogram.counts == [1, 0, 1]
        assert histogram.min == 5 and histogram.max == 500

    def test_merge_accepts_snapshot_dict(self):
        source = MetricsRegistry()
        source.counter("c").inc(2)
        target = MetricsRegistry().merge(source.snapshot())
        assert target.counter("c").value == 2

    def test_merge_histogram_bounds_mismatch(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("h", bounds=(1, 2))
        right.histogram("h", bounds=(3, 4))
        with pytest.raises(ConfigError):
            left.merge(right)

    def test_from_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.gauge("g").set(4)
        registry.histogram("h", bounds=(10,)).observe(2)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()


class TestTracer:
    def test_emit_collects_and_records(self):
        tracer = Tracer()
        tracer.emit(BarrierCheckIn(
            ts=10, thread=0, pc="b1", sequence=0, is_last=True
        ))
        assert len(tracer.events) == 1
        assert tracer.metrics.counter("barrier.check_ins").value == 1
        assert tracer.metrics.counter("barrier.last_arrivals").value == 1

    def test_snapshot_freezes(self):
        tracer = Tracer()
        tracer.emit(BarrierCheckIn(
            ts=10, thread=0, pc="b1", sequence=0, is_last=False
        ))
        snapshot = tracer.snapshot()
        assert isinstance(snapshot.events, tuple)
        tracer.emit(BarrierCheckIn(
            ts=20, thread=1, pc="b1", sequence=0, is_last=True
        ))
        assert len(snapshot.events) == 1  # unchanged by later emits

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(BarrierCheckIn(
            ts=10, thread=0, pc="b1", sequence=0, is_last=False
        ))
        tracer.clear()
        assert tracer.events == []
        assert len(tracer.metrics) == 0

    def test_snapshot_registry_rebuilds(self):
        tracer = Tracer()
        tracer.emit(BarrierCheckIn(
            ts=10, thread=0, pc="b1", sequence=0, is_last=False
        ))
        registry = tracer.snapshot().registry()
        assert registry.counter("barrier.check_ins").value == 1

    def test_snapshot_is_picklable(self):
        tracer = Tracer()
        tracer.emit(SleepEnter(ts=5, thread=2, state="Sleep3", flush_lines=7))
        snapshot = tracer.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot

    def test_null_tracer_is_disabled_and_raises(self):
        assert NULL_TRACER.enabled is False
        with pytest.raises(TelemetryError):
            NULL_TRACER.emit(BarrierCheckIn(
                ts=0, thread=0, pc="b1", sequence=0, is_last=False
            ))


class TestDisabledTelemetry:
    def test_untraced_run_has_no_snapshot(self):
        result = run_experiment("fmm", "thrifty", threads=4, seed=1)
        assert result.telemetry is None

    def test_disabled_tracer_sees_zero_events(self):
        tracer = Tracer(enabled=False)
        result = run_experiment(
            "fmm", "thrifty", threads=4, seed=1, telemetry=tracer
        )
        assert tracer.events == []
        assert len(tracer.metrics) == 0
        assert result.telemetry.events == ()
        assert result.telemetry.metrics == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_traced_result_matches_untraced(self, traced_result):
        plain = run_experiment("fmm", "thrifty", threads=THREADS, seed=1)
        assert plain.execution_time_ns == traced_result.execution_time_ns
        assert plain.energy_breakdown() == traced_result.energy_breakdown()
        assert plain.thrifty_stats == traced_result.thrifty_stats


class TestInstrumentation:
    def test_expected_event_mix(self, traced_result):
        events = traced_result.telemetry.events
        kinds = {event.kind for event in events}
        assert {
            "barrier.check_in", "barrier.release", "barrier.depart",
            "sleep.enter", "sleep.exit", "sleep.wake", "predictor.hit",
            "predictor.train",
        } <= kinds

    def test_metrics_agree_with_event_stream(self, traced_result):
        snapshot = traced_result.telemetry
        counters = snapshot.metrics["counters"]
        by_kind = {}
        for event in snapshot.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        assert counters["barrier.check_ins"] == by_kind["barrier.check_in"]
        assert counters["barrier.releases"] == by_kind["barrier.release"]
        assert counters["barrier.departs"] == by_kind["barrier.depart"]
        assert counters["sleep.entries"] == by_kind["sleep.enter"]
        assert counters["wake.total"] == by_kind["sleep.wake"]
        assert counters["predictor.hits"] == by_kind["predictor.hit"]

    def test_barrier_accounting_is_complete(self, traced_result):
        counters = traced_result.telemetry.metrics["counters"]
        # Every check-in eventually departs; one release and one last
        # arrival per dynamic instance.
        assert counters["barrier.check_ins"] == counters["barrier.departs"]
        assert counters["barrier.releases"] == counters["barrier.last_arrivals"]
        assert counters["barrier.check_ins"] == (
            THREADS * counters["barrier.releases"]
        )

    def test_sleep_spans_pair_up(self, traced_result):
        events = traced_result.telemetry.events
        enters = [e for e in events if isinstance(e, SleepEnter)]
        exits = [e for e in events if isinstance(e, SleepExit)]
        assert enters and len(enters) == len(exits)
        for exit_event in exits:
            assert exit_event.ts >= exit_event.entered_ts
            assert exit_event.resident_ns >= 0

    def test_wake_source_mix_matches_thrifty_stats(self, traced_result):
        counters = traced_result.telemetry.metrics["counters"]
        stats = traced_result.thrifty_stats
        assert counters.get("wake.source[timer]", 0) == stats["timer_wakes"]
        assert counters.get("wake.source[invalidation]", 0) == (
            stats["invalidation_wakes"]
        )

    def test_wake_events_cover_every_sleep(self, traced_result):
        events = traced_result.telemetry.events
        wakes = [e for e in events if isinstance(e, WakeUp)]
        exits = [e for e in events if isinstance(e, SleepExit)]
        assert len(wakes) == len(exits)
        assert {w.source for w in wakes} <= {
            "timer", "invalidation", "aborted",
        }

    def test_predictor_training_feeds_error_histogram(self, traced_result):
        snapshot = traced_result.telemetry
        trains = [
            e for e in snapshot.events if isinstance(e, PredictorTrain)
        ]
        warm = [e for e in trains if e.predicted_ns is not None]
        histogram = snapshot.metrics["histograms"]["predictor.error_ns"]
        assert histogram["count"] == len(warm)

    def test_depart_spans_are_well_formed(self, traced_result):
        for event in traced_result.telemetry.events:
            if isinstance(event, BarrierDepart):
                assert event.ts >= event.arrived_ts
                assert event.stall_ns >= 0

    def test_run_metrics_harvested(self, traced_result):
        snapshot = traced_result.telemetry
        counters = snapshot.metrics["counters"]
        assert counters["sim.callbacks_executed"] > 0
        assert snapshot.metrics["gauges"]["sim.execution_time_ns"] > 0
        assert counters["predictor.table.predictions"] == (
            counters["predictor.hits"]
        )

    def test_derived_config_traces_its_baseline(self):
        result = run_experiment(
            "fmm", "ideal", threads=4, seed=1, telemetry=True
        )
        events = result.telemetry.events
        assert events  # the Baseline simulation was traced
        # Baseline never sleeps: barrier events only.
        assert not any(isinstance(e, SleepEnter) for e in events)
        assert any(isinstance(e, BarrierRelease) for e in events)


class TestSimulatorTraceHook:
    def _populate(self, simulator, seen_fn):
        ran = []
        simulator.schedule(10, seen_fn, "a")
        cancelled = simulator.schedule(20, seen_fn, "b")
        cancelled.cancel()
        simulator.schedule(30, seen_fn, "c")
        return ran

    def test_legacy_hook_unaffected_by_cancels(self):
        calls = []

        def hook(now, fn, args):
            calls.append((now, args))

        simulator = Simulator(trace=hook)
        self._populate(simulator, lambda tag: None)
        simulator.run()
        assert [args for _, args in calls] == [("a",), ("c",)]

    def test_cancel_aware_hook_sees_skips(self):
        calls = []

        def hook(now, fn, args, cancelled=False):
            calls.append((now, args[0], cancelled))

        simulator = Simulator(trace=hook)
        self._populate(simulator, lambda tag: None)
        simulator.run()
        assert calls == [
            (10, "a", False), (20, "b", True), (30, "c", False),
        ]

    def test_var_keyword_hook_sees_skips(self):
        calls = []

        def hook(now, fn, args, **kwargs):
            calls.append(kwargs.get("cancelled", False))

        simulator = Simulator(trace=hook)
        self._populate(simulator, lambda tag: None)
        simulator.run()
        assert calls == [False, True, False]

    def test_clock_not_advanced_for_cancelled_skip(self):
        skips = []

        def hook(now, fn, args, cancelled=False):
            if cancelled:
                skips.append(now)

        simulator = Simulator(trace=hook)
        handle = simulator.schedule(50, lambda: None)
        handle.cancel()
        simulator.run()
        assert skips == [50]  # reported at the handle's time...
        assert simulator.now == 0  # ...but the clock does not advance

    def test_counters(self):
        simulator = Simulator()
        simulator.schedule(10, lambda: None)
        cancelled = simulator.schedule(20, lambda: None)
        cancelled.cancel()
        simulator.schedule(30, lambda: None)
        simulator.run()
        assert simulator.executed == 2
        assert simulator.skipped_cancelled == 1

    def test_step_also_reports_skips(self):
        calls = []

        def hook(now, fn, args, cancelled=False):
            calls.append(cancelled)

        simulator = Simulator(trace=hook)
        handle = simulator.schedule(10, lambda: None)
        handle.cancel()
        simulator.schedule(20, lambda: None)
        assert simulator.step() is True  # skips the cancelled head first
        assert calls == [True, False]
        assert simulator.skipped_cancelled == 1
