"""``repro fsck``: offline audit and repair of journal/cache trees.

Covers each classification (torn-tail, corrupt, orphaned, stale-tmp,
unrepairable spec loss), the safe-repair actions (truncate, delete,
quarantine — never destroy campaign data), the CLI exit codes, and —
as an adversarial property — that a journal whose final line is
truncated or garbled *any* way still replays its prefix without an
exception, and that fsck's repair agrees with replay about that
prefix.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.fsck import (
    FsckReport,
    fsck_cache,
    fsck_run,
    fsck_tree,
    render_fsck_report,
)
from repro.experiments.journal import RECORD_KINDS, RunJournal


def _digest(text):
    """A cache key in the canonical 64-hex digest shape."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _make_run(root, run_id="r", cells=("a", "b", "c")):
    """A healthy journaled run: records, a checkpoint, one payload."""
    journal = RunJournal.create({"cells": list(cells)}, run_id=run_id,
                               root=root)
    for index, cell in enumerate(cells):
        journal.record_dispatched(cell, index=index)
        journal.record_completed(cell, index=index)
    journal.checkpoint(completed=len(cells), total=len(cells))
    journal.store_payload(cells[0], {"cell": cells[0], "value": 42})
    return journal


class TestFsckRunClassification:
    def test_clean_run_is_ok(self, tmp_path):
        _make_run(tmp_path)
        report = fsck_run(tmp_path / "r")
        assert report.ok
        assert report.issues == []
        assert report.scanned >= 4  # spec, journal, checkpoint, payload
        assert "clean" in render_fsck_report(report)

    def test_missing_run_dir_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="no run directory"):
            fsck_run(tmp_path / "nope")

    def test_torn_tail_is_found_and_truncated(self, tmp_path):
        journal = _make_run(tmp_path)
        path = journal.run_dir / "journal.jsonl"
        good = path.read_bytes()
        with open(path, "ab") as fh:
            fh.write(b'{"record": "completed", "cel')  # torn mid-append

        report = fsck_run(journal.run_dir)
        (finding,) = [f for f in report.issues]
        assert finding.status == "torn-tail"
        assert not finding.repaired
        assert not report.ok  # found but not repaired

        report = fsck_run(journal.run_dir, repair=True)
        (finding,) = [f for f in report.issues]
        assert finding.repaired
        assert report.ok
        assert path.read_bytes() == good  # truncated to the last good line

    def test_midfile_corruption_truncates_the_suffix(self, tmp_path):
        journal = _make_run(tmp_path)
        path = journal.run_dir / "journal.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        # Garble a record in the middle; everything after it is suspect.
        lines[2] = b"\x00\xff not json \x00\n"
        path.write_bytes(b"".join(lines))

        report = fsck_run(journal.run_dir, repair=True)
        (finding,) = report.issues
        assert finding.status == "corrupt"
        assert finding.repaired
        assert path.read_bytes() == b"".join(lines[:2])
        # The truncated journal replays cleanly (prefix-consistent).
        state = RunJournal.open("r", root=tmp_path).replay()
        assert not state.torn_tail

    def test_corrupt_checkpoint_is_deleted(self, tmp_path):
        journal = _make_run(tmp_path)
        checkpoint = journal.run_dir / "checkpoint.json"
        checkpoint.write_text('{"completed": ')
        report = fsck_run(journal.run_dir, repair=True)
        (finding,) = report.issues
        assert (finding.kind, finding.status) == ("checkpoint", "corrupt")
        assert finding.repaired
        assert not checkpoint.exists()
        assert report.ok

    def test_corrupt_payload_is_quarantined_not_deleted(self, tmp_path):
        journal = _make_run(tmp_path)
        payload = journal._payload_path("a")
        payload.write_bytes(b"\x80\x04 definitely not a pickle")
        report = fsck_run(journal.run_dir, repair=True)
        (finding,) = report.issues
        assert (finding.kind, finding.status) == ("payload", "corrupt")
        assert finding.repaired
        assert not payload.exists()
        quarantined = list((journal.run_dir / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [payload.name]

    def test_orphan_in_results_is_quarantined(self, tmp_path):
        journal = _make_run(tmp_path)
        stray = journal.run_dir / "results" / "notes.txt"
        stray.write_text("not a payload")
        report = fsck_run(journal.run_dir, repair=True)
        (finding,) = report.issues
        assert finding.status == "orphaned"
        assert finding.repaired
        assert not stray.exists()
        assert (journal.run_dir / "quarantine" / "notes.txt").is_file()

    def test_payload_without_journal_record_is_fine(self, tmp_path):
        # Chaos campaigns store reference payloads that never get
        # ``completed`` records; fsck must not flag them.
        journal = _make_run(tmp_path)
        journal.store_payload("never-recorded", {"v": 1})
        report = fsck_run(journal.run_dir)
        assert report.ok

    def test_stale_tmp_files_are_deleted(self, tmp_path):
        journal = _make_run(tmp_path)
        debris = journal.run_dir / "results" / "tmpabc123.tmp"
        debris.write_bytes(b"half a payload")
        more = journal.run_dir / "tmpdef456.tmp"
        more.write_bytes(b"half a checkpoint")
        report = fsck_run(journal.run_dir, repair=True)
        assert {f.status for f in report.issues} == {"stale-tmp"}
        assert all(f.repaired for f in report.issues)
        assert not debris.exists() and not more.exists()

    def test_corrupt_spec_is_unrepairable_loss(self, tmp_path):
        journal = _make_run(tmp_path)
        (journal.run_dir / "spec.json").write_text("{broken")
        report = fsck_run(journal.run_dir, repair=True)
        assert not report.ok
        assert len(report.unrepairable_loss) == 1
        assert "UNREPAIRABLE" in render_fsck_report(report)

    def test_missing_spec_is_unrepairable_loss(self, tmp_path):
        journal = _make_run(tmp_path)
        (journal.run_dir / "spec.json").unlink()
        report = fsck_run(journal.run_dir, repair=True)
        assert not report.ok
        assert report.unrepairable_loss[0].kind == "spec"


class TestFsckCache:
    def test_absent_cache_is_vacuously_clean(self, tmp_path):
        report = fsck_cache(tmp_path / "never-created")
        assert report.ok
        assert report.scanned == 0

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good, bad = _digest("good"), _digest("bad")
        cache.put(good, {"v": 1})
        cache.put(bad, {"v": 2})
        bad_path = cache._entry_path(bad)
        blob = bad_path.read_bytes()
        bad_path.write_bytes(blob[: len(blob) // 2])

        report = fsck_cache(tmp_path / "cache", repair=True)
        assert report.scanned == 2
        (finding,) = report.issues
        assert (finding.kind, finding.status) == ("cache-entry", "corrupt")
        assert finding.repaired
        assert not bad_path.exists()
        assert cache.get(good) == {"v": 1}
        # A second pass no longer sees the quarantined entry.
        second = fsck_cache(tmp_path / "cache", repair=True)
        assert second.ok
        assert second.scanned == 1

    def test_quarantine_never_clobbers(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for round_number in (1, 2):
            cache.put(_digest("key"), {"round": round_number})
            path = cache._entry_path(_digest("key"))
            path.write_bytes(b"garbage")
            report = fsck_cache(tmp_path / "cache", repair=True)
            assert report.ok
        quarantine = tmp_path / "cache" / "quarantine"
        assert len(list(quarantine.iterdir())) == 2


class TestFsckTree:
    def test_audits_every_run_and_the_cache(self, tmp_path):
        _make_run(tmp_path / "runs", run_id="one")
        journal = _make_run(tmp_path / "runs", run_id="two")
        (journal.run_dir / "journal.jsonl").write_bytes(b'{"torn')
        cache = ResultCache(tmp_path / "cache")
        cache.put(_digest("k"), 1)

        report = fsck_tree(
            journal_root=tmp_path / "runs", cache_dir=tmp_path / "cache",
        )
        assert len(report.issues) == 1
        assert not report.ok
        repaired = fsck_tree(
            journal_root=tmp_path / "runs", cache_dir=tmp_path / "cache",
            repair=True,
        )
        assert repaired.ok

    def test_single_run_selection(self, tmp_path):
        _make_run(tmp_path / "runs", run_id="target")
        broken = _make_run(tmp_path / "runs", run_id="other")
        (broken.run_dir / "spec.json").write_text("{nope")
        report = fsck_tree(journal_root=tmp_path / "runs", run_id="target")
        assert report.ok  # the damage lives in the *other* run


class TestRepairIdempotency:
    """Repair converges in one pass: a second ``--repair`` of the same
    tree finds nothing and rewrites nothing — byte-for-byte."""

    @staticmethod
    def _snapshot(root):
        return {
            str(path.relative_to(root)): path.read_bytes()
            for path in sorted(root.rglob("*"))
            if path.is_file()
        }

    def _damage_everything(self, tmp_path):
        """One tree with every repairable damage class at once."""
        journal = _make_run(tmp_path / "runs")
        with open(journal.run_dir / "journal.jsonl", "ab") as fh:
            fh.write(b'{"record": "completed", "cel')  # torn tail
        (journal.run_dir / "checkpoint.json").write_text('{"completed": ')
        journal._payload_path("a").write_bytes(b"\x80\x04 not a pickle")
        (journal.run_dir / "results" / "tmpabc.tmp").write_bytes(b"half")
        (journal.run_dir / "results" / "notes.txt").write_text("stray")
        return journal

    def test_second_repair_is_a_byte_level_noop(self, tmp_path):
        self._damage_everything(tmp_path)

        first = fsck_tree(journal_root=tmp_path / "runs", repair=True)
        assert first.ok
        assert first.issues and all(f.repaired for f in first.issues)
        frozen = self._snapshot(tmp_path / "runs")

        second = fsck_tree(journal_root=tmp_path / "runs", repair=True)
        assert second.ok
        assert second.issues == []
        assert self._snapshot(tmp_path / "runs") == frozen

    def test_second_cli_repair_is_a_byte_level_noop(self, tmp_path):
        self._damage_everything(tmp_path)
        argv = ["fsck", "--repair", "--journal-dir",
                str(tmp_path / "runs"), "--no-cache"]
        assert main(argv) == 0
        frozen = self._snapshot(tmp_path / "runs")
        assert main(argv) == 0
        assert self._snapshot(tmp_path / "runs") == frozen


class TestFsckCli:
    def _damaged_tree(self, tmp_path):
        journal = _make_run(tmp_path / "runs")
        with open(journal.run_dir / "journal.jsonl", "ab") as fh:
            fh.write(b'{"record": "comple')
        return journal

    def test_exit_1_without_repair_then_0_with(self, tmp_path, capsys):
        self._damaged_tree(tmp_path)
        argv = ["fsck", "--journal-dir", str(tmp_path / "runs"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "torn-tail" in out
        assert "--repair" in out

        assert main(argv + ["--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out

        assert main(argv) == 0  # tree is clean now
        assert "clean" in capsys.readouterr().out

    def test_exit_1_on_unrepairable_loss(self, tmp_path, capsys):
        journal = self._damaged_tree(tmp_path)
        (journal.run_dir / "spec.json").write_text("{gone")
        assert main([
            "fsck", "--repair", "--journal-dir", str(tmp_path / "runs"),
            "--no-cache",
        ]) == 1
        assert "UNREPAIRABLE" in capsys.readouterr().out

    def test_fsck_of_one_run_id(self, tmp_path, capsys):
        self._damaged_tree(tmp_path)
        _make_run(tmp_path / "runs", run_id="healthy")
        assert main([
            "fsck", "healthy", "--journal-dir", str(tmp_path / "runs"),
            "--no-cache",
        ]) == 0


def _records_strategy():
    """Journal record kinds plus minimal plausible fields for each."""
    return st.lists(
        st.sampled_from(RECORD_KINDS), min_size=1, max_size=8,
    )


def _append_record(journal, kind, index):
    cell = "cell-{}".format(index)
    if kind == "dispatched":
        journal.record_dispatched(cell, index=index)
    elif kind == "completed":
        journal.record_completed(cell, index=index)
    elif kind == "failed":
        journal.record_failed(cell, index=index, message="boom")
    elif kind == "failed-permanent":
        journal.record_failed_permanent(
            cell, index=index, message="boom", attempts=2,
            retry_delays=(0.1, 0.2),
        )
    elif kind == "worker-stalled":
        journal.record_worker_stalled(0, [cell], stale_s=1.5)
    elif kind == "checkpoint":
        journal.append("checkpoint", completed=index, total=8)
    elif kind == "interrupted":
        journal.record_interrupted("SIGTERM", completed=index, total=8)
    elif kind == "cancelled":
        journal.record_cancelled("operator", completed=index, total=8)
    elif kind == "resumed":
        journal.record_resumed(completed=index, remaining=8 - index)
    elif kind == "finished":
        journal.record_finished(completed=index, failed=0)
    else:  # pragma: no cover - RECORD_KINDS changed without a branch
        raise AssertionError(kind)


def _state_key(state):
    """The replay facts the prefix must preserve."""
    return (
        sorted(state.completed),
        sorted(state.failed_permanent),
        state.dispatches,
        state.stalls,
        state.interruptions,
        state.cancellations,
        state.resumes,
        state.checkpoints,
        state.finished,
    )


class TestAdversarialJournalTails:
    """Satellite: truncate/garble the last line of every record kind;
    replay must stay prefix-consistent and never raise."""

    @settings(max_examples=60, deadline=None)
    @given(
        kinds=_records_strategy(),
        cut=st.integers(min_value=1, max_value=200),
        garbage=st.one_of(
            st.none(),
            st.binary(min_size=1, max_size=32).map(
                lambda blob: blob.replace(b"\n", b"\x00"),
            ),
        ),
    )
    def test_replay_survives_any_tail_damage(
        self, kinds, cut, garbage, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("tails")
        journal = RunJournal.create({"k": kinds}, run_id="t", root=root)
        for index, kind in enumerate(kinds):
            _append_record(journal, kind, index)
        path = journal.run_dir / "journal.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        prefix = b"".join(lines[:-1])

        last = lines[-1]
        if garbage is None:
            # Tear the tail: drop the last ``cut`` bytes (clamped so at
            # least the newline is gone).
            damaged = last[: max(0, len(last) - max(1, cut % len(last)))]
        else:
            # Garble the tail: overwrite it with newline-free junk.
            damaged = garbage
        path.write_bytes(prefix + damaged)

        # The tail only counts when it still parses as a record object
        # (e.g. the tear removed exactly the newline); any other damage
        # must leave exactly the prefix behind.
        try:
            tail_is_record = isinstance(
                json.loads(damaged.decode("utf-8")), dict,
            )
        except (ValueError, UnicodeDecodeError):
            tail_is_record = False
        expected = _replay_of(
            root, prefix + damaged if tail_is_record else prefix,
        )

        replayed = RunJournal.open("t", root=root).replay()
        assert _state_key(replayed) == expected

        # fsck agrees with replay: after repair the journal replays to
        # the same state, with the tear gone.
        report = fsck_run(journal.run_dir, repair=True)
        assert not report.unrepairable_loss
        assert report.ok
        after = RunJournal.open("t", root=root).replay()
        assert _state_key(after) == expected
        assert not after.torn_tail


def _replay_of(root, data):
    """State key of replaying exactly ``data`` (known-good bytes)."""
    scratch = RunJournal.create(
        {"scratch": len(data)}, run_id="s-{}".format(len(data)), root=root,
    )
    (scratch.run_dir / "journal.jsonl").write_bytes(data)
    return _state_key(scratch.replay())


class TestCrashedCampaignRepairResume:
    """The PR's acceptance cycle, end to end through real processes:

    a campaign under a seeded torn-write + crash-at-fsync plan dies
    mid-run leaving a corrupt journal and crash debris; ``repro fsck``
    finds it (exit 1), ``--repair`` fixes it (exit 0), and a fault-free
    resume produces exports byte-identical to a never-faulted run.
    """

    # Chosen so real damage lands before the crash: a torn journal
    # append followed by further appends (mid-file corruption fsck must
    # truncate) plus a cache tmp file orphaned by the crash.
    _PLAN = ('{"name": "ci-smoke", "seed": 3, '
             '"torn_write_probability": 0.35, "crash_at_fsync": 10}')
    _ARGS = ["figure5", "--apps", "fmm", "--threads", "16",
             "--workers", "1"]

    def _env(self, tmp_path, cache_name, faults=None):
        import os as _os
        import sys as _sys
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(_os.environ)
        env["PYTHONPATH"] = _os.pathsep.join(
            [src] + [p for p in env.get("PYTHONPATH", "").split(
                _os.pathsep) if p]
        )
        env["REPRO_CACHE_DIR"] = str(tmp_path / cache_name)
        env["REPRO_JOURNAL_DIR"] = str(tmp_path / "runs")
        env.pop("REPRO_STORAGE_FAULTS", None)
        if faults is not None:
            env["REPRO_STORAGE_FAULTS"] = faults
        return env

    def _run(self, args, env):
        import subprocess
        import sys

        return subprocess.run(
            [sys.executable, "-m", "repro"] + args,
            env=env, capture_output=True, text=True, timeout=300,
        )

    def test_kill_fsck_repair_resume_byte_identical(self, tmp_path):
        reference = self._run(
            self._ARGS + ["--json", str(tmp_path / "ref.json")],
            self._env(tmp_path, "ref-cache"),
        )
        assert reference.returncode == 0, reference.stderr

        env = self._env(tmp_path, "cache", faults=self._PLAN)
        killed = self._run(
            self._ARGS + [
                "--run-id", "chaos", "--json", str(tmp_path / "out.json"),
            ],
            env,
        )
        assert killed.returncode != 0
        assert "SimulatedCrash" in killed.stderr
        assert not (tmp_path / "out.json").exists()

        fsck_args = [
            "fsck", "chaos", "--journal-dir", str(tmp_path / "runs"),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        clean_env = self._env(tmp_path, "cache")
        audit = self._run(fsck_args, clean_env)
        assert audit.returncode == 1, audit.stdout
        assert "corrupt" in audit.stdout

        repaired = self._run(fsck_args + ["--repair"], clean_env)
        assert repaired.returncode == 0, repaired.stdout
        assert "repaired; tree is consistent" in repaired.stdout

        # And the repaired tree audits clean.
        assert self._run(fsck_args, clean_env).returncode == 0

        resumed = self._run(
            self._ARGS + [
                "--resume", "chaos", "--json", str(tmp_path / "out.json"),
            ],
            clean_env,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "out.json").read_bytes() == \
            (tmp_path / "ref.json").read_bytes()
