"""Tests for the real-algorithm trace kernels."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import WorkloadError
from repro.machine import System
from repro.workloads import WorkloadRunner
from repro.workloads.base import PhaseInstance
from repro.workloads.kernels import (
    fft_workload,
    nbody_workload,
    ocean_workload,
    radix_workload,
)
from repro.workloads.kernels.fft import fft_traced
from repro.workloads.kernels.ocean import relax_traced
from repro.workloads.kernels.radix import radix_sort_traced
from repro.workloads.trace_model import TraceWorkload


class TestRadixKernel:
    def test_sorts_correctly(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 1 << 16, size=4096)
        sorted_keys, _ = radix_sort_traced(keys, 256, n_threads=8)
        assert (sorted_keys == np.sort(keys)).all()

    def test_phase_structure(self):
        keys = np.arange(1024)[::-1]
        _, phases = radix_sort_traced(keys, 256, n_threads=4)
        names = [name for name, _ in phases]
        # 16-bit keys at radix 256: two digit passes of three phases.
        assert names == [
            "radix.histogram", "radix.scan", "radix.permute",
        ] * 2

    def test_ops_cover_all_keys(self):
        keys = np.arange(1000)
        _, phases = radix_sort_traced(keys, 256, n_threads=8)
        for name, ops in phases:
            if name in ("radix.histogram", "radix.permute"):
                assert ops.sum() == 1000

    def test_invalid_radix_rejected(self):
        with pytest.raises(WorkloadError):
            radix_sort_traced(np.arange(8), 3, 2)

    def test_negative_keys_rejected(self):
        with pytest.raises(WorkloadError):
            radix_sort_traced(np.array([-1, 2]), 256, 2)

    def test_workload_runs_on_simulator(self):
        workload, sorted_keys = radix_workload(
            n_keys=2048, radix=256, n_threads=4, skew=0.3
        )
        assert (np.diff(sorted_keys) >= 0).all()
        system = System(MachineConfig(n_nodes=4))
        result = WorkloadRunner(workload, system=system).run()
        assert result.execution_time_ns > 0
        assert len(result.trace.released_instances()) == (
            workload.dynamic_instances
        )

    def test_skew_increases_imbalance(self):
        flat, _ = radix_workload(n_keys=2048, n_threads=4, skew=0.0)
        skewed, _ = radix_workload(n_keys=2048, n_threads=4, skew=0.5)
        def spread(workload):
            return sum(i.spread_ns for i in workload.instances)
        assert spread(skewed) > spread(flat)


class TestFftKernel:
    def test_matches_numpy(self):
        rng = np.random.default_rng(5)
        signal = rng.normal(size=256) + 1j * rng.normal(size=256)
        spectrum, _ = fft_traced(signal, n_threads=4)
        assert np.allclose(spectrum, np.fft.fft(signal))

    def test_counts_cover_all_butterflies(self):
        signal = np.ones(64, dtype=complex)
        _, counts = fft_traced(signal, n_threads=4)
        assert len(counts) == 6  # log2(64) stages
        for stage in counts:
            assert stage.sum() == 32  # n/2 butterflies per stage

    def test_non_power_of_two_rejected(self):
        with pytest.raises(WorkloadError):
            fft_traced(np.ones(100), 4)

    def test_workload_barriers_are_one_shot(self):
        workload, _ = fft_workload(n_points=1 << 10, n_threads=4)
        pcs = [instance.pc for instance in workload.instances]
        assert len(pcs) == len(set(pcs))  # non-repeating, as in FFT

    def test_workload_runs_and_predictor_stays_cold(self):
        from repro.experiments.configs import barrier_factory_for
        from repro.sync import ThriftyBarrier

        workload, _ = fft_workload(n_points=1 << 10, n_threads=4)
        system = System(MachineConfig(n_nodes=4))
        runner = WorkloadRunner(
            workload, system=system,
            barrier_factory=barrier_factory_for("thrifty"),
        )
        result = runner.run()
        sleeps = sum(
            barrier.stats.sleeps
            for barrier in result.barriers.values()
            if isinstance(barrier, ThriftyBarrier)
        )
        assert sleeps == 0  # every PC is cold: behaves like Baseline


class TestOceanKernel:
    def test_converges(self):
        _, residuals, _ = relax_traced(34, n_threads=4, tolerance=1e-3)
        assert residuals[-1] < 1e-3
        assert residuals[-1] < residuals[0]

    def test_sweep_count_data_dependent(self):
        _, res_loose, _ = relax_traced(34, 4, tolerance=1e-2, seed=0)
        _, res_tight, _ = relax_traced(34, 4, tolerance=1e-3, seed=0)
        assert len(res_tight) > len(res_loose)

    def test_too_small_grid_rejected(self):
        with pytest.raises(WorkloadError):
            relax_traced(2, 2)

    def test_workload_runs(self):
        workload, residuals = ocean_workload(
            grid_size=34, n_threads=4, tolerance=1e-3
        )
        assert residuals
        system = System(MachineConfig(n_nodes=4))
        result = WorkloadRunner(workload, system=system).run()
        assert len(result.trace.released_instances()) == (
            workload.dynamic_instances
        )


class TestNbodyKernel:
    def test_workload_runs(self):
        workload, energies = nbody_workload(
            n_bodies=128, n_steps=3, n_threads=4
        )
        assert len(energies) == 3
        system = System(MachineConfig(n_nodes=4))
        result = WorkloadRunner(workload, system=system).run()
        assert result.execution_time_ns > 0

    def test_clustering_creates_imbalance(self):
        workload, _ = nbody_workload(n_bodies=256, n_steps=2, n_threads=4)
        force_instances = [
            i for i in workload.instances if i.pc == "nbody.forces"
        ]
        assert force_instances
        assert any(i.spread_ns > 0 for i in force_instances)

    def test_needs_two_bodies(self):
        with pytest.raises(WorkloadError):
            nbody_workload(n_bodies=1, n_steps=1, n_threads=1)


class TestTraceWorkload:
    def _instance(self, pc="a", n=4):
        return PhaseInstance(
            pc=pc, durations=np.full(n, 100, dtype=np.int64), dirty_lines=0
        )

    def test_interface(self):
        workload = TraceWorkload("t", [self._instance("a"),
                                       self._instance("b"),
                                       self._instance("a")])
        assert workload.static_barriers == ["a", "b"]
        assert workload.dynamic_instances == 3
        assert workload.default_threads == 4
        assert len(workload.generate(4)) == 3

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            TraceWorkload("t", [])

    def test_inconsistent_threads_rejected(self):
        with pytest.raises(WorkloadError):
            TraceWorkload(
                "t", [self._instance(n=4), self._instance(n=8)]
            )

    def test_wrong_thread_count_rejected(self):
        workload = TraceWorkload("t", [self._instance(n=4)])
        with pytest.raises(WorkloadError):
            workload.generate(8)
