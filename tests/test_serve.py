"""The campaign service: specs, pool, dispatcher, recovery, HTTP API.

Fast unit coverage drives the server object synchronously (submit /
tick / cancel are plain methods on one thread — no sockets, no pool),
with injected task functions for the worker pool. One end-to-end class
runs the real thing: a served campaign of real simulator cells over
HTTP, checked for dedup and clean shutdown.
"""

import os
import signal
import socket
import threading
import time

import pytest

from repro.errors import ConfigError, ServeError
from repro.experiments.cache import ResultCache
from repro.experiments.journal import RunJournal
from repro.experiments.parallel import CellFailure
from repro.experiments.watchdog import WatchdogPolicy
from repro.serve.campaigns import (
    CANCELLED,
    DONE,
    RUNNING,
    cells_for,
    normalize_spec,
)
from repro.serve.client import ServeClient
from repro.serve.http import HttpError, Request, Router
from repro.serve.pool import WorkerPool
from repro.serve.server import CampaignServer


class TestNormalizeSpec:
    def test_defaults(self):
        spec = normalize_spec({})
        assert spec["kind"] == "serve"
        assert len(spec["apps"]) == 10
        assert len(spec["configs"]) == 5
        assert spec["threads"] == 64

    def test_preserves_submission_order(self):
        # Byte-identity with the batch CLI depends on running apps in
        # the order given, exactly like `repro figure5 --apps ...`.
        spec = normalize_spec({"apps": ["radix", "fmm", "radix"]})
        assert spec["apps"] == ["radix", "fmm"]

    def test_single_strings_are_lifted(self):
        spec = normalize_spec({"apps": "fmm", "configs": "baseline"})
        assert spec["apps"] == ["fmm"]
        assert spec["configs"] == ["baseline"]

    def test_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown spec field"):
            normalize_spec({"app": "fmm"})

    def test_rejects_unknown_app_and_config(self):
        with pytest.raises(ConfigError, match="unknown application"):
            normalize_spec({"apps": ["fnm"]})
        with pytest.raises(ConfigError, match="unknown configuration"):
            normalize_spec({"configs": ["turbo"]})

    def test_rejects_bad_threads_and_seed(self):
        for threads in (0, 1, 2048, "16", True, 3.5):
            with pytest.raises(ConfigError, match="threads"):
                normalize_spec({"threads": threads})
        with pytest.raises(ConfigError, match="seed"):
            normalize_spec({"seed": "one"})

    def test_rejects_non_object(self):
        with pytest.raises(ConfigError, match="JSON object"):
            normalize_spec(["fmm"])


class TestCellsFor:
    def test_app_major_order(self):
        spec = normalize_spec({
            "apps": ["fmm", "ocean"], "configs": ["baseline", "thrifty"],
            "threads": 16,
        })
        cells = cells_for(spec)
        assert [(c.app, c.config) for c in cells] == [
            ("fmm", "baseline"), ("fmm", "thrifty"),
            ("ocean", "baseline"), ("ocean", "thrifty"),
        ]
        assert all(c.threads == 16 for c in cells)

    def test_keys_are_cache_content_keys(self):
        spec = normalize_spec({"apps": ["fmm"], "configs": ["baseline"]})
        (cell,) = cells_for(spec)
        assert cell.key() == cells_for(spec)[0].key()


class TestRouter:
    def _request(self, method, path):
        return Request(method=method, path=path, query={}, headers={},
                       body=b"")

    def test_param_capture(self):
        router = Router()
        router.add("GET", "/campaigns/{id}/events", "H")
        handler, params = router.dispatch(
            self._request("GET", "/campaigns/c123/events")
        )
        assert handler == "H"
        assert params == {"id": "c123"}

    def test_404_and_405(self):
        router = Router()
        router.add("GET", "/pool", "H")
        with pytest.raises(HttpError) as exc:
            router.dispatch(self._request("GET", "/nope"))
        assert exc.value.status == 404
        with pytest.raises(HttpError) as exc:
            router.dispatch(self._request("DELETE", "/pool"))
        assert exc.value.status == 405

    def test_bad_json_body_is_400(self):
        request = Request(method="POST", path="/", query={}, headers={},
                          body=b"{nope")
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400


# -- worker pool -------------------------------------------------------

def _double(cell):
    return cell * 2


def _crash_on_die(cell):
    if cell == "die":
        os._exit(1)
    return cell


def _hang_on_hang(cell):
    if cell == "hang":
        os.kill(os.getpid(), signal.SIGSTOP)
    return cell


_FAST_WATCHDOG = WatchdogPolicy(beat_interval_s=0.02, stale_after_s=0.3)


def _poll_until(pool, predicate, timeout=10.0):
    """Collect pool events until the predicate holds (or fail)."""
    events = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events.extend(pool.poll())
        if predicate(events):
            return events
        time.sleep(0.01)
    raise AssertionError("pool never produced the expected events; "
                         "got {!r}".format(events))


def _results(events):
    return [e for e in events if e[0] == "result"]


class TestWorkerPool:
    def test_roundtrip(self):
        pool = WorkerPool(2, task=_double, watchdog=None)
        try:
            pool.start()
            for pid, n in zip(pool.idle_workers(), (2, 3)):
                assert pool.dispatch(pid, "k{}".format(n), n)
            events = _poll_until(
                pool, lambda evs: len(_results(evs)) == 2,
            )
            got = {e[2]: e[4] for e in _results(events)}
            assert got == {"k2": 4, "k3": 6}
        finally:
            pool.stop()

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkerPool(0)
        pool = WorkerPool(1, watchdog=None)
        with pytest.raises(ConfigError):
            pool.resize(0)

    def test_hotplug_grow_and_shrink(self):
        pool = WorkerPool(1, task=_double, watchdog=None)
        try:
            pool.start()
            pool.resize(3)
            _poll_until(
                pool,
                lambda evs: sum(1 for e in evs if e[0] == "joined") == 2,
            )
            assert len(pool.idle_workers()) == 3
            pool.resize(1)
            _poll_until(
                pool,
                lambda evs: sum(
                    1 for e in evs
                    if e[0] == "left" and e[2] == "retired"
                ) == 2,
            )
            assert len(pool.idle_workers()) == 1
        finally:
            pool.stop()

    def test_shrink_drains_busy_worker(self):
        pool = WorkerPool(2, task=_double, watchdog=None)
        try:
            pool.start()
            busy = pool.idle_workers()[0]
            assert pool.dispatch(busy, "k", 21)
            retired = pool.resize(1)
            # The idle worker is retired first; the busy one keeps its
            # cell and still posts the result.
            assert busy not in retired
            events = _poll_until(
                pool, lambda evs: len(_results(evs)) == 1,
            )
            assert _results(events)[0][2:] == ("k", "ok", 42)
        finally:
            pool.stop()

    def test_crashed_worker_is_reported_and_replaced(self):
        pool = WorkerPool(2, task=_crash_on_die, watchdog=None)
        try:
            pool.start()
            victim = pool.idle_workers()[0]
            assert pool.dispatch(victim, "kd", "die")
            events = _poll_until(
                pool,
                lambda evs: any(e[0] == "crashed" for e in evs)
                and any(e[0] == "joined" for e in evs),
            )
            crash = next(e for e in events if e[0] == "crashed")
            assert crash[1] == victim
            assert crash[2] == "kd"
            assert len(pool.idle_workers()) == 2
        finally:
            pool.stop()

    def test_stalled_worker_is_killed_and_replaced(self):
        pool = WorkerPool(2, task=_hang_on_hang, watchdog=_FAST_WATCHDOG)
        try:
            pool.start()
            victim = pool.idle_workers()[0]
            assert pool.dispatch(victim, "kh", "hang")
            events = _poll_until(
                pool,
                lambda evs: any(e[0] == "stalled" for e in evs)
                and any(e[0] == "joined" for e in evs),
            )
            stall = next(e for e in events if e[0] == "stalled")
            assert stall[1] == victim
            assert stall[2] == "kh"
            assert stall[3] >= _FAST_WATCHDOG.stale_after_s
            left = next(e for e in events if e[0] == "left")
            assert left[2] == "stalled"
            assert pool.monitor.stalls == 1
        finally:
            pool.stop()

    def test_child_setup_closes_inherited_listener(self):
        # Fork copies the supervisor's descriptors: a worker spawned
        # while the server is listening inherits the listening socket,
        # and an orphaned worker would keep the port bound after a
        # server SIGKILL, blocking the restart. The child_setup hook
        # must close the listener inside the child.
        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        port = listener.getsockname()[1]
        pool = WorkerPool(1, task=_double, watchdog=None)
        pool.child_setup = listener.close
        try:
            pool.start()
            # A completed roundtrip proves the worker ran child_setup
            # (it runs before the serve loop).
            pid = pool.idle_workers()[0]
            assert pool.dispatch(pid, "k", 4)
            _poll_until(pool, lambda evs: len(_results(evs)) == 1)
            listener.close()
            # With the worker's inherited copy closed, the port must
            # be immediately rebindable while the worker still lives.
            probe = socket.socket()
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                probe.bind(("127.0.0.1", port))
                probe.listen()
            finally:
                probe.close()
        finally:
            pool.stop()

    def test_describe_shape(self):
        pool = WorkerPool(2, task=_double, watchdog=_FAST_WATCHDOG)
        try:
            pool.start()
            snapshot = pool.describe()
            assert snapshot["target"] == 2
            assert len(snapshot["workers"]) == 2
            for worker in snapshot["workers"]:
                assert worker["alive"]
                assert not worker["busy"]
        finally:
            pool.stop()


# -- the dispatcher, driven synchronously ------------------------------

def _server(tmp_path, **kwargs):
    kwargs.setdefault("pool_size", 2)
    kwargs.setdefault("task", _double)
    return CampaignServer(
        port=0,
        cache=str(tmp_path / "cache"),
        journal_root=str(tmp_path / "runs"),
        **kwargs,
    )


_SMALL = {"apps": ["fmm"], "configs": ["baseline", "thrifty"],
          "threads": 16}


class TestDispatcher:
    def test_submit_enqueues_jobs(self, tmp_path):
        server = _server(tmp_path)
        campaign = server.submit(_SMALL)
        assert campaign.state == RUNNING
        assert campaign.total == 2
        assert len(server.jobs) == 2
        assert server.queue == campaign.keys

    def test_overlapping_submission_dedups(self, tmp_path):
        server = _server(tmp_path)
        first = server.submit(_SMALL)
        second = server.submit(_SMALL)
        assert second.run_id != first.run_id
        assert second.deduped == 2
        assert len(server.jobs) == 2  # no new work
        for job in server.jobs.values():
            assert len(job.waiters) == 2

    def test_cache_hits_settle_at_submission(self, tmp_path):
        server = _server(tmp_path)
        spec = normalize_spec(_SMALL)
        for cell in cells_for(spec):
            server.cache.put(cell.key(), {"fake": cell.config})
        campaign = server.submit(_SMALL)
        assert campaign.state == DONE
        assert campaign.cached == 2
        assert server.jobs == {}
        state = campaign.journal.replay()
        assert state.finished
        assert len(state.completed) == 2
        kinds = [e["kind"] for e in campaign.events]
        assert kinds[0] == "serve.campaign_submitted"
        assert kinds[-1] == "serve.campaign_finished"
        assert kinds.count("serve.cell_resolved") == 2

    def test_cancel_withdraws_orphaned_jobs(self, tmp_path):
        server = _server(tmp_path)
        campaign = server.submit(_SMALL)
        server.cancel(campaign.run_id)
        assert campaign.state == CANCELLED
        assert server.jobs == {}
        assert campaign.journal.replay().cancellations == 1
        assert campaign.events[-1]["kind"] == "serve.campaign_cancelled"

    def test_cancel_keeps_jobs_other_campaigns_need(self, tmp_path):
        server = _server(tmp_path)
        first = server.submit(_SMALL)
        second = server.submit(_SMALL)
        server.cancel(second.run_id)
        assert len(server.jobs) == 2
        for job in server.jobs.values():
            assert [c.run_id for c, _ in job.waiters] == [first.run_id]

    def test_cancel_is_idempotent_and_unknown_is_404(self, tmp_path):
        server = _server(tmp_path)
        campaign = server.submit(_SMALL)
        server.cancel(campaign.run_id)
        assert server.cancel(campaign.run_id).state == CANCELLED
        with pytest.raises(ServeError) as exc:
            server.cancel("nope")
        assert exc.value.status == 404

    def test_strike_requeues_then_fails_permanently(self, tmp_path):
        server = _server(tmp_path, retries=1)
        campaign = server.submit(
            {"apps": ["fmm"], "configs": ["baseline"], "threads": 16}
        )
        (key,) = list(server.jobs)
        server.queue.clear()  # simulate "was dispatched"
        server._strike(key, "crashed", "worker died")
        assert server.queue == [key]  # one retry left
        assert campaign.state == RUNNING
        server.queue.clear()
        server._strike(key, "stalled", "no heartbeat")
        assert campaign.state == DONE
        assert campaign.failed == 1
        (result,) = campaign.results
        assert isinstance(result, CellFailure)
        assert result.kind == "stalled"
        assert result.attempts == 2
        state = campaign.journal.replay()
        assert len(state.failed_permanent) == 1
        records = campaign.records()
        assert records[0]["failed"] is True

    def test_deterministic_error_result_strikes(self, tmp_path):
        server = _server(tmp_path, retries=0)
        campaign = server.submit(
            {"apps": ["fmm"], "configs": ["baseline"], "threads": 16}
        )
        (key,) = list(server.jobs)
        server._on_result(key, "error", ("ValueError", "boom"))
        assert campaign.failed == 1
        (result,) = campaign.results
        assert result.kind == "error"
        assert "ValueError" in result.message

    def test_result_with_no_waiters_is_still_cached(self, tmp_path):
        server = _server(tmp_path)
        campaign = server.submit(_SMALL)
        keys = list(server.jobs)
        server.cancel(campaign.run_id)
        server._on_result(keys[0], "ok", {"late": True})
        assert server.cache.get(keys[0]) == {"late": True}


class TestRecovery:
    def test_killed_server_resumes_in_flight_campaign(self, tmp_path):
        server1 = _server(tmp_path)
        campaign = server1.submit(_SMALL)
        # One cell "finished" before the kill: its result is durable in
        # the cache (the journal's completed record rides on that).
        key0 = campaign.keys[0]
        server1.cache.put(key0, {"fake": 1})
        del server1  # simulate SIGKILL: nothing flushed, no finished

        server2 = _server(tmp_path)
        server2.recover()
        recovered = server2.store.get(campaign.run_id)
        assert recovered.resumed
        assert recovered.state == RUNNING
        assert recovered.completed == 1
        assert recovered.cached == 1
        assert list(server2.jobs) == [campaign.keys[1]]
        assert recovered.journal.replay().resumes == 1

    def test_finished_and_cancelled_campaigns_are_not_resumed(
            self, tmp_path):
        server1 = _server(tmp_path)
        spec = normalize_spec(_SMALL)
        for cell in cells_for(spec):
            server1.cache.put(cell.key(), {"fake": cell.config})
        done = server1.submit(_SMALL)
        cancelled = server1.submit(
            {"apps": ["ocean"], "configs": ["baseline"], "threads": 16}
        )
        server1.cancel(cancelled.run_id)
        del server1

        server2 = _server(tmp_path)
        server2.recover()
        assert server2.store.get(done.run_id).state == DONE
        assert server2.store.get(cancelled.run_id).state == CANCELLED
        assert server2.jobs == {}
        # Done campaigns stay queryable: results reload from the cache.
        assert server2.store.get(done.run_id).completed == 2

    def test_non_serve_journals_are_ignored(self, tmp_path):
        RunJournal.create(
            {"kind": "matrix", "apps": ["fmm"]}, run_id="batch-run",
            root=tmp_path / "runs",
        )
        server = _server(tmp_path)
        server.recover()
        assert len(server.store) == 0

    def test_unique_run_ids_for_identical_specs(self, tmp_path):
        server = _server(tmp_path)
        first = server.submit(_SMALL)
        second = server.submit(_SMALL)
        third = server.submit(_SMALL)
        assert len({first.run_id, second.run_id, third.run_id}) == 3
        assert second.run_id.startswith(first.run_id)


class TestServerValidation:
    def test_retries_must_be_non_negative(self, tmp_path):
        with pytest.raises(ConfigError):
            _server(tmp_path, retries=-1)

    def test_bad_specs_are_config_errors(self, tmp_path):
        server = _server(tmp_path)
        with pytest.raises(ConfigError):
            server.submit({"apps": ["nope"]})


# -- end to end over HTTP ----------------------------------------------

@pytest.fixture
def live_server(tmp_path):
    """A real CampaignServer (real simulator cells) on a free port."""
    server = CampaignServer(
        port=0, pool_size=2,
        cache=str(tmp_path / "cache"),
        journal_root=str(tmp_path / "runs"),
    )
    exit_code = []
    thread = threading.Thread(
        target=lambda: exit_code.append(server.run(banner=False)),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while server.port == 0 and time.monotonic() < deadline:
        time.sleep(0.02)
    assert server.port != 0, "server never started listening"
    client = ServeClient(port=server.port)
    yield server, client, exit_code
    if thread.is_alive():
        try:
            client.shutdown()
        except ServeError:
            pass
        thread.join(10.0)


class TestHttpEndToEnd:
    def test_campaign_lifecycle(self, live_server):
        server, client, exit_code = live_server
        health = client.health()
        assert health["ok"] and health["campaigns"] == 0

        status = client.submit(
            {"apps": ["fmm"], "configs": ["baseline", "thrifty"],
             "threads": 8}
        )
        run_id = status["run_id"]
        final = client.wait(run_id, timeout=120.0)
        assert final["state"] == "done"
        assert final["completed"] == 2 and final["failed"] == 0

        document = client.results(run_id)
        assert len(document["records"]) == 2
        apps = {r["app"] for r in document["records"]}
        assert apps == {"fmm"}

        # Overlapping resubmission: every cell is a cache hit, no
        # recomputation (executed count unchanged).
        executed = client.health()["executed_cells"]
        again = client.submit(
            {"apps": ["fmm"], "configs": ["baseline", "thrifty"],
             "threads": 8}
        )
        assert again["state"] == "done"
        assert again["cached"] == 2
        assert client.health()["executed_cells"] == executed

        # The event stream of a finished campaign replays its backlog.
        events = list(client.events(run_id))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "serve.campaign_submitted"
        assert kinds[-1] == "serve.campaign_finished"

        # Pool introspection + hotplug.
        pool = client.pool()
        assert pool["target"] == 2
        assert client.set_pool(3)["target"] == 3

        assert len(client.campaigns()) == 2

        client.shutdown()
        deadline = time.monotonic() + 10.0
        while not exit_code and time.monotonic() < deadline:
            time.sleep(0.05)
        assert exit_code == [0]

    @pytest.mark.skipif(
        not os.path.isdir("/proc"), reason="needs /proc introspection"
    )
    def test_respawned_worker_does_not_hold_the_listener(self, live_server):
        # Workers forked while the server is listening inherit its
        # descriptors; unless the pool's child_setup closes the
        # listening socket, orphans of a SIGKILLed server keep the
        # port bound and block the restart that resumes campaigns.
        server, client, _ = live_server
        # The listener's socket inode, from the kernel's TCP table
        # (state 0A = LISTEN on our port).
        port_hex = "{:04X}".format(server.port)
        inodes = set()
        with open("/proc/net/tcp") as table:
            for line in list(table)[1:]:
                fields = line.split()
                if fields[1].endswith(":" + port_hex) and fields[3] == "0A":
                    inodes.add("socket:[{}]".format(fields[9]))
        assert inodes, "listener not found in /proc/net/tcp"

        before = {w["pid"] for w in client.pool()["workers"]}
        victim = sorted(before)[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30.0
        fresh = set()
        while time.monotonic() < deadline:
            alive = {w["pid"] for w in client.pool()["workers"]}
            fresh = alive - before
            if fresh:
                break
            time.sleep(0.05)
        assert fresh, "no replacement worker appeared"

        # The replacement was forked while the listener existed; its
        # fd table must not (durably) reference any of our listening
        # sockets. The child closes the inherited copy first thing in
        # its bootstrap, so poll briefly: the pid shows up in /pool as
        # soon as the parent forks, possibly before the child has run
        # child_setup.
        pid = fresh.pop()
        deadline = time.monotonic() + 30.0
        held = set()
        while time.monotonic() < deadline:
            held = set()
            for fd in os.listdir("/proc/{}/fd".format(pid)):
                try:
                    target = os.readlink(
                        "/proc/{}/fd/{}".format(pid, fd)
                    )
                except OSError:
                    continue
                if target.startswith("socket:["):
                    held.add(target)
            if not (held & inodes):
                break
            time.sleep(0.05)
        # The worker legitimately holds its queue pipes but must not
        # share a socket inode with the supervisor.
        assert not (held & inodes), (
            "respawned worker kept supervisor sockets: "
            "{}".format(held & inodes)
        )

    def test_api_errors(self, live_server):
        _, client, _ = live_server
        with pytest.raises(ServeError) as exc:
            client.status("nope")
        assert exc.value.status == 404
        with pytest.raises(ServeError) as exc:
            client.submit({"apps": ["not-an-app"]})
        assert exc.value.status == 400
        with pytest.raises(ServeError) as exc:
            client._request("PUT", "/pool")
        assert exc.value.status == 405

    def test_results_conflict_while_running_and_cancel(self, live_server):
        server, client, _ = live_server
        # A big-enough campaign that it is still running when we probe.
        status = client.submit({"apps": ["ocean", "barnes"], "threads": 8})
        run_id = status["run_id"]
        if client.status(run_id)["state"] == "running":
            with pytest.raises(ServeError) as exc:
                client.results(run_id)
            assert exc.value.status == 409
        cancelled = client.cancel(run_id)
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServeError) as exc:
            client.results(run_id)
        assert exc.value.status == 409


class TestClientTransport:
    def test_connection_refused_is_serve_error(self):
        client = ServeClient(port=1, timeout=0.5)
        with pytest.raises(ServeError, match="cannot reach"):
            client.health()


# -- hostile-peer hardening --------------------------------------------

def _hardened_server(tmp_path, **kwargs):
    """A live CampaignServer with hardening knobs; returns
    ``(server, client, stop)`` — call ``stop()`` in a finally."""
    server = CampaignServer(
        port=0, pool_size=1,
        cache=str(tmp_path / "cache"),
        journal_root=str(tmp_path / "runs"),
        **kwargs,
    )
    thread = threading.Thread(
        target=lambda: server.run(banner=False), daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while server.port == 0 and time.monotonic() < deadline:
        time.sleep(0.02)
    assert server.port != 0, "server never started listening"
    client = ServeClient(port=server.port, timeout=5.0)

    def stop():
        try:
            client.shutdown()
        except ServeError:
            pass
        thread.join(10.0)

    return server, client, stop


def _raw_exchange(port, payload, timeout=5.0):
    """Send raw bytes, read until the server closes; returns the bytes."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        if payload:
            sock.sendall(payload)
        received = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return received
            received += chunk
    finally:
        sock.close()


class TestHostileClients:
    def test_stalled_socket_gets_408_not_a_pinned_slot(self, tmp_path):
        server, client, stop = _hardened_server(
            tmp_path, idle_timeout_s=0.3,
        )
        try:
            # The slowloris move: open a connection, send half a
            # request head, and go quiet.
            response = _raw_exchange(
                server.port, b"GET / HTTP/1.1\r\nHost: x\r\n",
            )
            assert b"408" in response.split(b"\r\n", 1)[0]
            assert b"no complete request" in response
            # The server is fine afterwards; a real client still works.
            assert client.health()["ok"]
        finally:
            stop()

    def test_connection_cap_sheds_load_with_503(self, tmp_path):
        server, client, stop = _hardened_server(
            tmp_path, max_connections=1, idle_timeout_s=10.0,
        )
        try:
            # Occupy the single slot with a connection that never
            # completes its request.
            hog = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0,
            )
            try:
                hog.sendall(b"GET / HTTP/1.1\r\n")
                time.sleep(0.2)  # let the server pick the handler up
                response = _raw_exchange(
                    server.port,
                    b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
                )
                head = response.split(b"\r\n\r\n", 1)[0]
                assert b"503" in head.split(b"\r\n", 1)[0]
                assert b"Retry-After: 1" in head
                assert b"connection cap" in response
            finally:
                hog.close()
            time.sleep(0.2)  # slot frees once the hog is gone
            assert client.health()["ok"]
        finally:
            stop()

    def test_hardening_knobs_are_validated(self, tmp_path):
        with pytest.raises(ConfigError, match="idle_timeout_s"):
            CampaignServer(port=0, idle_timeout_s=0)
        with pytest.raises(ConfigError, match="max_connections"):
            CampaignServer(port=0, max_connections=0)


class TestWaitBackoff:
    def test_wait_backs_off_exponentially_with_jitter(self, monkeypatch):
        client = ServeClient(port=1, timeout=0.1)
        states = iter(["running"] * 6 + ["done"])
        monkeypatch.setattr(client, "status", lambda run_id: {
            "state": next(states), "completed": 0, "total": 1,
        })
        sleeps = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: sleeps.append(s),
        )
        status = client.wait("r", timeout=600.0, poll_s=0.2, poll_cap_s=2.0)
        assert status["state"] == "done"
        # Six polls saw "running": delays double from the floor to the
        # cap, each drawn from [delay/2, delay] by the seeded jitter.
        expected = [0.2, 0.4, 0.8, 1.6, 2.0, 2.0]
        assert len(sleeps) == len(expected)
        for observed, delay in zip(sleeps, expected):
            assert 0.5 * delay <= observed <= delay
        assert len(set(sleeps)) > 1, "jitter must actually vary"

    def test_wait_timeout_raises_with_progress(self, monkeypatch):
        client = ServeClient(port=1, timeout=0.1)
        monkeypatch.setattr(client, "status", lambda run_id: {
            "state": "running", "completed": 3, "total": 10,
        })
        with pytest.raises(ServeError, match="3 of 10"):
            client.wait("r", timeout=0.05, poll_s=0.01)
