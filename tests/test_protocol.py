"""Integration tests for the directory coherence protocol engine."""

import pytest

from repro.coherence import CacheController, DirState, LineState, MemorySystem
from repro.coherence.directory import LineLock
from repro.config import MachineConfig
from repro.errors import ProtocolError
from repro.sim import Simulator


def build_memsys(n_nodes=4, detailed=True):
    sim = Simulator()
    config = MachineConfig(n_nodes=n_nodes, detailed_memory=detailed)
    memsys = MemorySystem(sim, config)
    for node in range(n_nodes):
        memsys.controllers[node] = CacheController(sim, node, memsys)
    return sim, memsys


def run(sim, generator):
    process = sim.spawn(generator)
    sim.run()
    return process.value


class TestAddressMapping:
    def test_round_robin_page_homes(self):
        _, memsys = build_memsys(n_nodes=4)
        page = memsys.config.page_bytes
        assert memsys.home_of(0) == 0
        assert memsys.home_of(page) == 1
        assert memsys.home_of(4 * page) == 0

    def test_line_of(self):
        _, memsys = build_memsys()
        assert memsys.line_of(0) == 0
        assert memsys.line_of(63) == 0
        assert memsys.line_of(64) == 1


class TestLoadStore:
    def test_load_returns_default_zero(self):
        sim, memsys = build_memsys()
        assert run(sim, memsys.load(0, 0x1000)) == 0

    def test_store_then_load_same_node(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(0, 0x1000, 42))
        assert run(sim, memsys.load(0, 0x1000)) == 42

    def test_store_then_load_remote_node(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(0, 0x1000, 7))
        assert run(sim, memsys.load(3, 0x1000)) == 7

    def test_second_load_hits_in_l1(self):
        sim, memsys = build_memsys()
        run(sim, memsys.load(0, 0x1000))
        before = sim.now
        run(sim, memsys.load(0, 0x1000))
        assert memsys.stats.l1_hits == 1
        assert sim.now - before == memsys.config.l1.round_trip_ns

    def test_local_miss_cheaper_than_remote_miss(self):
        sim, memsys = build_memsys()
        addr_home0 = 0  # home node 0
        addr_home3 = 3 * memsys.config.page_bytes
        start = sim.now
        run(sim, memsys.load(0, addr_home0))
        local_latency = sim.now - start
        start = sim.now
        run(sim, memsys.load(0, addr_home3))
        remote_latency = sim.now - start
        assert local_latency < remote_latency

    def test_store_invalidates_remote_sharers(self):
        sim, memsys = build_memsys()
        run(sim, memsys.load(1, 0x2000))
        run(sim, memsys.load(2, 0x2000))
        run(sim, memsys.store(0, 0x2000, 5))
        line = memsys.line_of(0x2000)
        assert memsys.hierarchies[1].state(line) is None
        assert memsys.hierarchies[2].state(line) is None
        assert memsys.stats.invalidations == 2

    def test_write_hit_in_modified_is_silent(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(0, 0x2000, 1))
        misses_before = memsys.stats.misses
        invs_before = memsys.stats.invalidations
        start = sim.now
        run(sim, memsys.store(0, 0x2000, 2))
        assert memsys.stats.misses == misses_before
        assert memsys.stats.invalidations == invs_before
        assert sim.now - start == memsys.config.l1.round_trip_ns
        assert memsys.peek(0x2000) == 2

    def test_read_of_dirty_remote_line_fetches_from_owner(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(2, 0x3000, 9))
        assert run(sim, memsys.load(1, 0x3000)) == 9
        assert memsys.stats.owner_fetches == 1
        line = memsys.line_of(0x3000)
        # Owner demoted to SHARED; directory tracks both sharers.
        assert memsys.hierarchies[2].state(line) is LineState.SHARED
        home = memsys.home_of(0x3000)
        entry = memsys.directories[home].entry(line)
        assert entry.state is DirState.SHARED
        assert entry.sharers == {1, 2}

    def test_write_to_shared_line_upgrades(self):
        sim, memsys = build_memsys()
        run(sim, memsys.load(0, 0x4000))
        run(sim, memsys.load(1, 0x4000))
        run(sim, memsys.store(0, 0x4000, 3))
        line = memsys.line_of(0x4000)
        assert memsys.hierarchies[0].state(line) is LineState.MODIFIED
        assert memsys.hierarchies[1].state(line) is None

    def test_directory_tracks_exclusive_owner(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(3, 0x5000, 1))
        home = memsys.home_of(0x5000)
        entry = memsys.directories[home].entry(memsys.line_of(0x5000))
        assert entry.state is DirState.EXCLUSIVE
        assert entry.owner == 3

    def test_two_lines_same_page_share_home(self):
        _, memsys = build_memsys()
        assert memsys.home_of(0x100) == memsys.home_of(0x140)


class TestRmw:
    def test_rmw_returns_old_value(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(0, 0x6000, 10))
        old = run(sim, memsys.rmw(1, 0x6000, lambda v: v + 1))
        assert old == 10
        assert memsys.peek(0x6000) == 11

    def test_concurrent_rmws_serialize(self):
        sim, memsys = build_memsys()
        addr = 0x7000

        def incrementer(node):
            yield from memsys.rmw(node, addr, lambda v: v + 1)

        for node in range(4):
            sim.spawn(incrementer(node))
        sim.run()
        assert memsys.peek(addr) == 4

    def test_interleaved_rmw_and_loads(self):
        sim, memsys = build_memsys()
        addr = 0x8000
        observed = []

        def reader():
            value = yield from memsys.load(3, addr)
            observed.append(value)

        def writer():
            yield from memsys.rmw(0, addr, lambda v: v + 5)

        sim.spawn(writer())
        sim.spawn(reader())
        sim.run()
        assert observed[0] in (0, 5)
        assert memsys.peek(addr) == 5


class TestWriteback:
    def test_capacity_eviction_writes_back_dirty_line(self):
        sim, memsys = build_memsys()
        n_l2_sets = memsys.config.l2.n_sets
        line_bytes = memsys.config.line_bytes
        base = 0x0
        run(sim, memsys.store(0, base, 1))
        # Evict by filling the same L2 set with 8 more clean lines.
        for way in range(1, 9):
            addr = base + way * n_l2_sets * line_bytes
            run(sim, memsys.load(0, addr))
        assert memsys.stats.writebacks >= 1
        # Ownership released at the directory.
        home = memsys.home_of(base)
        entry = memsys.directories[home].entry(memsys.line_of(base))
        assert entry.state is not DirState.EXCLUSIVE

    def test_reload_after_writeback_sees_value(self):
        sim, memsys = build_memsys()
        n_l2_sets = memsys.config.l2.n_sets
        line_bytes = memsys.config.line_bytes
        run(sim, memsys.store(0, 0x0, 77))
        for way in range(1, 9):
            run(sim, memsys.load(0, way * n_l2_sets * line_bytes))
        assert run(sim, memsys.load(1, 0x0)) == 77


class TestFlagMonitor:
    def test_monitor_fires_on_remote_store(self):
        sim, memsys = build_memsys()
        flag = 0x9000
        run(sim, memsys.load(1, flag))  # node 1 caches the flag
        fired = []
        memsys.controllers[1].arm_flag_monitor(
            flag, lambda line: fired.append(sim.now)
        )
        run(sim, memsys.store(0, flag, 1))
        assert len(fired) == 1

    def test_monitor_does_not_fire_without_invalidation(self):
        sim, memsys = build_memsys()
        flag = 0x9000
        run(sim, memsys.load(1, flag))
        fired = []
        memsys.controllers[1].arm_flag_monitor(
            flag, lambda line: fired.append(sim.now)
        )
        run(sim, memsys.load(2, flag))  # read does not invalidate
        assert fired == []

    def test_disarmed_monitor_does_not_fire(self):
        sim, memsys = build_memsys()
        flag = 0x9000
        run(sim, memsys.load(1, flag))
        fired = []
        controller = memsys.controllers[1]
        callback = lambda line: fired.append(line)  # noqa: E731
        key = controller.arm_flag_monitor(flag, callback)
        controller.disarm_flag_monitor(key, callback)
        run(sim, memsys.store(0, flag, 1))
        assert fired == []

    def test_monitor_fires_once_per_arming(self):
        sim, memsys = build_memsys()
        flag = 0x9000
        run(sim, memsys.load(1, flag))
        fired = []
        memsys.controllers[1].arm_flag_monitor(
            flag, lambda line: fired.append(line)
        )
        run(sim, memsys.store(0, flag, 1))
        run(sim, memsys.load(1, flag))
        run(sim, memsys.store(0, flag, 2))
        assert len(fired) == 1


class TestFlush:
    def test_flush_writes_back_and_invalidates_dirty_lines(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(0, 0xA000, 1))
        run(sim, memsys.store(0, 0xB000, 2))
        controller = memsys.controllers[0]
        flushed = run(sim, controller.flush_dirty())
        assert flushed == 2
        assert memsys.hierarchies[0].dirty_lines() == []
        assert memsys.stats.writebacks >= 2

    def test_flush_counts_extra_footprint(self):
        sim, memsys = build_memsys()
        controller = memsys.controllers[0]
        start = sim.now
        flushed = run(sim, controller.flush_dirty(extra_lines=100))
        duration = sim.now - start
        assert flushed == 100
        assert duration == (
            memsys.config.flush_base_ns
            + 100 * memsys.config.flush_per_line_ns
        )

    def test_flush_negative_extra_rejected(self):
        sim, memsys = build_memsys()
        with pytest.raises(ProtocolError):
            run(sim, memsys.controllers[0].flush_dirty(extra_lines=-1))

    def test_values_survive_flush(self):
        sim, memsys = build_memsys()
        run(sim, memsys.store(0, 0xA000, 123))
        run(sim, memsys.controllers[0].flush_dirty())
        assert run(sim, memsys.load(2, 0xA000)) == 123


class TestFastMode:
    def test_fast_mode_store_load(self):
        sim, memsys = build_memsys(detailed=False)
        run(sim, memsys.store(0, 0x100, 9))
        assert run(sim, memsys.load(1, 0x100)) == 9

    def test_fast_mode_notifies_monitors(self):
        sim, memsys = build_memsys(detailed=False)
        fired = []
        memsys.controllers[2].arm_flag_monitor(
            0x100, lambda line: fired.append(sim.now)
        )
        run(sim, memsys.store(0, 0x100, 1))
        assert len(fired) == 1

    def test_fast_mode_does_not_notify_writer(self):
        sim, memsys = build_memsys(detailed=False)
        fired = []
        memsys.controllers[0].arm_flag_monitor(
            0x100, lambda line: fired.append(line)
        )
        run(sim, memsys.store(0, 0x100, 1))
        assert fired == []

    def test_fast_mode_rmw(self):
        sim, memsys = build_memsys(detailed=False)
        old = run(sim, memsys.rmw(0, 0x200, lambda v: v + 3))
        assert old == 0
        assert memsys.peek(0x200) == 3


class TestLineLock:
    def test_fifo_order(self):
        sim = Simulator()
        lock = LineLock(sim)
        order = []

        def holder(tag, hold_ns):
            yield lock.acquire()
            order.append(("acquire", tag, sim.now))
            yield sim.timeout(hold_ns)
            lock.release()

        for tag in range(3):
            sim.spawn(holder(tag, 10))
        sim.run()
        assert [entry[1] for entry in order] == [0, 1, 2]
        assert [entry[2] for entry in order] == [0, 10, 20]

    def test_release_unheld_rejected(self):
        sim = Simulator()
        with pytest.raises(ProtocolError):
            LineLock(sim).release()
