"""Deterministic bounded exponential backoff for engine retries."""

import os
import signal

import pytest

from repro.errors import ConfigError
from repro.experiments.parallel import ExperimentEngine, RetryBackoff


class TestRetryBackoff:
    def test_same_seed_same_schedule(self):
        first = RetryBackoff(seed=7)
        second = RetryBackoff(seed=7)
        assert [first.delay_for(i) for i in range(1, 9)] == [
            second.delay_for(i) for i in range(1, 9)
        ]

    def test_different_seeds_differ(self):
        one = [RetryBackoff(seed=1).delay_for(i) for i in range(1, 6)]
        two = [RetryBackoff(seed=2).delay_for(i) for i in range(1, 6)]
        assert one != two

    def test_exponential_growth_bounded_by_cap_with_jitter(self):
        backoff = RetryBackoff(base_s=0.1, cap_s=1.0, seed=0)
        for attempt in range(1, 12):
            raw = min(1.0, 0.1 * 2 ** (attempt - 1))
            delay = backoff.delay_for(attempt)
            assert 0.5 * raw <= delay < raw  # jitter factor in [0.5, 1.0)

    def test_zero_base_means_immediate_retry(self):
        backoff = RetryBackoff(base_s=0.0, cap_s=1.0, seed=0)
        assert backoff.delay_for(1) == 0.0
        assert backoff.delay_for(5) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryBackoff(base_s=-0.1)
        with pytest.raises(ConfigError):
            RetryBackoff(base_s=1.0, cap_s=0.5)
        with pytest.raises(ConfigError):
            RetryBackoff().delay_for(0)

    def test_engine_validates_backoff_eagerly(self):
        with pytest.raises(ConfigError):
            ExperimentEngine(backoff_base_s=1.0, backoff_cap_s=0.1)


def _task(cell):
    if cell.get("action") == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return cell["name"]


class TestEngineBackoff:
    def _crashing_engine(self):
        # Two cells so the engine takes the parallel path (the serial
        # path would run the SIGKILL in this very process).
        engine = ExperimentEngine(
            workers=2, retries=2, chunksize=1, backoff_base_s=0.01,
            backoff_cap_s=0.05, backoff_seed=3,
        )
        engine.run_cells(
            [{"name": "c0", "action": "die"}, {"name": "c1"}],
            task_fn=_task,
        )
        return engine

    def test_retry_delays_recorded(self):
        engine = self._crashing_engine()
        assert engine.stats.retries == 2
        assert len(engine.retry_delays) == 2
        # Deterministic: the recorded delays are exactly the schedule a
        # fresh RetryBackoff with the engine's parameters produces.
        reference = RetryBackoff(base_s=0.01, cap_s=0.05, seed=3)
        assert engine.retry_delays == [
            reference.delay_for(1), reference.delay_for(2),
        ]

    def test_retry_schedule_reproducible_across_engines(self):
        assert (
            self._crashing_engine().retry_delays
            == self._crashing_engine().retry_delays
        )

    def test_backoff_does_not_stall_healthy_cells(self):
        engine = ExperimentEngine(
            workers=2, retries=1, backoff_base_s=0.05, backoff_cap_s=0.1,
        )
        out = engine.run_cells(
            [{"name": "c0"}, {"name": "c1"}], task_fn=_task
        )
        assert out == ["c0", "c1"]
        assert engine.retry_delays == []

    def test_exhaustion_journals_permanent_failure_with_history(
        self, tmp_path
    ):
        from repro.experiments.journal import RunJournal
        from repro.experiments.parallel import CellFailure

        journal = RunJournal.create(
            {"kind": "backoff-test"}, run_id="bk", root=tmp_path,
        )
        engine = ExperimentEngine(
            workers=2, retries=2, chunksize=1, backoff_base_s=0.01,
            backoff_cap_s=0.05, backoff_seed=3, journal=journal,
        )
        out = engine.run_cells(
            [{"name": "c0", "action": "die"}, {"name": "c1"}],
            task_fn=_task,
        )
        assert isinstance(out[0], CellFailure)
        assert out[0].attempts == 3

        state = journal.replay()
        assert set(state.failed_permanent) == {"cell#0"}
        record = state.failed_permanent["cell#0"]
        assert record["kind"] == "crashed"
        assert record["attempts"] == 3
        # The journaled backoff history is the cell's full schedule —
        # exactly what a reference RetryBackoff produces, and exactly
        # what the engine tracked per cell.
        reference = RetryBackoff(base_s=0.01, cap_s=0.05, seed=3)
        assert record["retry_delays"] == [
            reference.delay_for(1), reference.delay_for(2),
        ]
        assert record["retry_delays"] == engine.cell_retry_delays[0]
        assert state.completed_ids == {"cell#1"}
