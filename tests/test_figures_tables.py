"""Tests for the table/figure generators and the text report."""

import pytest

from repro.experiments import figures, report, tables
from repro.experiments.runner import run_app

THREADS = 16


@pytest.fixture(scope="module")
def small_matrix():
    return {
        app: run_app(app, threads=THREADS)
        for app in ("fmm", "radiosity")
    }


class TestTable1:
    def test_probe_latencies_match_table1(self):
        rows, validation = tables.table1_rows()
        assert validation.l1_round_trip_ns == 2
        assert validation.l2_round_trip_ns == 2 + 12
        assert validation.memory_access_ns == 60 + 16
        assert validation.network_one_hop_ns == 48
        # Diameter of the 64-node hypercube: 6 hops.
        assert validation.network_diameter_ns == 2 * 16 + 6 * 16

    def test_rows_echo_configuration(self):
        rows, _ = tables.table1_rows()
        as_dict = dict(rows)
        assert "64 nodes" in as_dict["System size"]
        assert "hypercube" in as_dict["Network"]

    def test_render(self):
        rows, validation = tables.table1_rows()
        text = report.render_table1(rows, validation)
        assert "Table 1" in text and "L1 round trip" in text


class TestTable2:
    def test_rows_for_selected_apps(self):
        rows = tables.table2_rows(threads=THREADS, apps=("fmm",))
        assert len(rows) == 1
        app, size, paper, measured = rows[0]
        assert app == "fmm"
        assert "16k particles" in size
        assert paper == pytest.approx(16.56)
        assert 0 < measured < 100

    def test_render(self):
        rows = tables.table2_rows(threads=THREADS, apps=("radiosity",))
        text = report.render_table2(rows)
        assert "Table 2" in text and "radiosity" in text


class TestTable3:
    def test_rows_match_paper(self):
        rows, tdp = tables.table3_rows()
        assert tdp > 0
        savings = [row[1] for row in rows]
        assert savings == pytest.approx([70.2, 79.2, 97.8])
        latencies = [row[2] for row in rows]
        assert latencies == pytest.approx([10.0, 15.0, 35.0])
        snoops = [row[3] for row in rows]
        assert snoops == ["Yes", "No", "No"]
        voltages = [row[4] for row in rows]
        assert voltages == ["No", "No", "Yes"]
        watts = [row[5] for row in rows]
        assert watts == sorted(watts, reverse=True)

    def test_render(self):
        rows, tdp = tables.table3_rows()
        text = report.render_table3(rows, tdp)
        assert "Table 3" in text and "TDPmax" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.figure3_rows(threads=THREADS)

    def test_twelve_bars(self, rows):
        # 3 barriers x 4 consecutive iterations, as in the paper.
        assert len(rows) == 12
        assert {row.barrier_index for row in rows} == {1, 2, 3}

    def test_compute_plus_bst_equals_bit(self, rows):
        for row in rows:
            assert row.compute_norm + row.bst_norm == pytest.approx(
                row.bit_norm
            )

    def test_per_barrier_bit_stable_across_iterations(self, rows):
        # The paper's observation: same-barrier BIT varies much less
        # than BIT across different barriers.
        by_barrier = {}
        for row in rows:
            by_barrier.setdefault(row.barrier_index, []).append(row.bit_norm)
        within = max(
            max(vals) - min(vals) for vals in by_barrier.values()
        )
        means = [
            sum(vals) / len(vals) for vals in by_barrier.values()
        ]
        across = max(means) - min(means)
        assert within < 0.5 * across

    def test_barrier1_is_longest(self, rows):
        means = {}
        for row in rows:
            means.setdefault(row.barrier_index, []).append(row.bit_norm)
        assert sum(means[1]) > sum(means[3]) > sum(means[2])

    def test_render(self, rows):
        text = report.render_figure3(rows)
        assert "Figure 3" in text and "BST" in text


class TestFigures56:
    def test_figure5_rows_complete(self, small_matrix):
        rows = figures.figure5_rows(small_matrix)
        assert len(rows) == 2 * 5
        for row in rows:
            assert row["total"] == pytest.approx(
                sum(row[s] for s in ("compute", "spin", "transition",
                                     "sleep")),
            )

    def test_figure5_baseline_rows_are_100(self, small_matrix):
        for row in figures.figure5_rows(small_matrix):
            if row["config"] == "baseline":
                assert row["total"] == pytest.approx(100.0)

    def test_figure6_has_wall_clock(self, small_matrix):
        rows = figures.figure6_rows(small_matrix)
        for row in rows:
            assert "wall" in row
            if row["config"] in ("baseline", "oracle-halt", "ideal"):
                assert row["wall"] == pytest.approx(100.0)

    def test_renders(self, small_matrix):
        text5 = report.render_figure5(figures.figure5_rows(small_matrix))
        text6 = report.render_figure6(figures.figure6_rows(small_matrix))
        assert "Figure 5" in text5 and "Figure 6" in text6
        assert "fmm" in text5
        headline = report.render_headline(small_matrix)
        assert "headline" in headline

    def test_missing_baseline_rejected(self, small_matrix):
        from repro.errors import ConfigError

        broken = {
            "fmm": {
                k: v for k, v in small_matrix["fmm"].items()
                if k != "baseline"
            }
        }
        with pytest.raises(ConfigError):
            figures.figure5_rows(broken)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = report.render_table(
            ("A", "Long header"),
            [("x", 1), ("longer", 22)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(line.rstrip()) for line in lines[1:])) >= 1

    def test_empty_rows(self):
        text = report.render_table(("A",), [])
        assert "A" in text
